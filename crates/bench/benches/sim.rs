//! NoC-simulator throughput across topologies and VN provisioning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vnet_mc::VnMap;
use vnet_protocol::protocols;
use vnet_sim::sim::minimal_vn_map;
use vnet_sim::{SimConfig, Simulator, Topology, Workload};

fn bench_topologies(c: &mut Criterion) {
    let spec = protocols::msi_nonblocking_cache();
    let vns = minimal_vn_map(&spec).unwrap();
    let mut g = c.benchmark_group("sim/topology");
    g.sample_size(10);
    for (name, topo) in [
        ("ring6", Topology::Ring(6)),
        ("mesh3x2", Topology::Mesh(3, 2)),
        ("xbar6", Topology::Crossbar(6)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg =
                    SimConfig::new(&spec, topo, 2, 2).with_vns(vns.clone());
                let w = Workload::uniform_random(cfg.n_caches(), 2, 25, 3);
                black_box(Simulator::new(spec.clone(), cfg).run(w, 500_000))
            })
        });
    }
    g.finish();
}

fn bench_vn_provisioning(c: &mut Criterion) {
    let spec = protocols::chi();
    let mut g = c.benchmark_group("sim/vns");
    g.sample_size(10);
    for n in [2usize, 4] {
        let vns = if n == 2 {
            minimal_vn_map(&spec).unwrap()
        } else {
            VnMap::from_vns(
                spec.messages()
                    .iter()
                    .enumerate()
                    .map(|(i, _)| i % 4)
                    .collect(),
            )
        };
        g.bench_function(format!("chi_{n}vns"), |b| {
            b.iter(|| {
                let cfg = SimConfig::new(&spec, Topology::Ring(5), 2, 2)
                    .with_vns(vns.clone());
                let w = Workload::write_storm(cfg.n_caches(), 2, 15, 9);
                black_box(Simulator::new(spec.clone(), cfg).run(w, 500_000))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_topologies, bench_vn_provisioning);
criterion_main!(benches);
