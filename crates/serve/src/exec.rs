//! Runs one admitted request under its merged budget.
//!
//! Everything here is deterministic given the request: protocol
//! resolution is by built-in name or inline DSL only (the daemon never
//! opens files named by a client), and each workload is the same kernel
//! the CLI runs, handed the request's [`Budget`] — which carries the
//! admission deadline's [`CancelToken`](vnet_graph::CancelToken) and
//! the per-request memory cap.

use crate::json::Json;
use crate::proto::{Command, ProtocolRef, Request, VnChoice};
use std::path::{Path, PathBuf};
use vnet_core::{analyze, analyze_budgeted, VnOutcome};
use vnet_graph::{Budget, Provenance};
use vnet_protocol::{dsl, protocols, ProtocolSpec};

/// The payload of a finished request: result fields plus the kernel's
/// provenance (the worker turns a cancelled provenance into a
/// `cancelled` response, everything else into `ok`).
pub struct ExecResult {
    /// Response fields to merge into the JSON object.
    pub fields: Vec<(&'static str, Json)>,
    /// Exact, degraded, or cancelled.
    pub provenance: Provenance,
}

impl ExecResult {
    fn new(fields: Vec<(&'static str, Json)>, provenance: Provenance) -> Self {
        ExecResult { fields, provenance }
    }
}

/// Resolves the request's protocol. Built-in lookup is exact; inline
/// DSL is parsed and validated fail-closed.
pub fn resolve_protocol(proto: &ProtocolRef) -> Result<ProtocolSpec, String> {
    match proto {
        ProtocolRef::None => Err("request needs a protocol".into()),
        ProtocolRef::Builtin(name) => protocols::extended()
            .into_iter()
            .find(|p| p.name() == name.as_str())
            .ok_or_else(|| format!("unknown protocol `{name}` (see `vnet list`)")),
        ProtocolRef::Inline(text) => {
            let spec = dsl::parse(text).map_err(|e| format!("bad spec: {e}"))?;
            spec.validate().map_err(|e| format!("bad spec: {e}"))?;
            Ok(spec)
        }
    }
}

/// Executes `req` under `budget`. `Err` means the request could not run
/// at all (client error); `Ok` carries the result and its provenance.
/// `ckpt_path` is where an `mc` request with `checkpoint: true` flushes.
pub fn execute(
    req: &Request,
    budget: &Budget,
    ckpt_path: Option<&Path>,
) -> Result<ExecResult, String> {
    match &req.cmd {
        Command::Ping => Ok(ExecResult::new(vec![], Provenance::Exact)),
        // Answered inline by the server; a queued one is a no-op.
        Command::Metrics => Ok(ExecResult::new(vec![], Provenance::Exact)),
        Command::Panic => panic!("injected test fault (cmd=panic)"),
        Command::Analyze => run_analyze(req, budget),
        Command::Mc {
            vns,
            checkpoint,
            process,
        } => {
            if *process {
                run_mc_process(req, budget, *vns, *checkpoint, ckpt_path)
            } else {
                run_mc(req, budget, *vns, *checkpoint, ckpt_path)
            }
        }
        Command::Sim {
            ops,
            seed,
            max_cycles,
            faults,
        } => run_sim(req, budget, *ops, *seed, *max_cycles, faults.as_deref()),
    }
}

fn run_analyze(req: &Request, budget: &Budget) -> Result<ExecResult, String> {
    let spec = resolve_protocol(&req.protocol)?;
    let report = analyze_budgeted(&spec, budget);
    let provenance = report.outcome().provenance().clone();
    let mut fields = vec![("protocol", Json::str(spec.name()))];
    match report.outcome() {
        VnOutcome::Class2(_) => {
            fields.push(("class", Json::num(2)));
            fields.push(("min_vns", Json::Null));
        }
        VnOutcome::Assigned { assignment, .. } => {
            fields.push(("min_vns", Json::num(assignment.n_vns() as u64)));
            let map: Vec<Json> = (0..assignment.n_vns())
                .map(|vn| {
                    Json::Arr(
                        assignment
                            .messages_in(vn)
                            .map(|m| Json::str(spec.message_name(m)))
                            .collect(),
                    )
                })
                .collect();
            fields.push(("vns", Json::Arr(map)));
        }
    }
    fields.push((
        "textbook_vns",
        Json::num(vnet_core::textbook::textbook_vn_count(&spec) as u64),
    ));
    Ok(ExecResult::new(fields, provenance))
}

fn run_mc(
    req: &Request,
    budget: &Budget,
    vns: VnChoice,
    checkpoint: bool,
    ckpt_path: Option<&Path>,
) -> Result<ExecResult, String> {
    use vnet_mc::{
        checkpoint::CheckpointPolicy, explore_budgeted, explore_checkpointed, CheckpointedRun,
        McConfig, Verdict, VnMap,
    };
    let spec = resolve_protocol(&req.protocol)?;
    let n_msgs = spec.messages().len();
    let vn_map = match vns {
        VnChoice::Single => VnMap::single(n_msgs),
        VnChoice::Unique => VnMap::one_per_message(n_msgs),
        VnChoice::Minimal => match analyze(&spec).outcome() {
            VnOutcome::Assigned { assignment, .. } => VnMap::from_assignment(assignment, n_msgs),
            VnOutcome::Class2(_) => VnMap::one_per_message(n_msgs),
        },
    };
    let cfg = McConfig::figure3(&spec).with_vns(vn_map);

    let mut ckpt_field: Option<PathBuf> = None;
    let run = match (checkpoint, ckpt_path) {
        (true, Some(path)) => {
            ckpt_field = Some(path.to_path_buf());
            let policy = CheckpointPolicy::new(path.to_path_buf());
            explore_checkpointed(&spec, &cfg, budget, &policy, |_, _| {})
                .map_err(|e| format!("checkpoint error: {e}"))?
        }
        _ => CheckpointedRun::Finished(explore_budgeted(&spec, &cfg, budget)),
    };

    let verdict = match run {
        CheckpointedRun::Finished(v) => v,
        // No stop file is configured on service policies, so this arm
        // is unreachable; answer truthfully anyway.
        CheckpointedRun::Interrupted { states, level, .. } => {
            return Ok(ExecResult::new(
                vec![
                    ("verdict", Json::str("interrupted")),
                    ("states", Json::num(states as u64)),
                    ("levels", Json::num(level as u64)),
                ],
                Provenance::Exact,
            ));
        }
    };

    let stats = verdict.stats().clone();
    let mut fields = vec![("protocol", Json::str(spec.name()))];
    match &verdict {
        Verdict::NoDeadlock(_) => fields.push(("verdict", Json::str("no_deadlock"))),
        Verdict::Deadlock { depth, .. } => {
            fields.push(("verdict", Json::str("deadlock")));
            fields.push(("depth", Json::num(*depth as u64)));
        }
        Verdict::ModelError { detail, .. } => {
            fields.push(("verdict", Json::str("model_error")));
            fields.push(("detail", Json::str(detail.clone())));
        }
        Verdict::InvariantViolation { detail, .. } => {
            fields.push(("verdict", Json::str("invariant_violation")));
            fields.push(("detail", Json::str(detail.clone())));
        }
    }
    fields.push(("states", Json::num(stats.states as u64)));
    fields.push(("levels", Json::num(stats.levels as u64)));
    fields.push(("complete", Json::Bool(stats.complete)));
    if let Some(p) = ckpt_field {
        fields.push(("checkpoint", Json::str(p.display().to_string())));
    }
    Ok(ExecResult::new(fields, stats.provenance))
}

/// Serial numbers for inline-spec scratch files: process id plus a
/// counter keeps concurrent workers (and respawned daemons) apart.
static SPEC_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Runs an `mc` request in a dedicated child process (`vnet mc
/// <protocol> --machine`), so memory blowups, OOM kills, and panics in
/// the explorer cost one child instead of the daemon. The child result
/// arrives on the same machine line the campaign supervisor parses.
fn run_mc_process(
    req: &Request,
    budget: &Budget,
    vns: VnChoice,
    checkpoint: bool,
    ckpt_path: Option<&Path>,
) -> Result<ExecResult, String> {
    use std::process::{Command as Proc, Stdio};
    use vnet_graph::DegradeReason;
    use vnet_mc::campaign::parse_machine_line;

    // The child re-resolves the protocol: built-ins by name, inline
    // DSL via a scratch file (validated here first, so a client error
    // never burns a process spawn).
    let spec = resolve_protocol(&req.protocol)?;
    let mut scratch: Option<PathBuf> = None;
    let arg = match &req.protocol {
        ProtocolRef::Builtin(name) => name.clone(),
        ProtocolRef::Inline(text) => {
            let seq = SPEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("vnet-serve-spec-{}-{seq}.vnp", std::process::id()));
            std::fs::write(&path, text).map_err(|e| format!("cannot stage spec: {e}"))?;
            let arg = path.display().to_string();
            scratch = Some(path);
            arg
        }
        ProtocolRef::None => return Err("request needs a protocol".into()),
    };
    // Tidy the scratch file on every exit path below.
    let cleanup = |r: Result<ExecResult, String>| {
        if let Some(p) = &scratch {
            let _ = std::fs::remove_file(p);
        }
        r
    };

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return cleanup(Err(format!("cannot find own executable: {e}"))),
    };
    let mut cmd = Proc::new(exe);
    cmd.arg("mc").arg(&arg).arg("--machine");
    match vns {
        VnChoice::Single => {
            cmd.arg("--single-vn");
        }
        VnChoice::Unique => {
            cmd.arg("--unique-vns");
        }
        VnChoice::Minimal => {}
    }
    let mut clauses = Vec::new();
    if let Some(d) = budget.deadline {
        clauses.push(format!("{}ms", d.as_millis().max(1)));
    }
    if let Some(n) = budget.node_limit {
        clauses.push(format!("nodes={n}"));
    }
    if !clauses.is_empty() {
        cmd.arg("--budget").arg(clauses.join(","));
    }
    if let Some(b) = budget.mem_limit {
        cmd.arg("--mem-budget").arg(b.to_string());
    }
    if checkpoint {
        if let Some(p) = ckpt_path {
            cmd.arg("--checkpoint").arg(p);
        }
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => return cleanup(Err(format!("worker spawn failed: {e}"))),
    };

    // The child self-limits via the forwarded budget; the supervisor
    // only steps in for cooperative cancellation (drain/shutdown) and
    // for a child that overruns its own deadline by a wide margin.
    let hard_deadline = budget
        .deadline
        .map(|d| std::time::Instant::now() + d + std::time::Duration::from_secs(30));
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                let cancelled = budget.cancel.as_ref().is_some_and(|t| t.is_cancelled());
                let overrun = hard_deadline.is_some_and(|d| std::time::Instant::now() >= d);
                if cancelled || overrun {
                    let _ = child.kill();
                    let _ = child.wait();
                    if cancelled {
                        // Mirror the inline path: the worker maps a
                        // cancelled provenance onto the response.
                        let reason = budget
                            .cancel
                            .as_ref()
                            .and_then(|t| t.reason())
                            .unwrap_or(vnet_graph::CancelReason::Shutdown);
                        return cleanup(Ok(ExecResult::new(
                            vec![("protocol", Json::str(spec.name()))],
                            Provenance::Degraded {
                                reason: DegradeReason::Cancelled { reason },
                            },
                        )));
                    }
                    return cleanup(Err("worker process overran its deadline".into()));
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return cleanup(Err(format!("worker wait failed: {e}")));
            }
        }
    };

    let mut output = String::new();
    if let Some(mut out) = child.stdout.take() {
        use std::io::Read as _;
        let _ = out.read_to_string(&mut output);
    }
    let Some(m) = parse_machine_line(&output) else {
        let detail = match status.code() {
            Some(code) => format!("worker exited with code {code} and no mc-result line"),
            None => "worker killed without a result (OOM killer or signal)".to_string(),
        };
        return cleanup(Err(detail));
    };

    // The machine line flattens provenance to a string; rebuild the
    // two cases the response schema distinguishes.
    let provenance = if m.provenance == "exact" {
        Provenance::Exact
    } else {
        Provenance::Degraded {
            reason: DegradeReason::Bound {
                what: m
                    .provenance
                    .strip_prefix("degraded: ")
                    .unwrap_or(&m.provenance)
                    .to_string(),
            },
        }
    };
    let mut fields = vec![
        ("protocol", Json::str(spec.name())),
        (
            "verdict",
            Json::str(match m.kind.as_str() {
                "no-deadlock" => "no_deadlock".to_string(),
                "deadlock" => "deadlock".to_string(),
                "model-error" => "model_error".to_string(),
                other => other.replace('-', "_"),
            }),
        ),
        ("states", Json::num(m.states as u64)),
        ("levels", Json::num(m.depth as u64)),
    ];
    if m.kind == "deadlock" {
        fields.push(("depth", Json::num(m.depth as u64)));
    }
    if checkpoint {
        if let Some(p) = ckpt_path {
            fields.push(("checkpoint", Json::str(p.display().to_string())));
        }
    }
    cleanup(Ok(ExecResult::new(fields, provenance)))
}

fn run_sim(
    req: &Request,
    budget: &Budget,
    ops: usize,
    seed: u64,
    max_cycles: u64,
    faults: Option<&str>,
) -> Result<ExecResult, String> {
    use vnet_mc::VnMap;
    use vnet_sim::{FaultPlan, SimConfig, Simulator, Topology, Workload};
    let spec = resolve_protocol(&req.protocol)?;
    let plan = match faults {
        Some(text) => FaultPlan::parse(text).map_err(|e| e.to_string())?,
        None => FaultPlan::none(),
    };
    let topology = Topology::Mesh(2, 3);
    let n_dirs = 2;
    let n_msgs = spec.messages().len();
    let vns = match vnet_sim::sim::minimal_vn_map(&spec) {
        Some(m) => m,
        None => VnMap::one_per_message(n_msgs),
    };
    let mut cfg = SimConfig::new(&spec, topology, 2, n_dirs).with_vns(vns);
    if !plan.is_empty() {
        cfg = cfg.with_faults(plan, seed);
    }
    let workload = Workload::uniform_random(cfg.n_caches(), 2, ops, seed);
    let (r, provenance) = Simulator::new(spec, cfg).run_budgeted(workload, max_cycles, budget);
    if let Some(detail) = &r.model_error {
        return Err(format!("specification bug under simulation: {detail}"));
    }
    let fields = vec![
        ("cycles", Json::num(r.cycles)),
        ("n_vns", Json::num(r.n_vns as u64)),
        ("completed", Json::num(r.completed_transactions as u64)),
        ("unfinished", Json::num(r.unfinished_ops as u64)),
        ("deadlocked", Json::Bool(r.deadlocked)),
    ];
    Ok(ExecResult::new(fields, provenance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cmd: Command, protocol: &str) -> Request {
        Request {
            id: Some("t".into()),
            cmd,
            protocol: ProtocolRef::Builtin(protocol.into()),
            budget: Budget::unlimited(),
        }
    }

    #[test]
    fn analyze_chi_says_two_vns() {
        let r = req(Command::Analyze, "CHI");
        let out = execute(&r, &Budget::unlimited(), None).unwrap();
        assert!(out.provenance.is_exact());
        assert!(out
            .fields
            .iter()
            .any(|(k, v)| *k == "min_vns" && v.as_u64() == Some(2)));
    }

    #[test]
    fn unknown_protocol_is_a_client_error() {
        let r = req(Command::Analyze, "NOPE");
        match execute(&r, &Budget::unlimited(), None) {
            Err(e) => assert!(e.contains("unknown protocol"), "{e}"),
            Ok(_) => panic!("unknown protocol should not resolve"),
        }
    }

    #[test]
    fn cancelled_budget_reports_cancelled_provenance() {
        use vnet_graph::{CancelReason, CancelToken, DegradeReason};
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let budget = Budget::unlimited().with_cancel(token);
        let r = req(
            Command::Mc {
                vns: VnChoice::Single,
                checkpoint: false,
                process: false,
            },
            "MESI-nonblocking-cache",
        );
        let out = execute(&r, &budget, None).unwrap();
        assert!(matches!(
            out.provenance,
            Provenance::Degraded {
                reason: DegradeReason::Cancelled {
                    reason: CancelReason::Shutdown
                }
            }
        ));
    }

    #[test]
    fn mem_budget_degrades_the_explorer() {
        use vnet_graph::DegradeReason;
        let budget = Budget::unlimited().with_mem_limit(10_000);
        let r = req(
            Command::Mc {
                vns: VnChoice::Unique,
                checkpoint: false,
                process: false,
            },
            "MESI-nonblocking-cache",
        );
        let out = execute(&r, &budget, None).unwrap();
        assert!(matches!(
            out.provenance,
            Provenance::Degraded {
                reason: DegradeReason::MemLimit { .. }
            }
        ));
    }
}
