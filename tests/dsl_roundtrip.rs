//! Integration test: protocols survive a round trip through the text
//! DSL with their *analysis results* intact — the property a user
//! shipping protocol files actually needs.

use vnet::core::analyze;
use vnet::protocol::{dsl, protocols};

#[test]
fn analysis_results_survive_dsl_round_trip() {
    for spec in protocols::all() {
        let text = dsl::to_text(&spec);
        let parsed = dsl::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        let before = analyze(&spec);
        let after = analyze(&parsed);
        assert_eq!(
            before.outcome(),
            after.outcome(),
            "{}: outcome changed through the DSL",
            spec.name()
        );
        assert_eq!(before.waits(), after.waits(), "{}", spec.name());
        assert_eq!(before.causes(), after.causes(), "{}", spec.name());
    }
}

#[test]
fn dsl_file_is_human_scale() {
    // A protocol spec in text form should be diff-review-able: the
    // biggest builtin stays in the low hundreds of lines.
    for spec in protocols::all() {
        let lines = dsl::to_text(&spec).lines().count();
        assert!(
            lines < 400,
            "{}: {lines} lines is beyond review scale",
            spec.name()
        );
    }
}

#[test]
fn hand_written_protocol_parses_and_analyzes() {
    // A minimal nonblocking protocol written by hand in the DSL: one
    // request, one response, a directory that never stalls → 1 VN.
    let text = "\
protocol hand-rolled
message Get req
message Dat data
cache-states stable: I V
cache-states transient: IV
cache-initial I
dir-states stable: I
cache I Load = send Get Dir; -> IV
cache IV Dat[ack=0] = -> V
dir I Get = send Dat Req data
";
    let spec = dsl::parse(text).unwrap();
    spec.validate().unwrap();
    let report = analyze(&spec);
    assert_eq!(report.outcome().min_vns(), Some(1));
    assert!(report.waits().is_empty());
}

#[test]
fn stalling_hand_written_protocol_needs_two_vns() {
    // Add a directory stall: now requests must be separated.
    let text = "\
protocol hand-rolled-stall
message Get req
message Fwd fwd
message Dat data
cache-states stable: I V M
cache-states transient: IV
cache-initial I
dir-states stable: I M
dir-states transient: B
cache I Load = send Get Dir; -> IV
cache IV Dat[ack=0] = -> V
cache V Store = send Get Dir; -> IV
cache M Fwd = send Dat Req data; send Dat Dir data; -> V
dir I Get = send Dat Req data; owner=req; -> M
dir M Get = send Fwd Owner; -> B
dir B Get = stall
dir B Dat = mem<=data; owner=req; -> M
";
    let spec = dsl::parse(text).unwrap();
    spec.validate().unwrap();
    let report = analyze(&spec);
    assert_eq!(report.outcome().min_vns(), Some(2));
}
