//! Regression test for the observability overhead contract: enabling
//! `--metrics` must not perturb the model checker's output in any way
//! (bit-identical stdout, same exit code), and the snapshot's
//! `explore.states_total` must equal the `ExploreStats` the run
//! reported — even on a degraded (budget-exhausted) exit.

use std::process::Command;

/// A budgeted workload: the node budget degrades the run at a
/// deterministic state count, so stdout is bit-stable across runs and
/// the metrics snapshot is exercised on the degraded exit path.
const ARGS: &[&str] = &[
    "mc",
    "MSI-blocking-cache",
    "--unique-vns",
    "--budget",
    "nodes=50000",
];

fn vnet(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vnet"))
        .args(ARGS)
        .args(extra)
        .output()
        .expect("vnet should spawn")
}

/// Pulls `"key": <number>` out of the snapshot JSON. Deliberately
/// minimal: it parses only the format `Snapshot::to_json` writes.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = text.find(&pat)?;
    let tail = &text[at + pat.len()..];
    let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
    num.parse().ok()
}

/// Pulls the state count out of the CLI's `(<n> states, <m> levels)`
/// verdict line.
fn stdout_states(stdout: &str) -> Option<u64> {
    let at = stdout.find(" states")?;
    let head = &stdout[..at];
    let start = head.rfind('(')? + 1;
    head[start..].trim().parse().ok()
}

#[test]
fn metrics_flag_is_invisible_in_output_and_exact_in_counts() {
    let snap_path = std::env::temp_dir().join(format!(
        "vnet-metrics-accuracy-{}.json",
        std::process::id()
    ));

    let plain = vnet(&[]);
    let snap_str = snap_path.to_string_lossy().into_owned();
    let metered = vnet(&["--metrics", &snap_str]);

    // Overhead contract: instrumentation never changes what the tool
    // says or how it exits.
    assert_eq!(
        plain.status.code(),
        metered.status.code(),
        "exit code changed under --metrics"
    );
    assert_eq!(
        plain.stdout, metered.stdout,
        "stdout must be bit-identical under --metrics"
    );

    // Accuracy contract: the counter equals the ExploreStats exactly.
    let snapshot = std::fs::read_to_string(&snap_path)
        .expect("--metrics must write the snapshot even on a degraded exit");
    let _ = std::fs::remove_file(&snap_path);
    let stdout = String::from_utf8_lossy(&plain.stdout);
    let reported = stdout_states(&stdout)
        .unwrap_or_else(|| panic!("no state count in stdout: {stdout}"));
    assert_eq!(
        json_u64(&snapshot, "explore.states_total"),
        Some(reported),
        "explore.states_total must equal the reported ExploreStats"
    );
    assert_eq!(json_u64(&snapshot, "explore.runs_total"), Some(1));
    assert_eq!(json_u64(&snapshot, "schema"), Some(1));
}
