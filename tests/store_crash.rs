//! Crash-safety of the durable result store, end to end against the
//! real binary:
//!
//! * SIGKILL at arbitrary byte offsets mid-append (via the
//!   `VNET_STORE_SLOW_APPEND_US` injection hook) must leave a store
//!   that `vnet store verify` accepts with exit 0: the torn tail is
//!   rolled back and the surviving log is a byte-identical prefix of
//!   what was on disk at the moment of the kill.
//! * Flipping a byte inside a *committed* record must never pass
//!   silently: verify either quarantines it (exit 7) or, when the flip
//!   lands in the final record where it is indistinguishable from a
//!   torn tail, rolls it back (exit 0). A second verify is always
//!   clean.
//! * Fail-closed usage: `verify` on a missing dir and `serve
//!   --store-dir` pointed at a non-empty non-store dir both exit 1.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vnet-storecrash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("creating the test scratch dir");
    d
}

fn vnet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vnet"))
}

fn run(args: &[&str]) -> Output {
    vnet().args(args).output().expect("running vnet")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn log_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("results.log")).expect("reading results.log")
}

/// Starts `vnet store fill` with slow byte-at-a-time appends, SIGKILLs
/// it after `kill_after`, and returns the raw log bytes at the moment
/// of death.
fn fill_and_kill(dir: &Path, count: usize, us_per_byte: u64, kill_after: Duration) -> Vec<u8> {
    let mut child = vnet()
        .args(["store", "fill"])
        .arg(dir)
        .args(["--count", &count.to_string()])
        .env("VNET_STORE_SLOW_APPEND_US", us_per_byte.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning vnet store fill");
    std::thread::sleep(kill_after);
    // std's kill is SIGKILL: no destructors, no flush, no goodbye.
    child.kill().expect("SIGKILL");
    child.wait().expect("reaping the killed filler");
    log_bytes(dir)
}

#[test]
fn sigkill_mid_append_rolls_back_to_a_committed_prefix() {
    // Several kill offsets: with ~100 bytes/record at 150us/byte a
    // record takes ~15ms, so these land at different byte positions
    // inside (and between) frames across runs.
    for (i, kill_ms) in [40u64, 95, 170, 260].into_iter().enumerate() {
        let dir = tmp_dir(&format!("kill{i}"));
        let at_death = fill_and_kill(&dir, 500, 150, Duration::from_millis(kill_ms));

        // First reopen: rollback of the torn tail is normal recovery,
        // not corruption — exit 0, no quarantine.
        let out = run(&["store", "verify", dir.to_str().expect("utf-8 path")]);
        assert_eq!(
            code(&out),
            0,
            "verify after SIGKILL at ~{kill_ms}ms: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            vnet::store::quarantine_files(&dir).is_empty(),
            "a torn tail must be rolled back, not quarantined"
        );

        // The recovered log is a byte-identical readable prefix of
        // whatever was on disk when the process died.
        let recovered = log_bytes(&dir);
        assert!(
            recovered.len() <= at_death.len(),
            "recovery grew the log ({} -> {})",
            at_death.len(),
            recovered.len()
        );
        assert_eq!(
            recovered,
            at_death[..recovered.len()],
            "recovered log is not a byte prefix of the pre-crash log"
        );

        // Recovery is idempotent: a second verify changes nothing.
        assert_eq!(code(&run(&["store", "verify", dir.to_str().unwrap()])), 0);
        assert_eq!(log_bytes(&dir), recovered, "second open modified the log");

        // And the store still takes writes afterwards.
        let out = run(&[
            "store",
            "fill",
            dir.to_str().unwrap(),
            "--count",
            "3",
        ]);
        assert_eq!(code(&out), 0, "post-recovery writes failed");

        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn flipping_a_committed_byte_is_quarantined_or_rolled_back_never_ignored() {
    // A corpus of flip offsets spread across the committed log: early
    // records (must quarantine), mid-log, and the tail (where a flip
    // is indistinguishable from a torn write and rollback is correct).
    let dir = tmp_dir("flip");
    let seed = run(&["store", "fill", dir.to_str().unwrap(), "--count", "20"]);
    assert_eq!(code(&seed), 0);
    let pristine = log_bytes(&dir);
    assert!(pristine.len() > 200, "seed log too small to corrupt");

    let offsets = [
        7,                     // first frame header
        pristine.len() / 4,    // early record body
        pristine.len() / 2,    // mid-log
        pristine.len() * 3 / 4,
        pristine.len() - 3, // inside the final commit marker
    ];
    let mut quarantined_at_least_once = false;
    for (i, &off) in offsets.iter().enumerate() {
        // Restore the pristine log, then flip one byte.
        std::fs::write(dir.join("results.log"), &pristine).expect("restoring the log");
        for q in vnet::store::quarantine_files(&dir) {
            let _ = std::fs::remove_file(dir.join("quarantine").join(q));
        }
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x40;
        std::fs::write(dir.join("results.log"), &bytes).expect("writing the flipped log");

        let out = run(&["store", "verify", dir.to_str().unwrap()]);
        let c = code(&out);
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        match c {
            // Corruption detected: the record is preserved in
            // quarantine, never silently dropped.
            7 => {
                quarantined_at_least_once = true;
                assert!(
                    !vnet::store::quarantine_files(&dir).is_empty(),
                    "exit 7 without a quarantine file (flip #{i} at {off})"
                );
                assert!(
                    stdout.contains("quarantined"),
                    "verify did not report the quarantine: {stdout}"
                );
            }
            // Tail flips may be recovered as a torn-write rollback.
            0 => assert!(
                log_bytes(&dir).len() < bytes.len(),
                "exit 0 but the corrupt byte was left in place (flip #{i} at {off})"
            ),
            other => panic!("verify exited {other} on flip #{i} at {off}: {stdout}"),
        }
        // Whatever recovery did, the store is now consistent: the next
        // verify is clean.
        assert_eq!(
            code(&run(&["store", "verify", dir.to_str().unwrap()])),
            0,
            "store did not converge after recovery (flip #{i} at {off})"
        );
    }
    assert!(
        quarantined_at_least_once,
        "no flip in the corpus exercised the quarantine path"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn verify_on_a_missing_or_foreign_dir_is_a_usage_error() {
    let missing = std::env::temp_dir().join(format!("vnet-storecrash-absent-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&missing);
    let out = run(&["store", "verify", missing.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "verify must not conjure a store from a typo");

    let foreign = tmp_dir("foreign");
    std::fs::write(foreign.join("precious.txt"), b"not yours").unwrap();
    let out = run(&["store", "verify", foreign.to_str().unwrap()]);
    assert_eq!(code(&out), 1);
    let _ = std::fs::remove_dir_all(foreign);
}

#[test]
fn serve_and_campaign_refuse_a_foreign_store_dir() {
    let foreign = tmp_dir("serveforeign");
    std::fs::write(foreign.join("precious.txt"), b"not yours").unwrap();

    let out = vnet()
        .args(["serve", "--listen", "127.0.0.1:0", "--store-dir"])
        .arg(&foreign)
        .output()
        .expect("running vnet serve");
    assert_eq!(code(&out), 1, "serve must refuse to initialize into it");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a result store"),
        "unhelpful refusal: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        foreign.join("precious.txt").exists(),
        "refusal must not touch the directory"
    );

    let out = vnet()
        .args(["campaign", "protocols", "--store-dir"])
        .arg(&foreign)
        .output()
        .expect("running vnet campaign");
    assert_eq!(code(&out), 1, "campaign must refuse before any mc runs");
    let _ = std::fs::remove_dir_all(foreign);
}
