//! The bad-checkpoint corpus: every file under `tests/bad_checkpoints/`
//! is corrupted on purpose and must be rejected by [`Checkpoint::load`]
//! with the structured, positioned `CheckpointError` its filename class
//! names — never accepted, never a panic. This is the crash-recovery
//! counterpart of the `tests/bad_specs/` parser gate: a checkpoint that
//! survived a SIGKILL (or a disk that mangled one) must fail closed.
//!
//! Filename convention: `<class>-<anything>.ckpt`, where `<class>` is
//!
//! | class         | corruption                      | expected error       |
//! |---------------|---------------------------------|----------------------|
//! | `badmagic`    | wrong leading magic             | `BadMagic`           |
//! | `version`     | unsupported format version      | `UnsupportedVersion` |
//! | `truncated`   | valid prefix cut mid-payload    | `Truncated`/`Corrupt`|
//! | `bitflip`     | one payload bit flipped         | `Corrupt` (checksum) |
//! | `garbage`     | valid file + trailing bytes     | `Corrupt`            |
//! | `fingerprint` | checkpoint from a different cfg | `SpecMismatch`       |
//!
//! The committed files pin the wire format; the fresh-corruption test
//! regenerates the same classes from a live checkpoint so the gate also
//! covers future format changes. To refresh the committed corpus after
//! a deliberate format bump:
//!
//! ```text
//! cargo test --test bad_checkpoints regenerate -- --ignored
//! ```

use std::path::{Path, PathBuf};
use vnet::mc::{
    explore_checkpointed, Checkpoint, CheckpointError, CheckpointPolicy, McConfig, VnMap,
};
use vnet::protocol::{protocols, ProtocolSpec};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("bad_checkpoints")
}

/// The reference spec/config every corpus file is checked against. Tiny
/// bounds keep the committed files small.
fn reference() -> (ProtocolSpec, McConfig) {
    let spec = protocols::msi_blocking_cache();
    let cfg = McConfig::figure3(&spec)
        .with_vns(VnMap::one_per_message(spec.messages().len()))
        .with_limits(60, Some(4));
    (spec, cfg)
}

/// A config whose fingerprint differs from [`reference`] (different VN
/// mapping), for the `fingerprint` class.
fn other_config(spec: &ProtocolSpec) -> McConfig {
    McConfig::figure3(spec)
        .with_vns(VnMap::single(spec.messages().len()))
        .with_limits(60, Some(4))
}

/// Runs a real (bounded) exploration and returns the checkpoint bytes
/// it flushed.
fn live_checkpoint_bytes(spec: &ProtocolSpec, cfg: &McConfig, dir: &Path) -> Vec<u8> {
    let path = dir.join("base.ckpt");
    let policy = CheckpointPolicy::new(&path).every_states(1);
    let budget = vnet::core::Budget::unlimited();
    let run = explore_checkpointed(spec, cfg, &budget, &policy, |_, _| {});
    assert!(run.is_ok(), "base exploration failed: {:?}", run.err());
    let bytes = std::fs::read(&path);
    assert!(bytes.is_ok(), "no checkpoint flushed at {}", path.display());
    bytes.unwrap_or_default()
}

/// Applies a corruption class to valid checkpoint bytes.
fn corrupt(class: &str, base: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match class {
        "badmagic" => {
            bytes[..8].copy_from_slice(b"NOTACKPT");
            bytes
        }
        "version" => {
            // Version is the little-endian u32 right after the magic.
            bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
            bytes
        }
        "truncated" => {
            let cut = bytes.len() * 3 / 5;
            bytes.truncate(cut.max(12));
            bytes
        }
        "bitflip" => {
            // Flip one bit mid-payload (past the 28-byte header, before
            // the trailing 8-byte checksum).
            let i = 28 + (bytes.len() - 36) / 2;
            bytes[i] ^= 0x10;
            bytes
        }
        "garbage" => {
            bytes.extend_from_slice(b"extra");
            bytes
        }
        other => {
            assert!(other == "fingerprint", "unknown corruption class {other}");
            bytes // already built from a mismatching config
        }
    }
}

/// `true` if `err` is the right rejection for the class, with an offset
/// where the format promises one.
fn matches_class(class: &str, err: &CheckpointError) -> bool {
    match (class, err) {
        ("badmagic", CheckpointError::BadMagic { .. }) => true,
        ("version", CheckpointError::UnsupportedVersion { found, .. }) => *found == 99,
        // A cut can land inside the header (Truncated) or leave a
        // length-consistent prefix whose checksum then fails (Corrupt);
        // both carry the offset that broke.
        ("truncated", CheckpointError::Truncated { offset, .. })
        | ("truncated", CheckpointError::Corrupt { offset, .. }) => *offset <= 1 << 32,
        ("bitflip", CheckpointError::Corrupt { detail, .. }) => detail.contains("checksum"),
        ("garbage", CheckpointError::Corrupt { detail, .. }) => detail.contains("trailing"),
        ("fingerprint", CheckpointError::SpecMismatch { expected, found }) => expected != found,
        _ => false,
    }
}

fn class_of(path: &Path) -> String {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    stem.split('-').next().unwrap_or("").to_string()
}

#[test]
fn committed_corpus_is_rejected_with_positioned_errors() {
    let (spec, cfg) = reference();
    let dir = corpus_dir();
    let mut checked = 0;
    let mut classes_seen = std::collections::BTreeSet::new();
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .map(|rd| rd.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("ckpt") {
            continue;
        }
        let class = class_of(&path);
        let r = Checkpoint::load(&path, &spec, &cfg);
        let err = match r {
            Err(e) => e,
            Ok(_) => panic!("{} was ACCEPTED; corrupt checkpoints must fail closed", path.display()),
        };
        assert!(
            matches_class(&class, &err),
            "{}: expected a {class} rejection, got: {err}",
            path.display()
        );
        // Every error must render a human-readable message.
        assert!(!err.to_string().is_empty());
        classes_seen.insert(class);
        checked += 1;
    }
    assert!(
        checked >= 6,
        "corpus has only {checked} files; regenerate with \
         `cargo test --test bad_checkpoints regenerate -- --ignored`"
    );
    for class in ["badmagic", "version", "truncated", "bitflip", "garbage", "fingerprint"] {
        assert!(classes_seen.contains(class), "corpus missing class {class}");
    }
}

/// The same six corruption classes applied to a checkpoint generated by
/// the *current* code: the gate holds even as the format evolves.
#[test]
fn fresh_corruptions_are_rejected() {
    let (spec, cfg) = reference();
    let tmp = std::env::temp_dir().join(format!("vnet-badckpt-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&tmp);
    let base = live_checkpoint_bytes(&spec, &cfg, &tmp);
    let fp_base = live_checkpoint_bytes(&spec, &other_config(&spec), &tmp);
    // Sanity: the uncorrupted bytes load.
    assert!(Checkpoint::from_bytes(&base, &spec, &cfg).is_ok());
    for class in ["badmagic", "version", "truncated", "bitflip", "garbage", "fingerprint"] {
        let bytes = if class == "fingerprint" {
            fp_base.clone()
        } else {
            corrupt(class, &base)
        };
        let file = tmp.join(format!("{class}-fresh.ckpt"));
        assert!(std::fs::write(&file, &bytes).is_ok());
        match Checkpoint::load(&file, &spec, &cfg) {
            Ok(_) => panic!("fresh {class} corruption was accepted"),
            Err(e) => assert!(
                matches_class(class, &e),
                "fresh {class}: wrong rejection: {e}"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

/// A missing file is an `Io` error, not a panic.
#[test]
fn missing_checkpoint_is_an_io_error() {
    let (spec, cfg) = reference();
    let r = Checkpoint::load(Path::new("/nonexistent/nowhere.ckpt"), &spec, &cfg);
    assert!(matches!(r, Err(CheckpointError::Io { .. })), "{r:?}");
}

/// Regenerates the committed corpus from the current wire format. Run
/// explicitly after a deliberate format change:
/// `cargo test --test bad_checkpoints regenerate -- --ignored`
#[test]
#[ignore = "writes into the source tree; run explicitly after format changes"]
fn regenerate() {
    let (spec, cfg) = reference();
    let dir = corpus_dir();
    assert!(std::fs::create_dir_all(&dir).is_ok());
    let tmp = std::env::temp_dir().join(format!("vnet-regen-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&tmp);
    let base = live_checkpoint_bytes(&spec, &cfg, &tmp);
    let fp_base = live_checkpoint_bytes(&spec, &other_config(&spec), &tmp);
    for class in ["badmagic", "version", "truncated", "bitflip", "garbage"] {
        let bytes = corrupt(class, &base);
        assert!(std::fs::write(dir.join(format!("{class}-msi.ckpt")), bytes).is_ok());
    }
    assert!(std::fs::write(dir.join("fingerprint-msi.ckpt"), fp_base).is_ok());
    let _ = std::fs::remove_dir_all(&tmp);
}
