//! Fault-layer invariants, run over a protocols × topologies × seeds
//! matrix:
//!
//! 1. an **empty** [`FaultPlan`] is a true no-op — the report is
//!    bit-identical to a run with no plan installed at all;
//! 2. a non-empty plan is **deterministic** — same plan, same seed,
//!    same report.

use vnet_mc::VnMap;
use vnet_protocol::{protocols, ProtocolSpec};
use vnet_sim::sim::minimal_vn_map;
use vnet_sim::{FaultPlan, SimConfig, Simulator, Topology, Workload};

fn matrix() -> Vec<(ProtocolSpec, VnMap)> {
    [
        protocols::msi_nonblocking_cache(),
        protocols::mesi_nonblocking_cache(),
        protocols::chi(),
    ]
    .into_iter()
    .map(|spec| {
        let vns = minimal_vn_map(&spec).expect("all three are Class 3");
        (spec, vns)
    })
    .collect()
}

const TOPOLOGIES: [Topology; 3] = [
    Topology::Ring(5),
    Topology::Mesh(3, 2),
    Topology::Crossbar(5),
];

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    for (spec, vns) in matrix() {
        for topo in TOPOLOGIES {
            for seed in [1u64, 7, 0xBEEF] {
                let base_cfg = SimConfig::new(&spec, topo, 2, 2).with_vns(vns.clone());
                let w = Workload::uniform_random(base_cfg.n_caches(), 2, 15, seed);
                let base = Simulator::new(spec.clone(), base_cfg).run(w.clone(), 300_000);

                // Same run with an explicitly installed empty plan and a
                // nonzero fault seed: nothing may differ, down to the
                // absence of fault counters in the report.
                let faulted_cfg = SimConfig::new(&spec, topo, 2, 2)
                    .with_vns(vns.clone())
                    .with_faults(FaultPlan::none(), seed ^ 0xDEAD);
                let faulted = Simulator::new(spec.clone(), faulted_cfg).run(w, 300_000);

                assert_eq!(
                    base, faulted,
                    "{} on {topo:?} seed {seed}: empty plan must be a no-op",
                    spec.name()
                );
                assert_eq!(faulted.faults, None);
            }
        }
    }
}

#[test]
fn faulted_runs_replay_exactly() {
    let plan = FaultPlan::parse("drop=0.01,dup=0.01,delay=0.1:3,reorder=0.1")
        .expect("valid fault spec");
    for (spec, vns) in matrix() {
        for topo in [Topology::Ring(5), Topology::Mesh(3, 2)] {
            let run = || {
                let cfg = SimConfig::new(&spec, topo, 2, 2)
                    .with_vns(vns.clone())
                    .with_faults(plan.clone(), 99);
                let w = Workload::uniform_random(cfg.n_caches(), 2, 15, 3);
                Simulator::new(spec.clone(), cfg).run(w, 300_000)
            };
            let (a, b) = (run(), run());
            assert_eq!(a, b, "{} on {topo:?}: replay must match", spec.name());
        }
    }
}
