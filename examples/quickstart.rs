//! Quickstart: how many virtual networks does a protocol need?
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vnet::core::{analyze, report};
use vnet::protocol::protocols;

fn main() {
    // Take the textbook MSI protocol (Primer Figures 1–2 / paper
    // Figures 1–2) with the cache made nonblocking, and ask the
    // analyzer for its minimum VN count and mapping.
    let spec = protocols::msi_nonblocking_cache();
    let result = analyze(&spec);

    println!("{}", report::full_report(&result));

    // The same call on the unmodified textbook protocol detects that it
    // is Class 2: no per-message-name VN assignment avoids deadlock once
    // there are multiple directories.
    let textbook = protocols::msi_blocking_cache();
    let result = analyze(&textbook);
    println!("{}", report::full_report(&result));
}
