//! Soak test: hundreds of mixed requests — valid work, malformed JSON,
//! oversized lines, deliberate worker panics, deadline-busting jobs,
//! memory-limited jobs, and mid-flight disconnects — hammered over
//! concurrent connections. The daemon must answer every request with a
//! structured line, keep its RSS bounded, survive everything, and still
//! drain to a clean exit 0 at the end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use vnet::serve::json;

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 90; // 540 lockstep requests overall
const RSS_CEILING_KB: u64 = 1_500_000; // 1.5 GiB — far above a healthy daemon

fn spawn_serve() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_vnet"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue",
            "16",
            "--deadline",
            "2s",
            "--mem-budget",
            "33554432", // 32 MiB accounted per request
            "--max-request-bytes",
            "8192",
            "--drain-grace",
            "1s",
            "--enable-test-faults",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning vnet serve");
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("reading the listening banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("banner ends with the address")
        .to_string();
    (child, addr)
}

/// The request mix, by slot. Slot 7 is "oversized line", slot 8 is
/// "mid-flight disconnect" (handled by the caller, not sent lockstep).
fn request_for(client: usize, i: usize) -> String {
    let id = format!("c{client}-r{i}");
    match i % 12 {
        0 => format!(r#"{{"id":"{id}","cmd":"ping"}}"#),
        1 => format!(r#"{{"id":"{id}","cmd":"analyze","protocol":"CHI"}}"#),
        2 => format!(
            r#"{{"id":"{id}","cmd":"analyze","protocol":"MOESI-nonblocking-cache"}}"#
        ),
        3 => format!(
            r#"{{"id":"{id}","cmd":"mc","protocol":"MESI-nonblocking-cache","budget":{{"nodes":15000}}}}"#
        ),
        // Memory-limited: a 2 MiB accounted cap degrades the explorer
        // long before the state space ends.
        4 => format!(
            r#"{{"id":"{id}","cmd":"mc","protocol":"MSI-nonblocking-cache","budget":{{"mem_bytes":2097152}}}}"#
        ),
        5 => format!(
            r#"{{"id":"{id}","cmd":"sim","protocol":"MESI-nonblocking-cache","ops":8,"seed":{i}}}"#
        ),
        6 => format!(
            r#"{{"id":"{id}","cmd":"sim","protocol":"MOSI-nonblocking-cache","ops":6,"faults":"drop=0.05,dup=0.05"}}"#
        ),
        // Malformed / hostile inputs:
        7 => "this is not json at all {{{".to_string(),
        8 => format!(r#"{{"id":"{id}","cmd":"frobnicate","protocol":"CHI"}}"#),
        9 => format!(r#"{{"id":"{id}","cmd":"analyze","protocol":"CHI","budget":{{"nodes":0}}}}"#),
        10 => format!(r#"{{"id":"{id}","cmd":"panic"}}"#),
        // Oversized sim shed at admission:
        _ => format!(
            r#"{{"id":"{id}","cmd":"sim","protocol":"CHI","ops":999999,"max_cycles":9}}"#
        ),
    }
}

fn client_worker(addr: String, client: usize) -> Vec<String> {
    let stream = TcpStream::connect(&addr).expect("connecting to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("setting a read timeout");
    let mut w = stream.try_clone().expect("cloning the stream");
    let mut r = BufReader::new(stream);
    let mut statuses = Vec::new();

    for i in 0..REQUESTS_PER_CLIENT {
        // Every 20th slot: a mid-flight disconnect on a throwaway
        // connection — send a slow request and hang up immediately.
        if i % 20 == 19 {
            let mut burn = TcpStream::connect(&addr).expect("connecting the throwaway");
            writeln!(
                burn,
                r#"{{"id":"gone-{client}-{i}","cmd":"mc","protocol":"MSI-nonblocking-cache"}}"#
            )
            .expect("sending the abandoned request");
            burn.flush().expect("flushing the abandoned request");
            drop(burn);
        }

        let line = if i % 12 == 7 && i % 24 == 7 {
            // Oversized line: exceeds --max-request-bytes, must come
            // back as a structured too_large rejection.
            format!(r#"{{"id":"big","cmd":"analyze","pad":"{}"}}"#, "x".repeat(16_000))
        } else {
            request_for(client, i)
        };
        writeln!(w, "{line}").expect("sending a request");
        w.flush().expect("flushing a request");

        let mut resp = String::new();
        let n = r.read_line(&mut resp).expect("reading a response");
        assert!(n > 0, "daemon hung up mid-soak (client {client}, i {i})");
        assert!(resp.ends_with('\n'), "torn response: {resp:?}");
        let v = json::parse(resp.trim())
            .unwrap_or_else(|e| panic!("unstructured response {resp:?}: {e}"));
        let status = v
            .get("status")
            .and_then(json::Json::as_str)
            .unwrap_or_else(|| panic!("response without status: {resp:?}"))
            .to_string();
        assert!(
            ["ok", "error", "rejected", "cancelled", "panicked"].contains(&status.as_str()),
            "status outside the taxonomy: {resp:?}"
        );
        statuses.push(status);
    }
    statuses
}

/// Sends one `metrics` request on a fresh connection and returns the
/// parsed response. The probe is answered inline, so it works even
/// while the pool is busy.
fn query_metrics(addr: &str) -> json::Json {
    let stream = TcpStream::connect(addr).expect("connecting for metrics");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("setting a read timeout");
    let mut w = stream.try_clone().expect("cloning the stream");
    let mut r = BufReader::new(stream);
    writeln!(w, r#"{{"id":"metrics-probe","cmd":"metrics"}}"#).expect("sending metrics");
    w.flush().expect("flushing metrics");
    let mut resp = String::new();
    r.read_line(&mut resp).expect("reading the metrics response");
    json::parse(resp.trim()).expect("metrics response is valid JSON")
}

fn counter_of(m: &json::Json, key: &str) -> u64 {
    m.get("counters")
        .and_then(|c| c.get(key))
        .and_then(json::Json::as_u64)
        .unwrap_or_else(|| panic!("metrics response without counters.{key}: {m:?}"))
}

fn rss_kb(pid: u32) -> Option<u64> {
    let text = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = text.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn soak_500_mixed_requests_without_a_crash() {
    let (child, addr) = spawn_serve();
    let pid = child.id();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || client_worker(addr, c))
        })
        .collect();

    // Watch the daemon's RSS while the fleet hammers it.
    let mut peak_rss = 0u64;
    let mut done = 0;
    let mut results: Vec<Option<Vec<String>>> = (0..CLIENTS).map(|_| None).collect();
    let mut pending: Vec<_> = handles.into_iter().map(Some).collect();
    let deadline = Instant::now() + Duration::from_secs(240);
    while done < CLIENTS {
        assert!(Instant::now() < deadline, "soak did not finish in time");
        if let Some(kb) = rss_kb(pid) {
            peak_rss = peak_rss.max(kb);
        }
        for (i, slot) in pending.iter_mut().enumerate() {
            let finished = slot.as_ref().is_some_and(|h| h.is_finished());
            if finished {
                let h = slot.take().expect("slot was just checked");
                results[i] = Some(h.join().expect("client thread must not panic"));
                done += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let statuses: Vec<String> = results
        .into_iter()
        .flat_map(|r| r.expect("every client finished"))
        .collect();
    assert_eq!(statuses.len(), CLIENTS * REQUESTS_PER_CLIENT);
    let count = |s: &str| statuses.iter().filter(|x| x.as_str() == s).count();
    // The mix guarantees every taxonomy arm fires.
    assert!(count("ok") > 0, "no successes in the soak");
    assert!(count("error") > 0, "no client errors in the soak");
    assert!(count("rejected") > 0, "no shed requests in the soak");
    assert!(count("panicked") > 0, "worker panics were not surfaced");
    assert!(
        peak_rss < RSS_CEILING_KB,
        "daemon RSS grew to {peak_rss} kB under soak"
    );

    // Reconcile the server-side metrics counters with the tally the
    // clients observed. Pings are answered inline and deliberately
    // uncounted; the abandoned (mid-flight disconnect) requests are
    // counted server-side but never observed client-side, so the
    // abandoned total must close the gap exactly.
    let pings = CLIENTS * (0..REQUESTS_PER_CLIENT).filter(|i| i % 12 == 0).count();
    let abandoned = CLIENTS * (0..REQUESTS_PER_CLIENT).filter(|i| i % 20 == 19).count();
    let expected_submitted = (statuses.len() - pings + abandoned) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    let metrics = loop {
        let m = query_metrics(&addr);
        let submitted = counter_of(&m, "submitted");
        assert!(
            submitted <= expected_submitted,
            "server counted more requests than were sent: {submitted} > {expected_submitted}"
        );
        if submitted == expected_submitted {
            break m;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned requests never settled: submitted {submitted} of {expected_submitted}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    // Every answered request lands in exactly one status counter.
    assert_eq!(
        counter_of(&metrics, "submitted"),
        counter_of(&metrics, "completed")
            + counter_of(&metrics, "errors")
            + counter_of(&metrics, "rejected")
            + counter_of(&metrics, "cancelled")
            + counter_of(&metrics, "panicked"),
        "status taxonomy does not partition the submitted total: {metrics:?}"
    );
    // Error and panic verdicts come only from lockstep requests (the
    // abandoned ones are valid mc jobs), so those counters must match
    // the client tally exactly; shed/cancel/complete can also hit the
    // abandoned requests, so they only carry lower bounds.
    assert_eq!(counter_of(&metrics, "errors"), count("error") as u64);
    assert_eq!(counter_of(&metrics, "panicked"), count("panicked") as u64);
    assert!(counter_of(&metrics, "rejected") >= count("rejected") as u64);
    assert_eq!(
        counter_of(&metrics, "completed")
            + counter_of(&metrics, "cancelled")
            + counter_of(&metrics, "rejected"),
        (count("ok") - pings + count("cancelled") + count("rejected") + abandoned) as u64,
        "abandoned requests must settle as completed, cancelled, or shed"
    );
    // Idle daemon: nothing left queued, and the registry mirrors ride
    // along with the standard snapshot shape.
    assert_eq!(
        metrics.get("queue_depth").and_then(json::Json::as_u64),
        Some(0)
    );
    let registry = metrics.get("registry").expect("registry in the response");
    for section in ["counters", "gauges", "histograms"] {
        assert!(registry.get(section).is_some(), "registry.{section} missing");
    }
    assert!(
        registry
            .get("histograms")
            .and_then(|h| h.get("serve.request_wall_ms"))
            .is_some(),
        "per-request latency histogram missing: {registry:?}"
    );

    // The daemon survived everything; it must still drain cleanly.
    let ok = Command::new("kill")
        .arg("-TERM")
        .arg(pid.to_string())
        .status()
        .expect("running kill")
        .success();
    assert!(ok, "kill -TERM failed");
    let code = wait_exit(child, 60);
    assert_eq!(code, 0, "post-soak drain must exit 0");
}

fn wait_exit(mut child: Child, secs: u64) -> i32 {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return st.code().expect("exit code");
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not exit within {secs}s of drain"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}
