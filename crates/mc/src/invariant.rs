//! Safety invariants checked during exploration.
//!
//! The paper's focus is deadlock, but its Murphi models also carry the
//! standard coherence safety properties; we support the central one —
//! **Single-Writer / Multiple-Reader** (SWMR): at no instant may a cache
//! hold write permission for a block while any other cache holds any
//! permission for it.
//!
//! Which states grant which permission is protocol-specific; the
//! [`Swmr::by_convention`] constructor recognizes the MOESIF naming used
//! by the built-in protocols (writable: `M`, `E`; readable: `S`, `O`),
//! and custom sets can be supplied for hand-written specs.

use crate::state::GlobalState;
use vnet_protocol::ProtocolSpec;

/// The SWMR invariant configuration: which *cache* states grant write
/// permission and which grant read permission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Swmr {
    writable: Vec<u8>,
    readable: Vec<u8>,
}

/// A state name passed to [`Swmr::new`] that the cache controller does
/// not define.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCacheState(pub String);

impl std::fmt::Display for UnknownCacheState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown cache state {}", self.0)
    }
}

impl std::error::Error for UnknownCacheState {}

impl Swmr {
    /// Builds the invariant from explicit state-name lists; errs on a
    /// name the cache controller does not define.
    pub fn new(
        spec: &ProtocolSpec,
        writable: &[&str],
        readable: &[&str],
    ) -> Result<Self, UnknownCacheState> {
        let resolve = |names: &[&str]| -> Result<Vec<u8>, UnknownCacheState> {
            names
                .iter()
                .map(|n| {
                    spec.cache()
                        .state_by_name(n)
                        .map(|s| s.index() as u8)
                        .ok_or_else(|| UnknownCacheState((*n).to_string()))
                })
                .collect()
        };
        Ok(Swmr {
            writable: resolve(writable)?,
            readable: resolve(readable)?,
        })
    }

    /// The MOESIF-convention invariant: `M`/`E` writable, `S`/`O`
    /// readable (whichever of those states the protocol has).
    pub fn by_convention(spec: &ProtocolSpec) -> Self {
        let pick = |names: &[&str]| -> Vec<u8> {
            names
                .iter()
                .filter_map(|n| spec.cache().state_by_name(n))
                .map(|s| s.index() as u8)
                .collect()
        };
        Swmr {
            writable: pick(&["M", "E"]),
            readable: pick(&["S", "O"]),
        }
    }

    /// Canonical bytes for checkpoint fingerprints: which states count
    /// as writable/readable fully determines the invariant's behaviour.
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.writable.len() as u8];
        out.extend(&self.writable);
        out.push(self.readable.len() as u8);
        out.extend(&self.readable);
        out
    }

    /// Checks the invariant on one state; returns a description of the
    /// violation if any address breaks it.
    pub fn check(&self, gs: &GlobalState, spec: &ProtocolSpec) -> Option<String> {
        let n_addrs = gs.dirs.len();
        for addr in 0..n_addrs {
            let mut writers = Vec::new();
            let mut readers = Vec::new();
            for (c, row) in gs.caches.iter().enumerate() {
                let s = row[addr].state;
                if self.writable.contains(&s) {
                    writers.push(c);
                } else if self.readable.contains(&s) {
                    readers.push(c);
                }
            }
            if writers.len() > 1 || (writers.len() == 1 && !readers.is_empty()) {
                let name = |c: usize| {
                    let s = gs.caches[c][addr].state;
                    format!(
                        "C{}:{}",
                        c + 1,
                        spec.cache().state(vnet_protocol::StateId(s as usize)).name
                    )
                };
                let all: Vec<String> = writers
                    .iter()
                    .chain(readers.iter())
                    .map(|&c| name(c))
                    .collect();
                return Some(format!(
                    "SWMR violated for addr {}: {}",
                    (b'X' + addr as u8) as char,
                    all.join(", ")
                ));
            }
        }
        None
    }
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use vnet_protocol::protocols;

    fn put(gs: &mut GlobalState, spec: &ProtocolSpec, c: usize, addr: usize, state: &str) {
        gs.caches[c][addr].state = spec.cache().state_by_name(state).unwrap().index() as u8;
    }

    #[test]
    fn clean_states_pass() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let inv = Swmr::by_convention(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        put(&mut gs, &spec, 0, 0, "S");
        put(&mut gs, &spec, 1, 0, "S");
        put(&mut gs, &spec, 2, 1, "M");
        assert_eq!(inv.check(&gs, &spec), None);
    }

    #[test]
    fn two_writers_flagged() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let inv = Swmr::by_convention(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        put(&mut gs, &spec, 0, 0, "M");
        put(&mut gs, &spec, 1, 0, "M");
        let v = inv.check(&gs, &spec).unwrap();
        assert!(v.contains("SWMR"));
        assert!(v.contains("C1:M"));
        assert!(v.contains("C2:M"));
    }

    #[test]
    fn writer_plus_reader_flagged() {
        let spec = protocols::mesi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let inv = Swmr::by_convention(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        put(&mut gs, &spec, 0, 1, "E");
        put(&mut gs, &spec, 2, 1, "S");
        assert!(inv.check(&gs, &spec).is_some());
    }

    #[test]
    fn owned_plus_shared_is_legal() {
        let spec = protocols::mosi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let inv = Swmr::by_convention(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        put(&mut gs, &spec, 0, 0, "O");
        put(&mut gs, &spec, 1, 0, "S");
        assert_eq!(inv.check(&gs, &spec), None);
    }

    #[test]
    fn transients_are_not_counted() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let inv = Swmr::by_convention(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        put(&mut gs, &spec, 0, 0, "M");
        put(&mut gs, &spec, 1, 0, "IM_AD");
        assert_eq!(inv.check(&gs, &spec), None);
    }
}
