//! A CHI-style coherence protocol (paper §VII, Table I experiment (4)).
//!
//! Modeled from the paper's own description of Arm's AMBA CHI: a
//! MOESI-family *intervention-forwarding* protocol in which
//!
//! * **every coherence transaction ends with a completion message**
//!   (`CompAck`) from the requestor to the home directory, and
//! * the **directory always blocks**: from the moment it starts a
//!   transaction until it receives the `CompAck`, it stalls every other
//!   request to the same block (the paper's Figure 5 shows a ReadShared
//!   blocked behind an in-flight CleanUnique).
//! * **caches never stall**: snoops and invalidations are answered
//!   immediately in every state, including transient ones.
//!
//! Message-name correspondence with the paper's Figure 5 / Eq. 7 (the
//! paper itself uses "standard terminology" rather than CHI mnemonics):
//! their Inv = our `Inv`, their Inv-Ack = our `SnpAck`, their Resp = our
//! `Comp`, their Comp = our `CompAck`.
//!
//! The paper's result for this protocol: the CHI specification prescribes
//! four VNs (REQ/SNP/RSP/DAT), but **two suffice** — requests on one VN,
//! everything else on the other.

use crate::builder::{acts, ProtocolBuilder};
use crate::event::{CoreOp, Guard};
use crate::message::MsgType;
use crate::spec::ProtocolSpec;
use crate::Target;

/// The CHI-style protocol. Table I experiment (4) — 2 VNs.
pub fn chi() -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("CHI");

    b.msg("ReadShared", MsgType::Request)
        .msg("ReadUnique", MsgType::Request)
        .msg("CleanUnique", MsgType::Request)
        .msg("WriteBack", MsgType::Request)
        .msg("Evict", MsgType::Request)
        .msg("SnpShared", MsgType::FwdRequest)
        .msg("SnpUnique", MsgType::FwdRequest)
        .msg("Inv", MsgType::FwdRequest)
        .msg("SnpData", MsgType::DataResponse)
        .msg("CompData", MsgType::DataResponse)
        .msg("SnpAck", MsgType::CtrlResponse)
        .msg("Comp", MsgType::CtrlResponse)
        .msg("CompAck", MsgType::CtrlResponse);

    cache_table(&mut b);
    directory_table(&mut b);
    b.build()
}

const REQUESTS: [&str; 5] = ["ReadShared", "ReadUnique", "CleanUnique", "WriteBack", "Evict"];

fn stall_core(b: &mut ProtocolBuilder, state: &str) {
    b.cache_stall_core(state, CoreOp::Load);
    b.cache_stall_core(state, CoreOp::Store);
    b.cache_stall_core(state, CoreOp::Evict);
}

/// The requesting-node (cache) table. No message is ever stalled.
fn cache_table(b: &mut ProtocolBuilder) {
    b.cache_stable(&["I", "S", "M"]);
    b.cache_transient(&["IS_P", "IM_P", "SM_P", "WB_A", "EV_A"]);
    b.cache_initial("I");

    // --- I ---
    b.cache_on_core("I", CoreOp::Load, acts().send("ReadShared", Target::Dir).goto("IS_P"));
    b.cache_on_core("I", CoreOp::Store, acts().send("ReadUnique", Target::Dir).goto("IM_P"));

    // --- IS_P --- (ReadShared pending; the blocking home shields us from
    // snoops until our CompAck, so only CompData can arrive)
    stall_core(b, "IS_P");
    b.cache_on_msg("IS_P", "CompData", acts().send("CompAck", Target::Dir).goto("S"));

    // --- IM_P --- (ReadUnique pending)
    stall_core(b, "IM_P");
    b.cache_on_msg("IM_P", "CompData", acts().send("CompAck", Target::Dir).goto("M"));

    // --- S ---
    b.cache_on_core("S", CoreOp::Load, acts());
    b.cache_on_core("S", CoreOp::Store, acts().send("CleanUnique", Target::Dir).goto("SM_P"));
    b.cache_on_core("S", CoreOp::Evict, acts().send("Evict", Target::Dir).goto("EV_A"));
    b.cache_on_msg("S", "Inv", acts().send("SnpAck", Target::Dir).goto("I"));

    // --- SM_P --- (CleanUnique pending; an Inv may strip our copy first,
    // in which case the home will answer with CompData instead of Comp)
    stall_core(b, "SM_P");
    b.cache_on_msg("SM_P", "Comp", acts().send("CompAck", Target::Dir).goto("M"));
    b.cache_on_msg("SM_P", "CompData", acts().send("CompAck", Target::Dir).goto("M"));
    b.cache_on_msg("SM_P", "Inv", acts().send("SnpAck", Target::Dir));

    // --- M ---
    b.cache_on_core("M", CoreOp::Load, acts());
    b.cache_on_core("M", CoreOp::Store, acts());
    b.cache_on_core("M", CoreOp::Evict, acts().send_data("WriteBack", Target::Dir).goto("WB_A"));
    b.cache_on_msg("M", "SnpShared", acts().send_data("SnpData", Target::Dir).goto("S"));
    b.cache_on_msg("M", "SnpUnique", acts().send_data("SnpData", Target::Dir).goto("I"));

    // --- WB_A --- (WriteBack racing snoops: answer them, await Comp)
    stall_core(b, "WB_A");
    b.cache_on_msg("WB_A", "SnpShared", acts().send_data("SnpData", Target::Dir));
    b.cache_on_msg("WB_A", "SnpUnique", acts().send_data("SnpData", Target::Dir));
    b.cache_on_msg("WB_A", "Inv", acts().send("SnpAck", Target::Dir));
    b.cache_on_msg("WB_A", "Comp", acts().goto("I"));

    // --- EV_A --- (clean eviction racing an Inv)
    stall_core(b, "EV_A");
    b.cache_on_msg("EV_A", "Inv", acts().send("SnpAck", Target::Dir));
    b.cache_on_msg("EV_A", "Comp", acts().goto("I"));
}

/// The home-node (directory) table: every multi-hop transaction passes
/// through Busy states that stall all five request types until the
/// requestor's CompAck.
fn directory_table(b: &mut ProtocolBuilder) {
    b.dir_stable(&["I", "S", "M"]);
    b.dir_transient(&[
        "BusyShared_Snp",
        "BusyShared_Ack",
        "BusyUniq_Snp",
        "BusyUniq_Inv",
        "BusyUniq_Ack",
        "BusyCU_Inv",
        "BusyCU_Ack",
    ]);
    b.dir_initial("I");

    // Every Busy state stalls every request (the "always blocks" column).
    for busy in [
        "BusyShared_Snp",
        "BusyShared_Ack",
        "BusyUniq_Snp",
        "BusyUniq_Inv",
        "BusyUniq_Ack",
        "BusyCU_Inv",
        "BusyCU_Ack",
    ] {
        for req in REQUESTS {
            b.dir_stall_msg(busy, req);
        }
    }

    // --- ReadShared ---
    b.dir_on_msg(
        "I",
        "ReadShared",
        acts().add_req_to_sharers().send_data("CompData", Target::Req).goto("BusyShared_Ack"),
    );
    b.dir_on_msg(
        "S",
        "ReadShared",
        acts().add_req_to_sharers().send_data("CompData", Target::Req).goto("BusyShared_Ack"),
    );
    b.dir_on_msg(
        "M",
        "ReadShared",
        acts().send("SnpShared", Target::Owner).goto("BusyShared_Snp"),
    );
    b.dir_on_msg(
        "BusyShared_Snp",
        "SnpData",
        acts()
            .copy_to_mem()
            .add_owner_to_sharers()
            .clear_owner()
            .add_req_to_sharers()
            .send_data("CompData", Target::Req)
            .goto("BusyShared_Ack"),
    );
    b.dir_on_msg("BusyShared_Ack", "CompAck", acts().goto("S"));

    // --- ReadUnique ---
    b.dir_on_msg(
        "I",
        "ReadUnique",
        acts().send_data("CompData", Target::Req).goto("BusyUniq_Ack"),
    );
    b.dir_on_msg_if(
        "S",
        "ReadUnique",
        Guard::HasOtherSharers,
        acts()
            .remove_req_from_sharers()
            .to_sharers("Inv")
            .set_pending_other_sharers()
            .goto("BusyUniq_Inv"),
    );
    b.dir_on_msg_if(
        "S",
        "ReadUnique",
        Guard::NoOtherSharers,
        acts().clear_sharers().send_data("CompData", Target::Req).goto("BusyUniq_Ack"),
    );
    b.dir_on_msg(
        "M",
        "ReadUnique",
        acts().send("SnpUnique", Target::Owner).goto("BusyUniq_Snp"),
    );
    b.dir_on_msg(
        "BusyUniq_Snp",
        "SnpData",
        acts().copy_to_mem().clear_owner().send_data("CompData", Target::Req).goto("BusyUniq_Ack"),
    );
    b.dir_on_msg_if("BusyUniq_Inv", "SnpAck", Guard::NotLastSnpAck, acts().dec_pending());
    b.dir_on_msg_if(
        "BusyUniq_Inv",
        "SnpAck",
        Guard::LastSnpAck,
        acts().dec_pending().clear_sharers().send_data("CompData", Target::Req).goto("BusyUniq_Ack"),
    );
    b.dir_on_msg("BusyUniq_Ack", "CompAck", acts().set_owner_to_req().goto("M"));

    // --- CleanUnique --- (the paper's Figure 5 transaction)
    b.dir_on_msg(
        "I",
        "CleanUnique",
        acts().send_data("CompData", Target::Req).goto("BusyUniq_Ack"),
    );
    b.dir_on_msg_if(
        "S",
        "CleanUnique",
        Guard::HasOtherSharers,
        acts().to_sharers("Inv").set_pending_other_sharers().goto("BusyCU_Inv"),
    );
    b.dir_on_msg_if(
        "S",
        "CleanUnique",
        Guard::NoOtherSharers,
        acts().clear_sharers().send("Comp", Target::Req).goto("BusyCU_Ack"),
    );
    // The requestor lost its copy to a racing transaction: fall back to a
    // full read-for-ownership.
    b.dir_on_msg(
        "M",
        "CleanUnique",
        acts().send("SnpUnique", Target::Owner).goto("BusyUniq_Snp"),
    );
    b.dir_on_msg_if("BusyCU_Inv", "SnpAck", Guard::NotLastSnpAck, acts().dec_pending());
    b.dir_on_msg_if(
        "BusyCU_Inv",
        "SnpAck",
        Guard::LastSnpAck,
        acts().dec_pending().clear_sharers().send("Comp", Target::Req).goto("BusyCU_Ack"),
    );
    b.dir_on_msg("BusyCU_Ack", "CompAck", acts().clear_sharers().set_owner_to_req().goto("M"));

    // --- WriteBack ---
    b.dir_on_msg_if(
        "M",
        "WriteBack",
        Guard::FromOwner,
        acts().copy_to_mem().clear_owner().send("Comp", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "WriteBack", Guard::NotFromOwner, acts().send("Comp", Target::Req));
    b.dir_on_msg(
        "S",
        "WriteBack",
        acts().remove_req_from_sharers().send("Comp", Target::Req),
    );
    b.dir_on_msg("I", "WriteBack", acts().send("Comp", Target::Req));

    // --- Evict ---
    b.dir_on_msg(
        "S",
        "Evict",
        acts().remove_req_from_sharers().send("Comp", Target::Req),
    );
    b.dir_on_msg("I", "Evict", acts().send("Comp", Target::Req));
    b.dir_on_msg("M", "Evict", acts().send("Comp", Target::Req));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ControllerKind;

    #[test]
    fn validates() {
        chi().validate().unwrap();
    }

    #[test]
    fn caches_never_stall_messages() {
        let p = chi();
        assert_eq!(p.cache().message_stalls().count(), 0);
    }

    #[test]
    fn every_busy_state_stalls_every_request() {
        let p = chi();
        // 7 busy states × 5 requests.
        assert_eq!(p.directory().message_stalls().count(), 35);
        let stalled: std::collections::BTreeSet<String> = p
            .directory()
            .message_stalls()
            .map(|(_, m)| p.message_name(m).to_string())
            .collect();
        for r in REQUESTS {
            assert!(stalled.contains(r), "{r} not stalled");
        }
    }

    #[test]
    fn only_requests_are_ever_stalled() {
        let p = chi();
        for (_, m) in p.directory().message_stalls() {
            assert_eq!(p.message(m).mtype, MsgType::Request);
        }
    }

    #[test]
    fn compack_closes_every_multi_hop_transaction() {
        let p = chi();
        let compack = p.message_by_name("CompAck").unwrap();
        assert_eq!(
            p.receivers_of(compack),
            [ControllerKind::Directory].into_iter().collect()
        );
        // Both data-bearing completions trigger a CompAck at the cache.
        let compdata = p.message_by_name("CompData").unwrap();
        let mut senders = 0;
        for (_, t, cell) in p.cache().iter() {
            if t.message() == Some(compdata) {
                if let Some(e) = cell.entry() {
                    senders += e.sends().filter(|(m, _)| *m == compack).count();
                }
            }
        }
        assert_eq!(senders, 3); // IS_P, IM_P, SM_P
    }

    #[test]
    fn figure5_chain_is_representable() {
        // CleanUnique → Inv → SnpAck → Comp → CompAck (paper Eq. 7 in our
        // message names): each hop exists in the tables.
        let p = chi();
        let s = p.directory().state_by_name("S").unwrap();
        let cu = p.message_by_name("CleanUnique").unwrap();
        let inv = p.message_by_name("Inv").unwrap();
        let cell = p
            .directory()
            .cell(s, crate::Trigger::msg_if(cu, Guard::HasOtherSharers))
            .unwrap();
        assert!(cell.entry().unwrap().sends().any(|(m, _)| m == inv));
    }
}
