//! Crash-tolerant checkpoints for the explorers.
//!
//! The paper's Murphi sweeps ran for up to 72 hours; a panic, OOM-kill,
//! or Ctrl-C anywhere in such a run used to lose every explored state.
//! This module serializes explorer progress — the BFS frontier, the
//! visited/parent map, the completed level, and the budget spent — to a
//! versioned, length-prefixed, checksummed on-disk format that a later
//! process can [`Checkpoint::load`] and continue from.
//!
//! ## Format (version 1)
//!
//! ```text
//! magic        8 bytes  b"VNETCKPT"
//! version      u32 LE   (1)
//! fingerprint  u64 LE   FNV-1a over the spec's canonical DSL text and
//!                       the McConfig fields that shape the state space
//! payload_len  u64 LE
//! payload      payload_len bytes (see below)
//! checksum     u64 LE   FNV-1a over everything above (magic..payload)
//! ```
//!
//! The payload holds `level`, `nodes_spent`, the visited map (each entry
//! `key → (parent key, rule label, claim level)`, written in sorted key
//! order so equal progress produces byte-identical checkpoints), and the
//! frontier states in BFS order.
//!
//! ## Format (version 2)
//!
//! Version 2 keeps the envelope above byte-for-byte (only the version
//! field differs) and replaces the payload with a sharded,
//! delta-compressed layout sized for out-of-core runs:
//!
//! ```text
//! level        u64 LE
//! nodes_spent  u64 LE
//! n_shards     u32 LE
//! manifest     n_shards × (section_len u64 LE, section FNV-1a u64 LE)
//! sections     the shard sections, concatenated
//! frontier     u64 LE count, then count × (shard u32 LE, index u32 LE)
//! ```
//!
//! Each shard section is self-contained — a label table followed by its
//! entries in sorted-key order, each key delta-compressed against its
//! predecessor ([`crate::codec`]) with a full restart every 16 entries,
//! and each parent named by `(shard, index)` instead of a second key
//! copy. The per-section checksums let the process-sharded explorer
//! validate a single shard's artifact without reading its siblings; the
//! frontier references entries rather than re-serializing states.
//! Version-1 files load transparently (and are rewritten as version 2
//! at the next flush), so pre-existing checkpoints keep resuming.
//!
//! ## Fail-closed loading
//!
//! [`Checkpoint::load`] never panics and never returns a best-effort
//! partial read: truncation, a flipped bit, an unknown version, or a
//! fingerprint that does not match the (spec, config) pair being resumed
//! all yield a positioned [`CheckpointError`]. A resumed run is only
//! ever continued from a checkpoint that round-trips exactly.
//!
//! Writes go through a temp file + atomic rename, so a crash *during*
//! checkpointing leaves the previous checkpoint intact rather than a
//! half-written file.

use crate::config::McConfig;
use crate::state::{CacheLine, DirLine, GlobalState, Msg, Node};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use vnet_protocol::ProtocolSpec;

/// The on-disk magic that starts every checkpoint file.
pub const MAGIC: &[u8; 8] = b"VNETCKPT";

/// The flat, uncompressed version-1 format (still read, still written
/// by the thread-parallel explorer — which keeps the conversion path
/// continuously exercised).
pub const V1: u32 = 1;

/// The sharded, delta-compressed version-2 format.
pub const V2: u32 = 2;

/// The newest format version this build reads and writes.
pub const VERSION: u32 = V2;

/// Why a checkpoint could not be written or loaded. Every variant that
/// stems from file *content* carries the byte offset at which the
/// problem was detected, mirroring the positioned errors of the DSL
/// parser's bad-spec corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written at all.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error text.
        detail: String,
    },
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic {
        /// What the first bytes actually were (possibly fewer than 8).
        found: Vec<u8>,
    },
    /// The version field names a format this build does not speak.
    UnsupportedVersion {
        /// The version in the file.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The file ends before a field it promised.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
        /// What was being read.
        detail: String,
    },
    /// The bytes are structurally invalid (bad checksum, impossible
    /// count, out-of-range index, …).
    Corrupt {
        /// Byte offset of the offending field.
        offset: usize,
        /// What is wrong.
        detail: String,
    },
    /// The checkpoint was taken under a different (spec, config) pair
    /// than the one being resumed.
    SpecMismatch {
        /// Fingerprint of the (spec, config) pair being resumed.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// The run's configuration is unusable (e.g. symmetry with an
    /// explicit injection script, or sizes beyond the state codec's
    /// limits). Raised before any state is explored — fail closed, not
    /// a panic.
    Config {
        /// What is wrong with the configuration.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint io error at {}: {detail}", path.display())
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:02x?}, want {MAGIC:02x?})")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(f, "checkpoint version {found} unsupported (this build reads {supported})")
            }
            CheckpointError::Truncated { offset, detail } => {
                write!(f, "checkpoint truncated at byte {offset}: {detail}")
            }
            CheckpointError::Corrupt { offset, detail } => {
                write!(f, "checkpoint corrupt at byte {offset}: {detail}")
            }
            CheckpointError::SpecMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this spec/config \
                 ({expected:#018x}); refusing to resume"
            ),
            CheckpointError::Config { detail } => {
                write!(f, "unusable configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// When and where an explorer flushes checkpoints.
///
/// Flushes happen at BFS level boundaries — the only points at which
/// the (visited map, frontier, level) triple is a consistent snapshot —
/// at the first boundary after `every_states` newly claimed states,
/// when the budget's wall-clock deadline is within `deadline_window`,
/// and always on budget exhaustion (so a starved run can be continued
/// under a fresh budget).
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Where the checkpoint file lives (rewritten atomically).
    pub path: PathBuf,
    /// Flush at the first level boundary after this many new states
    /// since the last flush (0 = every level).
    pub every_states: usize,
    /// Also flush once less than this much of the budget deadline
    /// remains, so the work survives the deadline kill.
    pub deadline_window: std::time::Duration,
    /// Cooperative-interrupt file: when this path exists at a level
    /// boundary, the explorer flushes a final checkpoint and returns
    /// an interrupted outcome instead of a verdict. This is the
    /// dependency-free stand-in for a SIGINT handler (the hermetic
    /// build has no signal-handling binding); periodic flushes make
    /// even SIGKILL survivable.
    pub stop_file: Option<PathBuf>,
}

impl CheckpointPolicy {
    /// A policy writing to `path` with the default cadence (every
    /// 50 000 states, 2 s deadline window, no stop file).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_states: 50_000,
            deadline_window: std::time::Duration::from_secs(2),
            stop_file: None,
        }
    }

    /// Overrides the state-count cadence.
    pub fn every_states(mut self, n: usize) -> Self {
        self.every_states = n;
        self
    }

    /// Enables the cooperative-interrupt file.
    pub fn with_stop_file(mut self, p: impl Into<PathBuf>) -> Self {
        self.stop_file = Some(p.into());
        self
    }
}

/// One visited-map entry: a claimed state key with its parent link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitedEntry {
    /// The canonical state key.
    pub key: Vec<u8>,
    /// The parent state's key (the initial state points at itself).
    pub parent: Vec<u8>,
    /// The rule label taken from the parent (empty for the initial
    /// state).
    pub label: String,
    /// The BFS level at which the state was claimed.
    pub level: u32,
}

/// A complete explorer snapshot, taken at a BFS level boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the (spec, config) pair the snapshot belongs to.
    pub fingerprint: u64,
    /// Completed BFS levels.
    pub level: usize,
    /// Budget units spent so far (cumulative across resumes).
    pub nodes_spent: u64,
    /// The visited/parent map.
    pub entries: Vec<VisitedEntry>,
    /// The next frontier, in BFS order.
    pub frontier: Vec<GlobalState>,
    /// `parent_ids[i]` is the index within `entries` of entry `i`'s
    /// parent. The version-2 decoder fills this (parents are stored as
    /// indices on disk), letting resume skip the O(n) parent-key lookup
    /// pass; version-1 files leave it `None` and resume falls back to
    /// the lookup. Never serialized.
    pub parent_ids: Option<Vec<u32>>,
}

/// FNV-1a 64-bit, the repo's dependency-free checksum/fingerprint hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The (spec, config) fingerprint recorded in every checkpoint: a hash
/// of the protocol's canonical DSL text and of every [`McConfig`] field
/// that shapes the reachable state space. Two runs with equal
/// fingerprints explore the same space, so resuming one from the
/// other's checkpoint is sound.
pub fn fingerprint(spec: &ProtocolSpec, cfg: &McConfig) -> u64 {
    let mut bytes = vnet_protocol::dsl::to_text(spec).into_bytes();
    bytes.extend(cfg.fingerprint_bytes());
    fnv1a(&bytes)
}

// ---------------------------------------------------------------------
// Primitive little-endian writers/readers.
// ---------------------------------------------------------------------

/// Wraps a payload in the (version-independent) checkpoint envelope:
/// magic, version, fingerprint, length, payload, trailing checksum.
pub(crate) fn seal(fingerprint: u64, version: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 36);
    out.extend(MAGIC);
    put_u32(&mut out, version);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, payload.len() as u64);
    out.extend(&payload);
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend(v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend(v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend(v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend(b);
}

/// Bounds-checked cursor over untrusted bytes. Every read either
/// advances or returns a positioned error — no panics, no partial reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Offset of `buf[0]` within the whole file, for error positions.
    base: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: usize) -> Self {
        Reader { buf, pos: 0, base }
    }

    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated {
                offset: self.offset(),
                detail: format!(
                    "{what} needs {n} byte(s), {} left",
                    self.buf.len() - self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, CheckpointError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length-prefixed byte string. `min_unit` guards against a
    /// corrupt length field demanding more than the file can hold.
    fn bytes(&mut self, what: &str) -> Result<&'a [u8], CheckpointError> {
        let at = self.offset();
        let len = self.u32(what)? as usize;
        if len > self.buf.len() - self.pos {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!(
                    "{what} claims {len} byte(s) but only {} remain",
                    self.buf.len() - self.pos
                ),
            });
        }
        self.take(len, what)
    }

    /// A LEB128 varint ([`crate::codec`]); used only by version-2
    /// shard sections.
    fn varint(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let at = self.offset();
        match crate::codec::read_varint(self.buf, &mut self.pos) {
            Some(v) => Ok(v),
            None => Err(CheckpointError::Truncated {
                offset: at,
                detail: format!("{what}: bad or truncated varint"),
            }),
        }
    }

    /// An element count that must leave at least `min_elem` bytes per
    /// element — rejects corrupt counts before any allocation.
    fn count(&mut self, what: &str, min_elem: usize) -> Result<usize, CheckpointError> {
        let at = self.offset();
        let n = self.u64(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem.max(1)).is_none_or(|need| need > remaining) {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("{what} count {n} impossible with {remaining} byte(s) left"),
            });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// GlobalState serialization.
// ---------------------------------------------------------------------

fn put_node(out: &mut Vec<u8>, n: Node) {
    out.push(match n {
        Node::Cache(i) => i,
        Node::Dir(i) => 0x80 | i,
    });
}

fn put_msg(out: &mut Vec<u8>, m: &Msg) {
    out.push(m.msg);
    out.push(m.addr);
    put_node(out, m.src);
    put_node(out, m.dst);
    out.push(m.requestor);
    out.push(m.ack as u8);
}

fn put_state(out: &mut Vec<u8>, gs: &GlobalState) {
    for row in &gs.caches {
        for l in row {
            out.push(l.state);
            out.push(l.needed_acks as u8);
            out.push(l.readers);
            match l.writer {
                None => out.extend([0u8, 0, 0]),
                Some((w, a)) => out.extend([1u8, w, a as u8]),
            }
        }
    }
    for d in &gs.dirs {
        out.push(d.state);
        out.push(d.owner.map_or(0xff, |o| o));
        out.push(d.sharers);
        out.push(d.pending as u8);
    }
    put_bytes(out, &gs.budgets);
    put_u32(out, gs.used_injections);
    for buf in &gs.global_bufs {
        put_u16(out, buf.len() as u16);
        for m in buf {
            put_msg(out, m);
        }
    }
    for fifo in &gs.endpoint_fifos {
        put_u16(out, fifo.len() as u16);
        for m in fifo {
            put_msg(out, m);
        }
    }
}

fn read_node(r: &mut Reader<'_>, cfg: &McConfig, what: &str) -> Result<Node, CheckpointError> {
    let at = r.offset();
    let b = r.u8(what)?;
    let node = if b & 0x80 != 0 {
        Node::Dir(b & 0x7f)
    } else {
        Node::Cache(b)
    };
    let ok = match node {
        Node::Cache(i) => (i as usize) < cfg.n_caches,
        Node::Dir(i) => (i as usize) < cfg.n_dirs,
    };
    if !ok {
        return Err(CheckpointError::Corrupt {
            offset: at,
            detail: format!("{what}: endpoint {b:#04x} out of range"),
        });
    }
    Ok(node)
}

fn read_msg(
    r: &mut Reader<'_>,
    spec: &ProtocolSpec,
    cfg: &McConfig,
) -> Result<Msg, CheckpointError> {
    let at = r.offset();
    let msg = r.u8("message id")?;
    if msg as usize >= spec.messages().len() {
        return Err(CheckpointError::Corrupt {
            offset: at,
            detail: format!("message id {msg} out of range"),
        });
    }
    let at = r.offset();
    let addr = r.u8("message addr")?;
    if addr as usize >= cfg.n_addrs {
        return Err(CheckpointError::Corrupt {
            offset: at,
            detail: format!("message addr {addr} out of range"),
        });
    }
    let src = read_node(r, cfg, "message src")?;
    let dst = read_node(r, cfg, "message dst")?;
    let at = r.offset();
    let requestor = r.u8("message requestor")?;
    if requestor as usize >= cfg.n_caches {
        return Err(CheckpointError::Corrupt {
            offset: at,
            detail: format!("message requestor {requestor} out of range"),
        });
    }
    let ack = r.u8("message ack")? as i8;
    Ok(Msg {
        msg,
        addr,
        src,
        dst,
        requestor,
        ack,
    })
}

fn read_state(
    r: &mut Reader<'_>,
    spec: &ProtocolSpec,
    cfg: &McConfig,
) -> Result<GlobalState, CheckpointError> {
    let n_cache_states = spec.cache().states().len();
    let n_dir_states = spec.directory().states().len();
    let mut caches = Vec::with_capacity(cfg.n_caches);
    for _ in 0..cfg.n_caches {
        let mut row = Vec::with_capacity(cfg.n_addrs);
        for _ in 0..cfg.n_addrs {
            let at = r.offset();
            let state = r.u8("cache state")?;
            if state as usize >= n_cache_states {
                return Err(CheckpointError::Corrupt {
                    offset: at,
                    detail: format!("cache state {state} out of range"),
                });
            }
            let needed_acks = r.u8("cache acks")? as i8;
            let readers = r.u8("cache readers")?;
            let at = r.offset();
            let wflag = r.u8("writer flag")?;
            let w = r.u8("writer cache")?;
            let wa = r.u8("writer acks")? as i8;
            let writer = match wflag {
                0 => None,
                1 => Some((w, wa)),
                other => {
                    return Err(CheckpointError::Corrupt {
                        offset: at,
                        detail: format!("writer flag {other} (want 0 or 1)"),
                    })
                }
            };
            row.push(CacheLine {
                state,
                needed_acks,
                readers,
                writer,
            });
        }
        caches.push(row);
    }
    let mut dirs = Vec::with_capacity(cfg.n_addrs);
    for _ in 0..cfg.n_addrs {
        let at = r.offset();
        let state = r.u8("dir state")?;
        if state as usize >= n_dir_states {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("dir state {state} out of range"),
            });
        }
        let owner = match r.u8("dir owner")? {
            0xff => None,
            o => Some(o),
        };
        let sharers = r.u8("dir sharers")?;
        let pending = r.u8("dir pending")? as i8;
        dirs.push(DirLine {
            state,
            owner,
            sharers,
            pending,
        });
    }
    let at = r.offset();
    let budgets = r.bytes("per-cache budgets")?.to_vec();
    let expected_budgets = match &cfg.budget {
        crate::config::InjectionBudget::PerCache(_) => cfg.n_caches,
        crate::config::InjectionBudget::Explicit(_) => 0,
    };
    if budgets.len() != expected_budgets {
        return Err(CheckpointError::Corrupt {
            offset: at,
            detail: format!(
                "budget vector has {} entries, config wants {expected_budgets}",
                budgets.len()
            ),
        });
    }
    let used_injections = r.u32("used injections")?;
    let n_vns = cfg.vns.n_vns();
    let mut global_bufs = Vec::with_capacity(n_vns * 2);
    for _ in 0..n_vns * 2 {
        let n = r.u16("global buffer length")? as usize;
        let mut buf = VecDeque::with_capacity(n.min(1024));
        for _ in 0..n {
            buf.push_back(read_msg(r, spec, cfg)?);
        }
        global_bufs.push(buf);
    }
    let mut endpoint_fifos = Vec::with_capacity(cfg.n_endpoints() * n_vns);
    for _ in 0..cfg.n_endpoints() * n_vns {
        let n = r.u16("endpoint fifo length")? as usize;
        let mut fifo = VecDeque::with_capacity(n.min(1024));
        for _ in 0..n {
            fifo.push_back(read_msg(r, spec, cfg)?);
        }
        endpoint_fifos.push(fifo);
    }
    Ok(GlobalState {
        caches,
        dirs,
        budgets,
        used_injections,
        global_bufs,
        endpoint_fifos,
    })
}

// ---------------------------------------------------------------------
// Version-2 shard sections.
// ---------------------------------------------------------------------

/// Keys restart the delta chain this often within a shard section, so a
/// corrupt delta cannot poison more than one block and decoding never
/// needs more than one chain in memory.
const SHARD_RESTART: u64 = 16;

/// Streaming encoder for one version-2 shard section: a label table in
/// first-use order, then entries whose keys are delta-compressed against
/// their predecessor and whose parents are `(shard, index)` references.
/// Also used stand-alone by the process-sharded explorer, whose per-
/// shard artifacts are single sections behind the same envelope.
pub(crate) struct ShardEncoder {
    labels: Vec<u8>,
    label_idx: std::collections::HashMap<String, u32>,
    n_labels: u32,
    entries: Vec<u8>,
    count: u64,
    prev_key: Vec<u8>,
}

impl ShardEncoder {
    pub(crate) fn new() -> Self {
        ShardEncoder {
            labels: Vec::new(),
            label_idx: std::collections::HashMap::new(),
            n_labels: 0,
            entries: Vec::new(),
            count: 0,
            prev_key: Vec::new(),
        }
    }

    /// Appends one entry. Keys must arrive in the section's final order
    /// (the delta reference is simply the previous key).
    pub(crate) fn push(&mut self, key: &[u8], parent_shard: u32, parent_idx: u32, label: &str, level: u32) {
        let label_id = match self.label_idx.get(label) {
            Some(&id) => id,
            None => {
                let id = self.n_labels;
                self.n_labels += 1;
                put_bytes(&mut self.labels, label.as_bytes());
                self.label_idx.insert(label.to_string(), id);
                id
            }
        };
        let reference: &[u8] = if self.count.is_multiple_of(SHARD_RESTART) {
            &[]
        } else {
            &self.prev_key
        };
        crate::codec::encode_delta(reference, key, &mut self.entries);
        crate::codec::put_varint(&mut self.entries, parent_shard as u64);
        crate::codec::put_varint(&mut self.entries, parent_idx as u64);
        crate::codec::put_varint(&mut self.entries, label_id as u64);
        crate::codec::put_varint(&mut self.entries, level as u64);
        self.prev_key.clear();
        self.prev_key.extend_from_slice(key);
        self.count += 1;
    }

    /// Serializes the section.
    pub(crate) fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.labels.len() + self.entries.len());
        put_u32(&mut out, self.n_labels);
        out.extend(&self.labels);
        put_u64(&mut out, self.count);
        out.extend(&self.entries);
        out
    }
}

/// One decoded version-2 shard entry; the parent is still a
/// `(shard, index)` reference (globalized by the caller).
pub(crate) struct ShardEntry {
    pub(crate) key: Vec<u8>,
    pub(crate) parent_shard: u32,
    pub(crate) parent_idx: u32,
    pub(crate) label: u32,
    pub(crate) level: u32,
}

/// Decodes one shard section. `base` is the section's byte offset in
/// the surrounding file, for error positions.
pub(crate) fn decode_shard_section(
    bytes: &[u8],
    base: usize,
) -> Result<(Vec<String>, Vec<ShardEntry>), CheckpointError> {
    let mut r = Reader::new(bytes, base);
    let n_labels = r.u32("shard label count")? as usize;
    if n_labels > bytes.len() {
        return Err(CheckpointError::Corrupt {
            offset: base,
            detail: format!("shard label count {n_labels} impossible"),
        });
    }
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let at = r.offset();
        match std::str::from_utf8(r.bytes("shard label")?) {
            Ok(s) => labels.push(s.to_string()),
            Err(e) => {
                return Err(CheckpointError::Corrupt {
                    offset: at,
                    detail: format!("shard label is not UTF-8: {e}"),
                })
            }
        }
    }
    let n_entries = r.count("shard entries", 5)?;
    let mut entries = Vec::with_capacity(n_entries);
    let mut prev_key: Vec<u8> = Vec::new();
    let mut key = Vec::new();
    for i in 0..n_entries {
        let at = r.offset();
        let reference: &[u8] = if (i as u64).is_multiple_of(SHARD_RESTART) {
            &[]
        } else {
            &prev_key
        };
        if crate::codec::decode_delta(reference, r.buf, &mut r.pos, &mut key).is_none() {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("shard entry {i}: malformed key delta"),
            });
        }
        let parent_shard = r.varint("entry parent shard")?;
        let parent_idx = r.varint("entry parent index")?;
        let label = r.varint("entry label id")?;
        let level = r.varint("entry level")?;
        if parent_shard > u32::MAX as u64
            || parent_idx > u32::MAX as u64
            || level > u32::MAX as u64
            || label as usize >= labels.len()
        {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("shard entry {i}: field out of range"),
            });
        }
        entries.push(ShardEntry {
            key: key.clone(),
            parent_shard: parent_shard as u32,
            parent_idx: parent_idx as u32,
            label: label as u32,
            level: level as u32,
        });
        std::mem::swap(&mut prev_key, &mut key);
    }
    if r.pos != r.buf.len() {
        return Err(CheckpointError::Corrupt {
            offset: r.offset(),
            detail: format!("{} unread byte(s) in shard section", r.buf.len() - r.pos),
        });
    }
    Ok((labels, entries))
}

// ---------------------------------------------------------------------
// Checkpoint encode/decode and file IO.
// ---------------------------------------------------------------------

impl Checkpoint {
    /// Serializes the snapshot to the version-1 wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.entries.len() * 64);
        put_u64(&mut payload, self.level as u64);
        put_u64(&mut payload, self.nodes_spent);
        put_u64(&mut payload, self.entries.len() as u64);
        // Sorted key order: equal progress ⇒ byte-identical checkpoints.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| self.entries[a].key.cmp(&self.entries[b].key));
        for i in order {
            let e = &self.entries[i];
            put_bytes(&mut payload, &e.key);
            put_bytes(&mut payload, &e.parent);
            put_bytes(&mut payload, e.label.as_bytes());
            put_u32(&mut payload, e.level);
        }
        put_u64(&mut payload, self.frontier.len() as u64);
        for gs in &self.frontier {
            put_state(&mut payload, gs);
        }

        seal(self.fingerprint, V1, payload)
    }

    /// Serializes the snapshot to the version-2 wire format (single
    /// shard section, sorted key order — equal progress still produces
    /// byte-identical files). Fails if a frontier state or a parent key
    /// is absent from `entries`: that is not a consistent snapshot.
    pub fn to_bytes_v2(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut order: Vec<u32> = (0..self.entries.len() as u32).collect();
        order.sort_by(|&a, &b| self.entries[a as usize].key.cmp(&self.entries[b as usize].key));
        let mut pos = std::collections::HashMap::with_capacity(order.len());
        for (i, &e) in order.iter().enumerate() {
            pos.insert(self.entries[e as usize].key.as_slice(), i as u32);
        }
        let mut enc = ShardEncoder::new();
        for &ei in &order {
            let e = &self.entries[ei as usize];
            let Some(&p) = pos.get(e.parent.as_slice()) else {
                return Err(CheckpointError::Corrupt {
                    offset: 0,
                    detail: format!("entry {ei} has a parent outside the visited set"),
                });
            };
            enc.push(&e.key, 0, p, &e.label, e.level);
        }
        let section = enc.finish();

        let mut payload = Vec::with_capacity(44 + section.len() + self.frontier.len() * 8);
        put_u64(&mut payload, self.level as u64);
        put_u64(&mut payload, self.nodes_spent);
        put_u32(&mut payload, 1); // n_shards
        put_u64(&mut payload, section.len() as u64);
        put_u64(&mut payload, fnv1a(&section));
        payload.extend(&section);
        put_u64(&mut payload, self.frontier.len() as u64);
        let mut scratch = Vec::with_capacity(128);
        for (i, gs) in self.frontier.iter().enumerate() {
            gs.encode_into(&mut scratch);
            let Some(&idx) = pos.get(scratch.as_slice()) else {
                return Err(CheckpointError::Corrupt {
                    offset: 0,
                    detail: format!("frontier state {i} is not in the visited set"),
                });
            };
            put_u32(&mut payload, 0); // shard
            put_u32(&mut payload, idx);
        }
        Ok(seal(self.fingerprint, V2, payload))
    }

    /// Decodes and fully validates a version-1 checkpoint against the
    /// (spec, config) pair being resumed. Fails closed on any defect.
    pub fn from_bytes(
        bytes: &[u8],
        spec: &ProtocolSpec,
        cfg: &McConfig,
    ) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic {
                found: bytes[..bytes.len().min(MAGIC.len())].to_vec(),
            });
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..], MAGIC.len());
        let version = r.u32("version")?;
        if version != V1 && version != V2 {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let stored_fp = r.u64("fingerprint")?;
        let at = r.offset();
        let payload_len = r.u64("payload length")? as usize;
        let header_end = r.offset();
        // The file must be exactly header + payload + 8-byte checksum.
        let want = header_end + payload_len + 8;
        if bytes.len() < want {
            return Err(CheckpointError::Truncated {
                offset: bytes.len(),
                detail: format!("file is {} byte(s), payload promises {want}", bytes.len()),
            });
        }
        if bytes.len() > want {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("{} trailing byte(s) after checksum", bytes.len() - want),
            });
        }
        let stored_sum = {
            let b = &bytes[want - 8..];
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        };
        let computed = fnv1a(&bytes[..want - 8]);
        if stored_sum != computed {
            return Err(CheckpointError::Corrupt {
                offset: want - 8,
                detail: format!("checksum {stored_sum:#018x} != computed {computed:#018x}"),
            });
        }
        let expected_fp = fingerprint(spec, cfg);
        if stored_fp != expected_fp {
            return Err(CheckpointError::SpecMismatch {
                expected: expected_fp,
                found: stored_fp,
            });
        }

        let mut r = Reader::new(&bytes[header_end..want - 8], header_end);
        if version == V2 {
            return Checkpoint::payload_v2(r, stored_fp, spec, cfg);
        }
        let level = r.u64("level")? as usize;
        let nodes_spent = r.u64("nodes spent")?;
        let n_entries = r.count("visited entries", 16)?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let key = r.bytes("entry key")?.to_vec();
            let parent = r.bytes("entry parent")?.to_vec();
            let at = r.offset();
            let label = match std::str::from_utf8(r.bytes("entry label")?) {
                Ok(s) => s.to_string(),
                Err(e) => {
                    return Err(CheckpointError::Corrupt {
                        offset: at,
                        detail: format!("entry label is not UTF-8: {e}"),
                    })
                }
            };
            let level = r.u32("entry level")?;
            entries.push(VisitedEntry {
                key,
                parent,
                label,
                level,
            });
        }
        let n_frontier = r.count("frontier states", 8)?;
        let mut frontier = Vec::with_capacity(n_frontier);
        for _ in 0..n_frontier {
            frontier.push(read_state(&mut r, spec, cfg)?);
        }
        if r.pos != r.buf.len() {
            return Err(CheckpointError::Corrupt {
                offset: r.offset(),
                detail: format!("{} unread byte(s) in payload", r.buf.len() - r.pos),
            });
        }
        Ok(Checkpoint {
            fingerprint: stored_fp,
            level,
            nodes_spent,
            entries,
            frontier,
            parent_ids: None,
        })
    }

    /// Parses a version-2 payload (the envelope — checksum, fingerprint,
    /// exact length — has already been validated).
    fn payload_v2(
        mut r: Reader<'_>,
        stored_fp: u64,
        _spec: &ProtocolSpec,
        cfg: &McConfig,
    ) -> Result<Checkpoint, CheckpointError> {
        let level = r.u64("level")? as usize;
        let nodes_spent = r.u64("nodes spent")?;
        let at = r.offset();
        let n_shards = r.u32("shard count")? as usize;
        if n_shards == 0 || n_shards > (1 << 16) {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("shard count {n_shards} out of range"),
            });
        }
        let mut manifest = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let len = r.u64("shard section length")? as usize;
            let sum = r.u64("shard section checksum")?;
            manifest.push((len, sum));
        }
        // Decode every section, tracking per-shard entry offsets so
        // parent references can be globalized.
        let mut sections = Vec::with_capacity(n_shards);
        let mut offsets = Vec::with_capacity(n_shards + 1);
        let mut total = 0u64;
        for (i, &(len, sum)) in manifest.iter().enumerate() {
            let at = r.offset();
            let bytes = r.take(len, "shard section")?;
            let computed = fnv1a(bytes);
            if computed != sum {
                return Err(CheckpointError::Corrupt {
                    offset: at,
                    detail: format!(
                        "shard {i} checksum {sum:#018x} != computed {computed:#018x}"
                    ),
                });
            }
            let (labels, entries) = decode_shard_section(bytes, at)?;
            offsets.push(total);
            total += entries.len() as u64;
            sections.push((labels, entries));
        }
        offsets.push(total);
        if total > u32::MAX as u64 {
            return Err(CheckpointError::Corrupt {
                offset: at,
                detail: format!("{total} entries exceed the id space"),
            });
        }
        // Globalize: flatten shard order, resolve parents to indices,
        // and materialize parent keys so version-1 consumers are none
        // the wiser.
        let mut entries = Vec::with_capacity(total as usize);
        let mut parent_ids = Vec::with_capacity(total as usize);
        for (si, (labels, shard)) in sections.iter().enumerate() {
            for (ei, e) in shard.iter().enumerate() {
                let ps = e.parent_shard as usize;
                if ps >= n_shards || e.parent_idx as u64 >= offsets[ps + 1] - offsets[ps] {
                    return Err(CheckpointError::Corrupt {
                        offset: 0,
                        detail: format!(
                            "shard {si} entry {ei} parent ({ps}, {}) out of range",
                            e.parent_idx
                        ),
                    });
                }
                parent_ids.push((offsets[ps] + e.parent_idx as u64) as u32);
                entries.push(VisitedEntry {
                    key: e.key.clone(),
                    parent: Vec::new(), // patched below, once all keys exist
                    label: labels[e.label as usize].clone(),
                    level: e.level,
                });
            }
        }
        for i in 0..entries.len() {
            let parent_key = entries[parent_ids[i] as usize].key.clone();
            entries[i].parent = parent_key;
        }
        let n_frontier = r.count("frontier references", 8)?;
        let mut frontier = Vec::with_capacity(n_frontier);
        for i in 0..n_frontier {
            let at = r.offset();
            let shard = r.u32("frontier shard")? as usize;
            let idx = r.u32("frontier index")? as u64;
            if shard >= n_shards || idx >= offsets[shard + 1] - offsets[shard] {
                return Err(CheckpointError::Corrupt {
                    offset: at,
                    detail: format!("frontier reference {i} ({shard}, {idx}) out of range"),
                });
            }
            let key = &entries[(offsets[shard] + idx) as usize].key;
            match GlobalState::decode(key, cfg) {
                Some(gs) => frontier.push(gs),
                None => {
                    return Err(CheckpointError::Corrupt {
                        offset: at,
                        detail: format!("frontier reference {i}: key does not decode"),
                    })
                }
            }
        }
        if r.pos != r.buf.len() {
            return Err(CheckpointError::Corrupt {
                offset: r.offset(),
                detail: format!("{} unread byte(s) in payload", r.buf.len() - r.pos),
            });
        }
        Ok(Checkpoint {
            fingerprint: stored_fp,
            level,
            nodes_spent,
            entries,
            frontier,
            parent_ids: Some(parent_ids),
        })
    }

    /// Writes the checkpoint to `path` via a temp file and atomic
    /// rename: a crash mid-write leaves any previous checkpoint intact.
    pub fn write_to(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes()).map_err(|e| CheckpointError::Io {
            path: tmp.clone(),
            detail: e.to_string(),
        })?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Like [`Checkpoint::write_to`], in the version-2 format.
    pub fn write_to_v2(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes_v2()?;
        let io = |e: std::io::Error| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, bytes).map_err(|e| CheckpointError::Io {
            path: tmp.clone(),
            detail: e.to_string(),
        })?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Reads, validates, and decodes the checkpoint at `path` for the
    /// given (spec, config) pair.
    pub fn load(
        path: &Path,
        spec: &ProtocolSpec,
        cfg: &McConfig,
    ) -> Result<Checkpoint, CheckpointError> {
        // A crash mid-flush can strand `<path>.tmp`; the rename is the
        // commit point, so such a file is garbage by construction and
        // is cleared on resume rather than left to accumulate.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(PathBuf::from(tmp));
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        Checkpoint::from_bytes(&bytes, spec, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use vnet_protocol::protocols;

    fn sample(level_states: usize) -> (ProtocolSpec, McConfig, Checkpoint) {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let initial = GlobalState::initial(&spec, &cfg);
        let key = initial.encode();
        let mut entries = vec![VisitedEntry {
            key: key.clone(),
            parent: key.clone(),
            label: String::new(),
            level: 0,
        }];
        for i in 0..level_states {
            let mut s = initial.clone();
            s.used_injections = 1 + i as u32;
            entries.push(VisitedEntry {
                key: s.encode(),
                parent: key.clone(),
                label: format!("rule-{i}"),
                level: 1,
            });
        }
        let ckpt = Checkpoint {
            fingerprint: fingerprint(&spec, &cfg),
            level: 1,
            nodes_spent: level_states as u64,
            entries,
            frontier: vec![initial],
            parent_ids: None,
        };
        (spec, cfg, ckpt)
    }

    #[test]
    fn roundtrips_bit_exactly() -> Result<(), CheckpointError> {
        let (spec, cfg, ckpt) = sample(5);
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes, &spec, &cfg)?;
        assert_eq!(back.level, ckpt.level);
        assert_eq!(back.nodes_spent, ckpt.nodes_spent);
        assert_eq!(back.frontier, ckpt.frontier);
        // Entries come back in sorted-key order; compare as sets.
        let mut a = ckpt.entries.clone();
        a.sort_by(|x, y| x.key.cmp(&y.key));
        assert_eq!(back.entries, a);
        // Same progress ⇒ byte-identical re-encode.
        assert_eq!(back.to_bytes(), bytes);
        Ok(())
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (spec, cfg, ckpt) = sample(2);
        let bytes = ckpt.to_bytes();
        for cut in 0..bytes.len() {
            let r = Checkpoint::from_bytes(&bytes[..cut], &spec, &cfg);
            assert!(
                matches!(
                    r,
                    Err(CheckpointError::BadMagic { .. }
                        | CheckpointError::Truncated { .. }
                        | CheckpointError::Corrupt { .. })
                ),
                "cut at {cut} not rejected: {r:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_detected() {
        // Any one-bit flip must fail the checksum (or an earlier check);
        // sample every 7th byte to keep the test fast.
        let (spec, cfg, ckpt) = sample(2);
        let bytes = ckpt.to_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                Checkpoint::from_bytes(&bad, &spec, &cfg).is_err(),
                "bit flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn wrong_version_and_wrong_spec_are_structured_errors() {
        let (spec, cfg, ckpt) = sample(1);
        let mut bad = ckpt.to_bytes();
        bad[8] = 99; // version field
        assert!(matches!(
            Checkpoint::from_bytes(&bad, &spec, &cfg),
            Err(CheckpointError::UnsupportedVersion { found: 99, .. })
        ));

        // Same bytes, different config ⇒ fingerprint mismatch (the
        // checksum is fine; the guard is the fingerprint).
        let bytes = ckpt.to_bytes();
        let other_cfg = McConfig::general(&spec);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes, &spec, &other_cfg),
            Err(CheckpointError::SpecMismatch { .. })
        ));
        let other_spec = protocols::mesi_blocking_cache();
        let other_cfg = McConfig::figure3(&other_spec);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes, &other_spec, &other_cfg),
            Err(CheckpointError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (spec, cfg, ckpt) = sample(1);
        let mut bad = ckpt.to_bytes();
        bad.extend([0u8; 4]);
        assert!(matches!(
            Checkpoint::from_bytes(&bad, &spec, &cfg),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn file_roundtrip_and_io_error() -> Result<(), CheckpointError> {
        let (spec, cfg, ckpt) = sample(3);
        let dir = std::env::temp_dir().join(format!("vnet-ckpt-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("roundtrip.ckpt");
        ckpt.write_to(&path)?;
        let back = Checkpoint::load(&path, &spec, &cfg)?;
        assert_eq!(back.to_bytes(), ckpt.to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            Checkpoint::load(&dir.join("missing.ckpt"), &spec, &cfg),
            Err(CheckpointError::Io { .. })
        ));
        Ok(())
    }

    #[test]
    fn fingerprint_is_sensitive_to_spec_and_config() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let base = fingerprint(&spec, &cfg);
        assert_eq!(base, fingerprint(&spec, &cfg.clone()));
        let mut bigger = cfg.clone();
        bigger.n_caches += 1;
        assert_ne!(base, fingerprint(&spec, &bigger));
        let other = protocols::mesi_blocking_cache();
        assert_ne!(base, fingerprint(&other, &McConfig::figure3(&other)));
        // Truncation knobs are not part of the fingerprint: a resumed
        // run may raise (or lower) the bounds.
        assert_eq!(
            base,
            fingerprint(&spec, &cfg.clone().with_limits(1000, Some(4)))
        );
    }
}
