//! The fail-closed differential oracle: static analyzer vs bounded
//! explicit-state model checker.
//!
//! For a validated mutant the oracle asks one question: **does the model
//! checker ever find a deadlock under a VN configuration the analyzer
//! certified as safe?** A deadlock trace is definitive no matter how much
//! of the space was left unexplored, so a single bounded run suffices to
//! *refute* the analyzer — while agreement is only ever claimed when the
//! bounded run completed. Every other case degrades to a non-pass.
//!
//! Determinism: the oracle is bounded exclusively by state/node counts,
//! never wall-clock, so the same mutant always produces the same outcome
//! byte-for-byte (a requirement for replayable campaign reports).

use vnet_core::{analyze_budgeted, Budget, VnOutcome};
use vnet_mc::{check_parameterized, explore_budgeted, McConfig, Verdict, VnMap};
use vnet_protocol::ProtocolSpec;

/// Oracle bounds and drill switches.
#[derive(Debug, Clone)]
pub struct OracleOpts {
    /// Model-checker state cap per run (deterministic truncation).
    pub max_states: usize,
    /// Model-checker depth cap per run, if any.
    pub max_depth: Option<usize>,
    /// Node budget for the static analyzer's solvers.
    pub analyzer_nodes: u64,
    /// Drill switch: check safety under the assigned VN count **minus
    /// one** (top VN merged down) instead of the assigned map. On a
    /// protocol whose minimum is tight this deterministically
    /// manufactures a `Disagreement`, exercising the full exit-8 →
    /// shrink → repro-bundle path end to end. Never set outside drills.
    pub skew: bool,
    /// Run the bounded checker on the general scenario under cache ×
    /// address symmetry reduction instead of the Figure-3 script. A
    /// different (larger, folded) state space per bound — recorded in
    /// the recipe so replays stay byte-identical.
    pub symmetry: bool,
}

impl Default for OracleOpts {
    fn default() -> Self {
        OracleOpts {
            // Sized so the Table I Class-3 protocols (e.g. CHI: ~203k
            // states) explore figure3 to completion under their assigned
            // maps — a complete run is what lets `Consistent` be claimed.
            max_states: 250_000,
            max_depth: None,
            analyzer_nodes: 2_000_000,
            skew: false,
            symmetry: false,
        }
    }
}

/// What the pipeline concluded about one mutant. Only `Consistent` is a
/// pass; everything else is fail-closed in its own way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutantOutcome {
    /// The mutant's DSL rendering failed to re-parse or re-render
    /// canonically — a round-trip defect, attributed to the DSL itself.
    RoundTripFailed {
        /// The parse error or canonicalization mismatch.
        error: String,
    },
    /// `validate` rejected the mutant (the expected fate of most
    /// structural edits).
    ValidateRejected {
        /// The validation error rendering.
        error: String,
    },
    /// The model checker rejected the mutant as semantically broken
    /// (undefined reception or SWMR violation) — not a VN disagreement,
    /// but never a pass either.
    ModelRejected {
        /// The verdict detail.
        detail: String,
    },
    /// Analyzer and model checker agree within the explored bound.
    Consistent {
        /// Analyzer-assigned VN count (`None` for Class 2).
        n_vns: Option<usize>,
        /// Human-readable agreement summary.
        detail: String,
    },
    /// A bound was exhausted before either side could commit — never
    /// counted as a pass.
    Undetermined {
        /// Which bound and where.
        reason: String,
    },
    /// The analyzer certified a configuration the model checker
    /// deadlocks under. The finding the fuzzer exists for; exit 8.
    Disagreement {
        /// VN count of the checked (deadlocking) configuration.
        checked_vns: usize,
        /// Analyzer-assigned VN count.
        assigned_vns: usize,
        /// BFS depth of the counterexample.
        depth: usize,
        /// States explored at detection time.
        states: usize,
        /// Counterexample summary.
        detail: String,
    },
}

impl MutantOutcome {
    /// Short machine-stable tag for reports and metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            MutantOutcome::RoundTripFailed { .. } => "roundtrip_failed",
            MutantOutcome::ValidateRejected { .. } => "validate_rejected",
            MutantOutcome::ModelRejected { .. } => "model_rejected",
            MutantOutcome::Consistent { .. } => "consistent",
            MutantOutcome::Undetermined { .. } => "undetermined",
            MutantOutcome::Disagreement { .. } => "disagreement",
        }
    }

    /// `true` for the exit-8 finding.
    pub fn is_disagreement(&self) -> bool {
        matches!(self, MutantOutcome::Disagreement { .. })
    }

    /// The detail/error/reason payload, whichever the variant carries.
    pub fn detail(&self) -> &str {
        match self {
            MutantOutcome::RoundTripFailed { error } => error,
            MutantOutcome::ValidateRejected { error } => error,
            MutantOutcome::ModelRejected { detail } => detail,
            MutantOutcome::Consistent { detail, .. } => detail,
            MutantOutcome::Undetermined { reason } => reason,
            MutantOutcome::Disagreement { detail, .. } => detail,
        }
    }
}

/// Merges the top VN into the one below it: a deterministic
/// under-provisioning of an `n`-VN map to `n - 1` VNs.
fn merge_top_vn(map: &VnMap) -> VnMap {
    let n = map.n_vns();
    debug_assert!(n >= 2);
    let vns = map
        .vn_vector()
        .iter()
        .map(|&v| if v == n - 1 { n - 2 } else { v })
        .collect();
    VnMap::from_vns(vns)
}

fn bounded_cfg(spec: &ProtocolSpec, opts: &OracleOpts, vns: VnMap) -> McConfig {
    if opts.symmetry {
        // The flag is set directly rather than through `with_symmetry()`:
        // the general scenario always satisfies the symmetry
        // preconditions, the explorers re-validate fail-closed at run
        // time, and the fuzz harness keeps zero panic sites in
        // production code (a harness panic is a finding lost).
        let mut cfg = McConfig::general(spec)
            .with_vns(vns)
            .with_limits(opts.max_states, opts.max_depth);
        cfg.symmetry = true;
        cfg
    } else {
        McConfig::figure3(spec)
            .with_vns(vns)
            .with_limits(opts.max_states, opts.max_depth)
    }
}

/// Runs the differential oracle on a **validated** mutant.
pub fn run_oracle(spec: &ProtocolSpec, opts: &OracleOpts) -> MutantOutcome {
    // Bound the analyzer by node count only: wall-clock budgets would
    // make outcomes (and thus reports) machine-dependent.
    let analyzer_budget = Budget::unlimited().with_node_limit(opts.analyzer_nodes);
    let report = analyze_budgeted(spec, &analyzer_budget);
    let n_messages = spec.messages().len();
    let mc_budget = Budget::unlimited();

    match report.outcome() {
        VnOutcome::Class2(_) => {
            // The analyzer claims *no* per-message-name assignment can
            // prevent deadlock. A bounded run that deadlocks even with
            // one VN per message corroborates it; a clean bounded run
            // does not contradict it (one scenario, bounded) — either
            // way this is not the analyzer making an unsafe promise.
            let cfg = bounded_cfg(spec, opts, VnMap::one_per_message(n_messages));
            // Third advisory leg: the flow-abstraction checker on the
            // same config. It derives from the same waits relation the
            // analyzer's Class-2 verdict does, so a free-for-all-N
            // claim here is a certifier contradiction — escalated,
            // never reconciled. Under the Figure-3 script the
            // abstraction is inapplicable and the leg honestly records
            // `flow-inapplicable`.
            let flow = check_parameterized(spec, &cfg);
            let flow_note = flow.summary();
            match explore_budgeted(spec, &cfg, &mc_budget) {
                Verdict::Deadlock { depth, stats, .. } => {
                    if flow.is_free_for_all_n() {
                        return MutantOutcome::Disagreement {
                            checked_vns: n_messages,
                            assigned_vns: n_messages,
                            depth,
                            states: stats.states,
                            detail: format!(
                                "class2 analyzer verdict (corroborated by an mc deadlock at \
                                 depth {depth}) contradicted by the flow leg: {flow_note}"
                            ),
                        };
                    }
                    MutantOutcome::Consistent {
                        n_vns: None,
                        detail: format!(
                            "class2; mc deadlocks at depth {depth} even with one VN per \
                             message; flow leg: {flow_note}"
                        ),
                    }
                }
                Verdict::NoDeadlock(stats) => {
                    if flow.is_free_for_all_n() {
                        return MutantOutcome::Disagreement {
                            checked_vns: n_messages,
                            assigned_vns: n_messages,
                            depth: 0,
                            states: stats.states,
                            detail: format!(
                                "class2 analyzer verdict contradicted by the flow leg: \
                                 {flow_note}"
                            ),
                        };
                    }
                    MutantOutcome::Consistent {
                        n_vns: None,
                        detail: format!(
                            "class2; bounded scenario found no deadlock (not a \
                             contradiction); flow leg: {flow_note}"
                        ),
                    }
                }
                Verdict::ModelError { detail, .. } => MutantOutcome::ModelRejected {
                    detail: format!("model error: {detail}"),
                },
                Verdict::InvariantViolation { detail, .. } => MutantOutcome::ModelRejected {
                    detail: format!("invariant violation: {detail}"),
                },
            }
        }
        VnOutcome::Assigned {
            assignment,
            provenance,
            ..
        } => {
            if !provenance.is_exact() {
                return MutantOutcome::Undetermined {
                    reason: "analyzer solvers degraded; assignment may be non-minimal".to_string(),
                };
            }
            let assigned_vns = assignment.n_vns();
            let assigned_map = VnMap::from_assignment(assignment, n_messages);
            let (checked_map, skewed) = if opts.skew && assigned_vns >= 2 {
                (merge_top_vn(&assigned_map), true)
            } else {
                (assigned_map.clone(), false)
            };
            let checked_vns = checked_map.n_vns();

            let cfg = bounded_cfg(spec, opts, checked_map);
            // Third advisory leg on the checked map. A free-for-all-N
            // claim that the explicit leg then refutes with a deadlock
            // is already a Disagreement; the note keeps the
            // contradiction on record either way.
            let flow = check_parameterized(spec, &cfg);
            let flow_note = flow.summary();
            match explore_budgeted(spec, &cfg, &mc_budget) {
                Verdict::Deadlock { depth, stats, .. } => MutantOutcome::Disagreement {
                    checked_vns,
                    assigned_vns,
                    depth,
                    states: stats.states,
                    detail: if skewed {
                        format!(
                            "oracle skew drill: mc deadlock at depth {depth} under {checked_vns} \
                             VNs (analyzer assigned {assigned_vns}); flow leg: {flow_note}"
                        )
                    } else {
                        format!(
                            "mc deadlock at depth {depth} under the analyzer-certified \
                             {assigned_vns}-VN assignment; flow leg: {flow_note}"
                        )
                    },
                },
                Verdict::ModelError { detail, .. } => MutantOutcome::ModelRejected {
                    detail: format!("model error: {detail}"),
                },
                Verdict::InvariantViolation { detail, .. } => MutantOutcome::ModelRejected {
                    detail: format!("invariant violation: {detail}"),
                },
                Verdict::NoDeadlock(stats) if stats.complete => {
                    // Safety agreed. Probe minimality at n-1 VNs: a
                    // deadlock there *witnesses* the assignment is tight;
                    // a clean bounded run proves nothing (one scenario)
                    // and is NOT a disagreement.
                    let detail = if skewed || assigned_vns < 2 {
                        format!("no deadlock under {checked_vns} VNs (complete)")
                    } else {
                        let probe_cfg = bounded_cfg(spec, opts, merge_top_vn(&assigned_map));
                        match explore_budgeted(spec, &probe_cfg, &mc_budget) {
                            Verdict::Deadlock { depth, .. } => format!(
                                "no deadlock under {assigned_vns} VNs (complete); minimality \
                                 witnessed: {} VNs deadlock at depth {depth}",
                                assigned_vns - 1
                            ),
                            _ => format!(
                                "no deadlock under {assigned_vns} VNs (complete); minimality not \
                                 witnessed in this bounded scenario"
                            ),
                        }
                    };
                    MutantOutcome::Consistent {
                        n_vns: Some(assigned_vns),
                        detail: format!("{detail}; flow leg: {flow_note}"),
                    }
                }
                // Bound exhaustion is never a pass — even a
                // free-for-all-N flow claim stays advisory here, since
                // the explicit leg could not weigh in.
                Verdict::NoDeadlock(stats) => MutantOutcome::Undetermined {
                    reason: format!(
                        "safety check under {checked_vns} VNs hit the {}-state bound at level {} \
                         without a verdict; flow leg (advisory, not a pass): {flow_note}",
                        opts.max_states, stats.levels
                    ),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    fn small_opts() -> OracleOpts {
        OracleOpts {
            max_states: 60_000,
            ..OracleOpts::default()
        }
    }

    #[test]
    fn unmutated_chi_is_consistent() {
        // CHI is Class 3 with a 2-VN assignment whose figure3 space
        // (~203k states) completes within the default bound.
        let spec = protocols::chi();
        let out = run_oracle(&spec, &OracleOpts::default());
        match &out {
            MutantOutcome::Consistent { n_vns, detail } => {
                assert_eq!(*n_vns, Some(2), "CHI assigns 2 VNs");
                assert!(detail.contains("complete"), "{detail}");
                // The flow leg is always on record; the Figure-3 script
                // names specific caches, so it honestly reports
                // inapplicable rather than claiming a parameterized
                // result it cannot certify.
                assert!(detail.contains("flow leg: flow-inapplicable"), "{detail}");
            }
            other => panic!("expected Consistent, got {other:?}"),
        }
    }

    #[test]
    fn flow_free_claim_never_upgrades_an_exhausted_bound_to_a_pass() {
        // Symmetric general MSI-nonblocking under its assigned 2-VN map:
        // the flow leg certifies freedom for all N, but the tiny state
        // bound stops the explicit leg short — the outcome must stay
        // Undetermined with the flow claim recorded as advisory only.
        let spec = protocols::msi_nonblocking_cache();
        let opts = OracleOpts {
            max_states: 20_000,
            symmetry: true,
            ..OracleOpts::default()
        };
        let out = run_oracle(&spec, &opts);
        match &out {
            MutantOutcome::Undetermined { reason } => {
                assert!(
                    reason.contains("flow leg (advisory, not a pass): flow-free-all-n"),
                    "{reason}"
                );
            }
            other => panic!("expected Undetermined, got {other:?}"),
        }
    }

    #[test]
    fn class2_blocking_msi_is_consistent() {
        // Textbook blocking MSI has a waits cycle (Class 2); the bounded
        // checker corroborates it dynamically.
        let spec = protocols::msi_blocking_cache();
        let out = run_oracle(&spec, &small_opts());
        match &out {
            MutantOutcome::Consistent { n_vns, detail } => {
                assert_eq!(*n_vns, None);
                assert!(detail.starts_with("class2"), "{detail}");
            }
            other => panic!("expected Consistent, got {other:?}"),
        }
    }

    #[test]
    fn skew_drill_forces_a_disagreement_on_chi() {
        // Merging CHI's 2-VN assignment down to one VN deadlocks the
        // directed scenario at depth 20 — the drill that exercises the
        // exit-8 → shrink → bundle path without a real analyzer bug.
        let spec = protocols::chi();
        let opts = OracleOpts {
            skew: true,
            ..OracleOpts::default()
        };
        let out = run_oracle(&spec, &opts);
        match &out {
            MutantOutcome::Disagreement {
                checked_vns,
                assigned_vns,
                ..
            } => {
                assert_eq!(*assigned_vns, 2);
                assert_eq!(*checked_vns, 1);
            }
            other => panic!("expected Disagreement under skew, got {other:?}"),
        }
    }

    #[test]
    fn oracle_outcome_is_deterministic() {
        let spec = protocols::mesi_blocking_cache();
        let a = run_oracle(&spec, &small_opts());
        let b = run_oracle(&spec, &small_opts());
        assert_eq!(a, b);
    }
}
