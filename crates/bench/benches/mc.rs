//! Model-checker throughput: states explored per unit time on small
//! closed configurations, and the directed Figure-3 deadlock search.

use std::hint::black_box;
use vnet_bench::timing::{bench, group};
use vnet_mc::{explore, InjectionBudget, McConfig, VnMap};
use vnet_protocol::protocols;

fn main() {
    group("mc");

    let spec = protocols::msi_blocking_cache();
    let mut cfg = McConfig::general(&spec);
    cfg.n_caches = 2;
    cfg.n_addrs = 1;
    cfg.n_dirs = 1;
    cfg.budget = InjectionBudget::PerCache(1);
    bench("msi_2c_1a_complete", || black_box(explore(&spec, &cfg)));

    let cfg3 = McConfig::figure3(&spec);
    bench("figure3_deadlock_search", || {
        black_box(explore(&spec, &cfg3))
    });

    let clean = protocols::msi_nonblocking_cache();
    let outcome = vnet_core::minimize_vns(&clean);
    let vns = VnMap::from_assignment(
        outcome.assignment().expect("nonblocking MSI is Class 3"),
        clean.messages().len(),
    );
    let cfg_clean = McConfig::figure3(&clean).with_vns(vns);
    bench("figure3_clean_complete", || {
        black_box(explore(&clean, &cfg_clean))
    });
}
