//! Process-sharded exploration: the visited set is statically
//! partitioned across N worker *processes* (`fx_hash(key) % N`), each
//! owning one shard of the state space and persisting it as a
//! version-2 checkpoint shard section after every BFS level.
//!
//! ## Why processes
//!
//! The thread-parallel explorer ([`crate::parallel`]) dies as one unit:
//! a SIGKILL — the OOM killer's verdict of choice — discards every
//! shard's progress at once. Here each shard's section file is updated
//! atomically (tmp + rename) once per round, so a killed or panicking
//! worker is simply re-spawned and replays only its own current round;
//! sibling shards keep their work. The supervisor itself is equally
//! disposable: `round.bin` records the last committed round, and
//! re-running the same command resumes from it.
//!
//! ## Round protocol
//!
//! Round `r` claims BFS level `r` and expands it:
//!
//! 1. **Claim.** Worker `s` loads its section (`shard-s.sec`), then the
//!    candidate successors every shard routed to it in round `r-1`
//!    (`out-{r-1}-{from}-{s}.box`). Candidates are sorted by
//!    `(key, parent shard, parent index, label)` and fresh keys are
//!    claimed at level `r` — a total order, so replays after a
//!    mid-round death reproduce the identical claim sequence.
//! 2. **Check.** Every level-`r` claim is decoded and SWMR-checked.
//! 3. **Expand.** Each claim's successors are routed to their owner
//!    shard's outbox for round `r+1`. Deadlocks and model errors are
//!    reported, not acted on — the supervisor resolves the globally
//!    minimal finding so the verdict is independent of N.
//! 4. **Persist.** Section, outboxes, then the result record — in that
//!    order, each atomic. The result record is the round's commit
//!    marker for this shard; anything torn before it is recomputed.
//!
//! A worker that crashed *after* renaming its section re-derives the
//! same claims from the `level == r` suffix already in the section (the
//! sorted order makes the persisted prefix and the recomputed remainder
//! coincide), so recovery is bit-identical to an undisturbed run.
//!
//! Every artifact carries an FNV-1a checksum; a torn or damaged file
//! reads as absent and is regenerated or refused, never trusted.
//!
//! ## Determinism
//!
//! For a fixed shard count the entire directory evolution is a pure
//! function of (spec, config): kill any subset of workers or the
//! supervisor at any point and the finished run's verdict, statistics,
//! and merged checkpoint are byte-identical. Across *different* shard
//! counts the claim levels and per-level claim sets are invariant, so
//! verdict kind, depth, and total state count match too (a serial
//! counterexample run may report fewer states only because it stops
//! mid-level; rounds here commit whole levels).

use crate::checkpoint::{
    self, decode_shard_section, CheckpointError, CheckpointPolicy, ShardEncoder, ShardEntry,
};
use crate::codec::{put_varint, read_varint};
use crate::config::McConfig;
use crate::explore::{CheckpointedRun, ExploreStats, Verdict};
use crate::intern::LabelTable;
use crate::rules::{expand, ExpandOutcome, Scratch};
use crate::spill::{sweep_stale_tmp, SpillArena, SpillConfig};
use crate::state::GlobalState;
use crate::trace::Trace;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Instant;
use vnet_graph::{fx_hash_bytes, Budget, DegradeReason, Provenance};
use vnet_protocol::ProtocolSpec;

/// Supervisor options for [`explore_procshard`].
#[derive(Debug, Clone)]
pub struct ProcOpts {
    /// Number of shard worker processes (the `N` of `hash % N`).
    pub shards: u32,
    /// Working directory holding shard sections, outboxes, and round
    /// state. Re-running with the same directory resumes the run.
    pub dir: PathBuf,
    /// The protocol argument workers re-load (`vnet` built-in name or
    /// `.vnp` path) — it must resolve to the supervisor's `spec`.
    pub spec_arg: String,
    /// The VN-selection flag to forward (`--unique-vns`/`--single-vn`),
    /// so workers derive the supervisor's exact `McConfig`.
    pub vn_flag: Option<String>,
    /// Extra configuration flags to forward verbatim (`--general`,
    /// `--symmetry`), so workers derive the supervisor's exact
    /// `McConfig` and the shard-directory fingerprints match.
    pub cfg_flags: Vec<String>,
    /// Budget enforced at round boundaries (deadline and node limit).
    pub budget: Budget,
    /// Per-shard, per-round respawn budget before the run degrades
    /// with [`DegradeReason::WorkerLoss`].
    pub max_restarts: u32,
    /// Checkpoint policy: where to flush the *merged* v2 checkpoint on
    /// interruption/truncation, and the cooperative stop file.
    pub policy: Option<CheckpointPolicy>,
    /// Total memory budget, split evenly across shards; each worker
    /// spills its cold visited keys once its slice fills.
    pub mem_budget: Option<u64>,
    /// Test hook: `(round, shard)` whose *first* spawn aborts after
    /// renaming its section — a deterministic mid-round SIGKILL.
    pub inject_kill: Option<(u32, u32)>,
}

impl ProcOpts {
    /// Options for `shards` workers coordinating through `dir`,
    /// re-loading the protocol from `spec_arg`.
    pub fn new(shards: u32, dir: impl Into<PathBuf>, spec_arg: impl Into<String>) -> Self {
        ProcOpts {
            shards,
            dir: dir.into(),
            spec_arg: spec_arg.into(),
            vn_flag: None,
            cfg_flags: Vec::new(),
            budget: Budget::unlimited(),
            max_restarts: 2,
            policy: None,
            mem_budget: None,
            inject_kill: None,
        }
    }
}

/// Worker-side options (parsed from the hidden `__shard-worker` CLI).
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// The shared working directory.
    pub dir: PathBuf,
    /// This worker's shard index.
    pub shard: u32,
    /// Total shard count.
    pub of: u32,
    /// The round to execute.
    pub round: u32,
    /// Memory budget for the whole run; this worker takes `1/of`.
    pub mem_budget: Option<u64>,
    /// Abort after the section rename (supervisor crash injection).
    pub crash: bool,
}

/// `fx_hash(key) % n` — the static shard partition. Stable across runs
/// and processes: the hash has no per-process seed.
fn shard_of(key: &[u8], n: u32) -> u32 {
    (fx_hash_bytes(key) % n as u64) as u32
}

// ---------------------------------------------------------------------
// Checksummed atomic file IO.
// ---------------------------------------------------------------------

fn sec_path(dir: &Path, s: u32) -> PathBuf {
    dir.join(format!("shard-{s}.sec"))
}
fn out_path(dir: &Path, round: u32, from: u32, to: u32) -> PathBuf {
    dir.join(format!("out-{round}-{from}-{to}.box"))
}
fn res_path(dir: &Path, round: u32, s: u32) -> PathBuf {
    dir.join(format!("res-{round}-{s}.res"))
}
fn round_path(dir: &Path) -> PathBuf {
    dir.join("round.bin")
}
fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.bin")
}
fn done_path(dir: &Path) -> PathBuf {
    dir.join("done.bin")
}

/// Writes `[fnv1a(payload)][payload]` via tmp + rename: readers see the
/// old file or the new one, never a torn hybrid.
fn write_checked(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend(checkpoint::fnv1a(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

/// Reads a [`write_checked`] file; any defect — missing, short, bad
/// checksum — reads as `None` so callers regenerate or refuse.
fn read_checked(path: &Path) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < 8 {
        return None;
    }
    let stored = u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ]);
    if checkpoint::fnv1a(&bytes[8..]) != stored {
        return None;
    }
    Some(bytes[8..].to_vec())
}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

fn corrupt(detail: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt {
        offset: 0,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Result records (the per-shard round commit marker).
// ---------------------------------------------------------------------

/// Finding kinds, ordered by nothing — resolution is by state key.
const FIND_DEADLOCK: u8 = 1;
const FIND_MODEL_ERROR: u8 = 2;
const FIND_INVARIANT: u8 = 3;

#[derive(Debug, Clone)]
struct Finding {
    kind: u8,
    /// Index of the implicated entry in the reporting shard's section.
    idx: u32,
    detail: String,
    /// The offending rule (model errors only).
    rule: String,
}

#[derive(Debug, Clone)]
struct ResRecord {
    /// States claimed in this round (recovered + fresh).
    claimed: u64,
    /// Total entries in the shard section after the round.
    total: u64,
    /// Worker's accounted heap high-water mark.
    peak: u64,
    /// Cumulative bytes the worker spilled to disk.
    spilled: u64,
    finding: Option<Finding>,
}

fn encode_res(r: &ResRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_varint(&mut out, r.claimed);
    put_varint(&mut out, r.total);
    put_varint(&mut out, r.peak);
    put_varint(&mut out, r.spilled);
    match &r.finding {
        None => out.push(0),
        Some(f) => {
            out.push(f.kind);
            put_varint(&mut out, f.idx as u64);
            put_varint(&mut out, f.detail.len() as u64);
            out.extend_from_slice(f.detail.as_bytes());
            put_varint(&mut out, f.rule.len() as u64);
            out.extend_from_slice(f.rule.as_bytes());
        }
    }
    out
}

fn take_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let s = std::str::from_utf8(&buf[*pos..end]).ok()?.to_string();
    *pos = end;
    Some(s)
}

fn decode_res(buf: &[u8]) -> Option<ResRecord> {
    let mut pos = 0usize;
    let claimed = read_varint(buf, &mut pos)?;
    let total = read_varint(buf, &mut pos)?;
    let peak = read_varint(buf, &mut pos)?;
    let spilled = read_varint(buf, &mut pos)?;
    let tag = *buf.get(pos)?;
    pos += 1;
    let finding = match tag {
        0 => None,
        FIND_DEADLOCK | FIND_MODEL_ERROR | FIND_INVARIANT => {
            let idx = read_varint(buf, &mut pos)?;
            if idx > u32::MAX as u64 {
                return None;
            }
            let detail = take_str(buf, &mut pos)?;
            let rule = take_str(buf, &mut pos)?;
            Some(Finding {
                kind: tag,
                idx: idx as u32,
                detail,
                rule,
            })
        }
        _ => return None,
    };
    if pos != buf.len() {
        return None;
    }
    Some(ResRecord {
        claimed,
        total,
        peak,
        spilled,
        finding,
    })
}

// ---------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------

/// One candidate successor routed to this shard.
struct Cand {
    key: Vec<u8>,
    pshard: u32,
    pidx: u32,
    label: String,
}

fn parse_outbox(buf: &[u8], from: u32, out: &mut Vec<Cand>) -> Result<(), String> {
    let mut pos = 0usize;
    let count = read_varint(buf, &mut pos).ok_or("outbox: bad count")?;
    if count > buf.len() as u64 {
        return Err("outbox: impossible count".into());
    }
    for _ in 0..count {
        let klen = read_varint(buf, &mut pos).ok_or("outbox: bad key length")? as usize;
        let kend = pos.checked_add(klen).filter(|&e| e <= buf.len());
        let Some(kend) = kend else {
            return Err("outbox: key overruns".into());
        };
        let key = buf[pos..kend].to_vec();
        pos = kend;
        let pidx = read_varint(buf, &mut pos).ok_or("outbox: bad parent index")?;
        if pidx > u32::MAX as u64 {
            return Err("outbox: parent index out of range".into());
        }
        let label = take_str(buf, &mut pos).ok_or("outbox: bad label")?;
        out.push(Cand {
            key,
            pshard: from,
            pidx: pidx as u32,
            label,
        });
    }
    if pos != buf.len() {
        return Err("outbox: trailing bytes".into());
    }
    Ok(())
}

/// Accounted worker footprint: the key arena plus the flat per-entry
/// metadata (parent ref 8B, label id 4B, level 4B).
fn worker_footprint(keys: &SpillArena, entries: usize) -> u64 {
    keys.heap_bytes() + (entries as u64).saturating_mul(16)
}

/// Executes one shard round. Invoked by the hidden `__shard-worker` CLI
/// command; errors go to stderr and a nonzero exit, which the
/// supervisor treats like any other worker death.
pub fn run_worker(spec: &ProtocolSpec, cfg: &McConfig, w: &WorkerOpts) -> Result<(), String> {
    let n = w.of;
    if n == 0 || w.shard >= n {
        return Err(format!("shard {} out of range (of {n})", w.shard));
    }
    cfg.validate_for_run()?;

    // Visited keys: a spillable arena so the shard honors its slice of
    // the run's memory budget the same way the serial explorer does.
    let spill = w.mem_budget.map(|b| {
        let slice = (b / n as u64).max(64 << 10);
        SpillConfig::new(
            w.dir.join(format!("spill-{}", w.shard)),
            slice.saturating_mul(4) / 5,
        )
    });
    let mut keys = SpillArena::new(spill);
    let mut labels = LabelTable::new();
    let _ = labels.intern("");
    let mut parents: Vec<(u32, u32)> = Vec::new();
    let mut label_ids: Vec<u32> = Vec::new();
    let mut levels: Vec<u32> = Vec::new();
    let mut peak = 0u64;

    if let Some(bytes) = read_checked(&sec_path(&w.dir, w.shard)) {
        let (sec_labels, entries) =
            decode_shard_section(&bytes, 0).map_err(|e| format!("shard section: {e}"))?;
        let lids: Vec<u32> = sec_labels.iter().map(|l| labels.intern(l)).collect();
        for (i, e) in entries.iter().enumerate() {
            match keys.intern(&e.key) {
                Ok((_, true)) => {}
                Ok((_, false)) => return Err(format!("duplicate key at section entry {i}")),
                Err(why) => return Err(format!("intern arena: {why}")),
            }
            parents.push((e.parent_shard, e.parent_idx));
            label_ids.push(lids.get(e.label as usize).copied().unwrap_or(0));
            levels.push(e.level);
            if i % 1024 == 1023 {
                let now = worker_footprint(&keys, parents.len());
                peak = peak.max(now);
                let _ = keys.maybe_spill(now);
            }
        }
    }

    // Candidates: round 0 is the initial state (owned by exactly one
    // shard); later rounds read every producer's outbox for this shard.
    let mut cands: Vec<Cand> = Vec::new();
    if w.round == 0 {
        let initial = GlobalState::initial(spec, cfg);
        let key = if cfg.symmetry {
            crate::symmetry::canonicalize(cfg, &initial).1
        } else {
            initial.encode()
        };
        if shard_of(&key, n) == w.shard {
            cands.push(Cand {
                key,
                pshard: w.shard,
                pidx: 0,
                label: String::new(),
            });
        }
    } else {
        for from in 0..n {
            let path = out_path(&w.dir, w.round - 1, from, w.shard);
            let bytes = read_checked(&path)
                .ok_or_else(|| format!("missing or corrupt outbox {}", path.display()))?;
            parse_outbox(&bytes, from, &mut cands)?;
        }
    }
    // The total order that makes replay deterministic: a worker killed
    // mid-claim left a *prefix* of this sequence in its section.
    cands.sort_by(|a, b| {
        (&a.key, a.pshard, a.pidx, &a.label).cmp(&(&b.key, b.pshard, b.pidx, &b.label))
    });

    // Recover claims this round already made before a crash (the
    // `level == round` suffix of the section), then claim the rest.
    let mut new_frontier: Vec<u32> = (0..levels.len() as u32)
        .filter(|&i| levels[i as usize] == w.round)
        .collect();
    let mut claimed = new_frontier.len() as u64;
    for c in &cands {
        match keys.intern(&c.key) {
            Ok((id, true)) => {
                parents.push((c.pshard, c.pidx));
                label_ids.push(labels.intern(&c.label));
                levels.push(w.round);
                new_frontier.push(id);
                claimed += 1;
                if claimed.is_multiple_of(512) {
                    let now = worker_footprint(&keys, parents.len());
                    peak = peak.max(now);
                    let _ = keys.maybe_spill(now);
                }
            }
            Ok((_, false)) => {}
            Err(why) => return Err(format!("intern arena: {why}")),
        }
    }
    peak = peak.max(worker_footprint(&keys, parents.len()));

    // Check, then expand. The frontier is iterated in id order — which
    // is sorted-key order — so the first finding in a shard is the
    // minimal-key finding, and the supervisor's cross-shard minimum is
    // independent of both the shard count and replay history.
    let mut finding: Option<Finding> = None;
    let mut scratch_key: Vec<u8> = Vec::with_capacity(128);
    if let Some(swmr) = &cfg.swmr {
        for &idx in &new_frontier {
            if !keys.get_into(idx, &mut scratch_key) {
                return Err(format!("claimed state {idx} unreadable"));
            }
            let Some(gs) = GlobalState::decode(&scratch_key, cfg) else {
                return Err(format!("claimed state {idx} failed to decode"));
            };
            if let Some(detail) = swmr.check(&gs, spec) {
                finding = Some(Finding {
                    kind: FIND_INVARIANT,
                    idx,
                    detail,
                    rule: String::new(),
                });
                break;
            }
        }
    }

    let mut outboxes: Vec<Vec<u8>> = (0..n).map(|_| Vec::new()).collect();
    let mut out_counts = vec![0u64; n as usize];
    if finding.is_none() {
        let mut expand_scratch = Scratch::new(spec, cfg);
        let mut key_buf: Vec<u8> = Vec::with_capacity(128);
        let mut label_buf = String::new();
        let mut canon = cfg
            .symmetry
            .then(|| crate::symmetry::Canonicalizer::new(cfg));
        'frontier: for &idx in &new_frontier {
            if !keys.get_into(idx, &mut scratch_key) {
                return Err(format!("frontier state {idx} unreadable"));
            }
            let Some(gs) = GlobalState::decode(&scratch_key, cfg) else {
                return Err(format!("frontier state {idx} failed to decode"));
            };
            let outcome = expand(spec, cfg, &gs, &mut expand_scratch, |sstate, label| {
                // Key-only canonicalization: no permuted state is ever
                // materialized on the expansion path.
                match canon.as_mut() {
                    Some(c) => c.canonical_key_into(sstate, &mut key_buf),
                    None => sstate.encode_into(&mut key_buf),
                }
                let to = shard_of(&key_buf, n) as usize;
                label.render_into(spec, &mut label_buf);
                put_varint(&mut outboxes[to], key_buf.len() as u64);
                outboxes[to].extend_from_slice(&key_buf);
                put_varint(&mut outboxes[to], idx as u64);
                put_varint(&mut outboxes[to], label_buf.len() as u64);
                outboxes[to].extend_from_slice(label_buf.as_bytes());
                out_counts[to] += 1;
                true
            });
            match outcome {
                ExpandOutcome::Bug { rule, detail } => {
                    finding = Some(Finding {
                        kind: FIND_MODEL_ERROR,
                        idx,
                        detail,
                        rule,
                    });
                    break 'frontier;
                }
                ExpandOutcome::Done(0) => {
                    if !gs.is_quiescent(spec) {
                        finding = Some(Finding {
                            kind: FIND_DEADLOCK,
                            idx,
                            detail: String::new(),
                            rule: String::new(),
                        });
                        break 'frontier;
                    }
                }
                // The callback never requests a stop; treat one as a
                // no-successor state that did expand (fail soft).
                ExpandOutcome::Done(_) | ExpandOutcome::Stopped => {}
            }
        }
    }

    // Persist: section → (outboxes) → result record. The record is the
    // commit marker; everything before it is safely recomputable.
    let mut enc = ShardEncoder::new();
    for i in 0..parents.len() {
        if !keys.get_into(i as u32, &mut scratch_key) {
            return Err(format!("visited state {i} unreadable at write-back"));
        }
        enc.push(
            &scratch_key,
            parents[i].0,
            parents[i].1,
            labels.get(label_ids[i]),
            levels[i],
        );
    }
    let sec = sec_path(&w.dir, w.shard);
    write_checked(&sec, &enc.finish()).map_err(|e| format!("{}: {e}", sec.display()))?;

    if w.crash {
        // Crash injection: die exactly where a SIGKILL between renames
        // would — section updated, outboxes and result record absent.
        std::process::abort();
    }

    if finding.is_none() {
        for (to, body) in outboxes.iter().enumerate() {
            let mut full = Vec::with_capacity(10 + body.len());
            put_varint(&mut full, out_counts[to]);
            full.extend_from_slice(body);
            let path = out_path(&w.dir, w.round, w.shard, to as u32);
            write_checked(&path, &full).map_err(|e| format!("{}: {e}", path.display()))?;
        }
    }

    let rec = ResRecord {
        claimed,
        total: parents.len() as u64,
        peak,
        spilled: keys.spill_stats().spilled_bytes,
        finding,
    };
    let path = res_path(&w.dir, w.round, w.shard);
    write_checked(&path, &encode_res(&rec)).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Supervisor.
// ---------------------------------------------------------------------

/// Explores `spec` under `cfg` with `opts.shards` worker processes.
///
/// The working directory is the run's durable state: re-invoking with
/// the same directory resumes after any crash — of a worker *or* of
/// this supervisor. A finished run leaves a `done` marker; a later
/// invocation with the same directory resets it and starts fresh.
pub fn explore_procshard(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    opts: &ProcOpts,
) -> Result<CheckpointedRun, CheckpointError> {
    let n = opts.shards;
    if n == 0 || n > 1 << 12 {
        return Err(corrupt(format!("shard count {n} out of range (1..=4096)")));
    }
    if let Err(detail) = cfg.validate_for_run() {
        return Err(CheckpointError::Config { detail });
    }
    std::fs::create_dir_all(&opts.dir).map_err(|e| io_err(&opts.dir, e))?;
    sweep_stale_tmp(&opts.dir);
    // Fail closed on a non-empty directory that carries no meta
    // marker: it is not a shard directory this run may claim, and
    // initializing into it would clobber whatever lives there.
    if !meta_path(&opts.dir).exists() {
        let occupied = std::fs::read_dir(&opts.dir)
            .map_err(|e| io_err(&opts.dir, e))?
            .next()
            .is_some();
        if occupied {
            return Err(corrupt(format!(
                "{} is non-empty but has no shard meta marker; refusing to initialize into it",
                opts.dir.display()
            )));
        }
    }
    if done_path(&opts.dir).exists() {
        reset_dir(&opts.dir, n);
    }

    let fp = checkpoint::fingerprint(spec, cfg);
    match read_checked(&meta_path(&opts.dir)) {
        Some(bytes) if bytes.len() == 12 => {
            let stored_fp = u64::from_le_bytes([
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
            ]);
            let stored_n = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
            if stored_fp != fp {
                return Err(CheckpointError::SpecMismatch {
                    expected: fp,
                    found: stored_fp,
                });
            }
            if stored_n != n {
                return Err(corrupt(format!(
                    "shard directory was built for {stored_n} shard(s), not {n}"
                )));
            }
        }
        Some(_) => return Err(corrupt("shard directory meta record malformed")),
        // `read_checked` returns `None` for a missing file and for a
        // checksum-failing one alike; only the former may initialize.
        None if meta_path(&opts.dir).exists() => {
            return Err(corrupt("shard directory meta record unreadable"));
        }
        None => {
            let mut meta = Vec::with_capacity(12);
            meta.extend(fp.to_le_bytes());
            meta.extend(n.to_le_bytes());
            let path = meta_path(&opts.dir);
            write_checked(&path, &meta).map_err(|e| io_err(&path, e))?;
        }
    }

    let (mut round, mut claims) = match read_checked(&round_path(&opts.dir)) {
        Some(bytes) => {
            let mut pos = 0usize;
            let r = read_varint(&bytes, &mut pos).ok_or_else(|| corrupt("round record"))?;
            let c = read_varint(&bytes, &mut pos).ok_or_else(|| corrupt("round record"))?;
            if r > u32::MAX as u64 || pos != bytes.len() {
                return Err(corrupt("round record out of range"));
            }
            (r as u32, c)
        }
        None => (0u32, 0u64),
    };

    let started = Instant::now();
    let metrics = vnet_obs::metrics_enabled();
    let mut restarts_total: u32 = 0;
    let mut peak = 0u64;
    let mut spilled = 0u64;

    loop {
        if let Some(pol) = &opts.policy {
            if pol.stop_file.as_ref().is_some_and(|p| p.exists()) {
                if round > 0 {
                    merge_checkpoint(&opts.dir, n, fp, round - 1, claims, &pol.path)?;
                }
                return Ok(CheckpointedRun::Interrupted {
                    checkpoint: pol.path.clone(),
                    states: claims as usize,
                    level: round.saturating_sub(1) as usize,
                });
            }
        }

        // Bound/budget checks sit at round boundaries: the overrun is
        // at most one BFS level, exactly like the checkpointing serial
        // explorer, and the directory stays consistent for resume.
        let mut degrade: Option<DegradeReason> = None;
        if let Some(max) = cfg.max_depth {
            if round as usize >= max {
                degrade = Some(DegradeReason::Bound {
                    what: format!("depth limit of {max} reached"),
                });
            }
        }
        if degrade.is_none() && claims as usize >= cfg.max_states {
            degrade = Some(DegradeReason::Bound {
                what: format!("state limit of {} reached", cfg.max_states),
            });
        }
        if degrade.is_none() {
            if let Some(limit) = opts.budget.node_limit {
                if claims >= limit {
                    degrade = Some(DegradeReason::NodeLimit { limit });
                }
            }
        }
        if degrade.is_none() {
            if let Some(deadline) = opts.budget.deadline {
                if started.elapsed() >= deadline {
                    degrade = Some(DegradeReason::DeadlineExpired { deadline });
                }
            }
        }
        if let Some(reason) = degrade {
            if let Some(pol) = &opts.policy {
                if round > 0 {
                    merge_checkpoint(&opts.dir, n, fp, round - 1, claims, &pol.path)?;
                }
            }
            return Ok(finished(Verdict::NoDeadlock(stats_of(
                claims,
                round,
                false,
                Provenance::Degraded { reason },
                peak,
                spilled,
            ))));
        }

        let results = match run_round(opts, round, &mut restarts_total) {
            Ok(r) => r,
            Err(RoundFailure::WorkerLost { restarts }) => {
                return Ok(finished(Verdict::NoDeadlock(stats_of(
                    claims,
                    round,
                    false,
                    Provenance::Degraded {
                        reason: DegradeReason::WorkerLoss {
                            lost_states: 0,
                            restarts,
                        },
                    },
                    peak,
                    spilled,
                ))))
            }
            Err(RoundFailure::Infra(e)) => return Err(e),
        };

        let claimed_round: u64 = results.iter().map(|r| r.claimed).sum();
        claims += claimed_round;
        peak = peak.max(results.iter().map(|r| r.peak).sum());
        spilled = results.iter().map(|r| r.spilled).sum();
        if metrics {
            vnet_obs::counter("explore.procshard.rounds_total").inc();
        }

        // Cross-shard finding resolution: the minimal state key wins.
        // Keys partition cleanly across shards, so the minimum is
        // unique and independent of the shard count.
        let mut chosen: Option<(u32, Finding, Vec<u8>)> = None;
        for (s, rec) in results.iter().enumerate() {
            let Some(f) = &rec.finding else { continue };
            let bytes = read_checked(&sec_path(&opts.dir, s as u32))
                .ok_or_else(|| corrupt(format!("shard {s} section vanished")))?;
            let (_, entries) = decode_shard_section(&bytes, 0)?;
            let key = entries
                .get(f.idx as usize)
                .map(|e| e.key.clone())
                .ok_or_else(|| corrupt(format!("shard {s} finding index out of range")))?;
            if chosen.as_ref().is_none_or(|(_, _, k)| key < *k) {
                chosen = Some((s as u32, f.clone(), key));
            }
        }
        if let Some((s, f, _)) = chosen {
            let verdict = build_finding_verdict(
                &opts.dir,
                n,
                spec,
                cfg,
                s,
                &f,
                stats_of(claims, round, false, Provenance::Exact, peak, spilled),
            )?;
            let path = done_path(&opts.dir);
            write_checked(&path, &[f.kind]).map_err(|e| io_err(&path, e))?;
            if metrics {
                vnet_obs::counter("explore.spill_bytes").add(spilled);
            }
            return Ok(finished(verdict));
        }

        // Commit the round, then retire the outboxes it consumed and
        // its result records — neither is read again.
        let mut rec = Vec::with_capacity(12);
        put_varint(&mut rec, (round + 1) as u64);
        put_varint(&mut rec, claims);
        let path = round_path(&opts.dir);
        write_checked(&path, &rec).map_err(|e| io_err(&path, e))?;
        if round > 0 {
            for from in 0..n {
                for to in 0..n {
                    let _ = std::fs::remove_file(out_path(&opts.dir, round - 1, from, to));
                }
            }
        }
        for s in 0..n {
            let _ = std::fs::remove_file(res_path(&opts.dir, round, s));
        }

        if claimed_round == 0 {
            let path = done_path(&opts.dir);
            write_checked(&path, &[0]).map_err(|e| io_err(&path, e))?;
            if metrics {
                vnet_obs::counter("explore.spill_bytes").add(spilled);
            }
            return Ok(finished(Verdict::NoDeadlock(stats_of(
                claims,
                round,
                true,
                Provenance::Exact,
                peak,
                spilled,
            ))));
        }
        round += 1;
    }
}

fn finished(v: Verdict) -> CheckpointedRun {
    CheckpointedRun::Finished(v)
}

fn stats_of(
    claims: u64,
    round: u32,
    complete: bool,
    provenance: Provenance,
    peak: u64,
    spilled: u64,
) -> ExploreStats {
    ExploreStats {
        states: claims as usize,
        levels: round as usize,
        complete,
        provenance,
        peak_bytes: peak,
        spill_bytes: spilled,
    }
}

enum RoundFailure {
    WorkerLost { restarts: u32 },
    Infra(CheckpointError),
}

/// Runs every shard worker for `round`, re-spawning casualties, and
/// returns the per-shard result records in shard order.
fn run_round(
    opts: &ProcOpts,
    round: u32,
    restarts_total: &mut u32,
) -> Result<Vec<ResRecord>, RoundFailure> {
    let n = opts.shards;
    let mut records: Vec<Option<ResRecord>> = vec![None; n as usize];
    let mut attempts = vec![0u32; n as usize];

    // A supervisor resume may find some shards' records already on
    // disk: those rounds are committed per-shard and are not re-run.
    for s in 0..n {
        if let Some(rec) = read_checked(&res_path(&opts.dir, round, s)).and_then(|b| decode_res(&b))
        {
            records[s as usize] = Some(rec);
        }
    }

    loop {
        let pending: Vec<u32> = (0..n).filter(|&s| records[s as usize].is_none()).collect();
        if pending.is_empty() {
            // All records present; unwrap the options in shard order.
            let mut out = Vec::with_capacity(n as usize);
            for r in records {
                match r {
                    Some(rec) => out.push(rec),
                    None => return Err(RoundFailure::Infra(corrupt("round record lost"))),
                }
            }
            return Ok(out);
        }
        for &s in &pending {
            if attempts[s as usize] > opts.max_restarts {
                return Err(RoundFailure::WorkerLost {
                    restarts: *restarts_total,
                });
            }
        }

        let mut children: Vec<(u32, Child)> = Vec::with_capacity(pending.len());
        for &s in &pending {
            // The injected crash fires on the first spawn only; the
            // respawn is the recovery being tested.
            let crash = attempts[s as usize] == 0 && opts.inject_kill == Some((round, s));
            attempts[s as usize] += 1;
            if attempts[s as usize] > 1 {
                *restarts_total += 1;
                if vnet_obs::metrics_enabled() {
                    vnet_obs::counter("explore.procshard.restarts_total").inc();
                }
            }
            match spawn_worker(opts, s, round, crash) {
                Ok(child) => children.push((s, child)),
                Err(e) => {
                    return Err(RoundFailure::Infra(io_err(&opts.dir, e)));
                }
            }
        }
        for (s, mut child) in children {
            let ok = match child.wait() {
                Ok(status) => status.success(),
                Err(_) => false,
            };
            if ok {
                records[s as usize] =
                    read_checked(&res_path(&opts.dir, round, s)).and_then(|b| decode_res(&b));
            }
            // A failed or record-less worker stays pending and is
            // re-spawned on the next sweep (up to max_restarts).
        }
    }
}

fn spawn_worker(opts: &ProcOpts, shard: u32, round: u32, crash: bool) -> std::io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.arg("__shard-worker")
        .arg("--dir")
        .arg(&opts.dir)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--of")
        .arg(opts.shards.to_string())
        .arg("--round")
        .arg(round.to_string())
        .arg("--spec")
        .arg(&opts.spec_arg);
    if let Some(f) = &opts.vn_flag {
        cmd.arg(f);
    }
    for f in &opts.cfg_flags {
        cmd.arg(f);
    }
    if let Some(b) = opts.mem_budget {
        cmd.arg("--mem-budget").arg(b.to_string());
    }
    if crash {
        cmd.arg("--crash");
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn()
}

/// Removes every artifact a previous *finished* run left behind so the
/// directory can host a fresh run. Only files this module writes are
/// touched.
fn reset_dir(dir: &Path, n: u32) {
    let _ = std::fs::remove_file(done_path(dir));
    let _ = std::fs::remove_file(round_path(dir));
    let _ = std::fs::remove_file(meta_path(dir));
    for s in 0..n {
        let _ = std::fs::remove_file(sec_path(dir, s));
        let _ = std::fs::remove_dir_all(dir.join(format!("spill-{s}")));
    }
    if let Ok(rd) = std::fs::read_dir(dir) {
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if (name.starts_with("out-") && name.ends_with(".box"))
                || (name.starts_with("res-") && name.ends_with(".res"))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// One decoded shard section: its label strings and entries.
type Section = (Vec<String>, Vec<ShardEntry>);

/// Loads and decodes every shard section.
fn load_sections(dir: &Path, n: u32) -> Result<Vec<Section>, CheckpointError> {
    let mut out = Vec::with_capacity(n as usize);
    for s in 0..n {
        let path = sec_path(dir, s);
        match read_checked(&path) {
            Some(bytes) => out.push(decode_shard_section(&bytes, 0)?),
            // A shard that never claimed anything may not have written
            // a section yet (pre-round-0 interruption): empty is fine.
            None => out.push((Vec::new(), Vec::new())),
        }
    }
    Ok(out)
}

/// Walks parent references across shards from `start`, collecting rule
/// labels root-ward. Bounded by a visited set: a damaged section must
/// terminate the walk, not spin it.
fn walk_trace(
    sections: &[Section],
    start: (u32, u32),
) -> Result<Vec<String>, CheckpointError> {
    let mut steps = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let (mut s, mut i) = start;
    loop {
        if !seen.insert((s, i)) {
            break;
        }
        let (labels, entries) = sections
            .get(s as usize)
            .ok_or_else(|| corrupt(format!("trace walk reached missing shard {s}")))?;
        let e = entries
            .get(i as usize)
            .ok_or_else(|| corrupt(format!("trace walk reached missing entry {s}/{i}")))?;
        let label = labels
            .get(e.label as usize)
            .ok_or_else(|| corrupt(format!("trace walk hit missing label in shard {s}")))?;
        if label.is_empty() {
            break;
        }
        steps.push(label.clone());
        (s, i) = (e.parent_shard, e.parent_idx);
    }
    steps.reverse();
    Ok(steps)
}

/// Walks parent references across shards from `start`, collecting the
/// *state keys* root-ward (root inclusive). Under symmetry these are
/// canonical-representative keys and feed the de-canonicalizer.
fn walk_chain(
    sections: &[Section],
    start: (u32, u32),
) -> Result<Vec<Vec<u8>>, CheckpointError> {
    let mut chain = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let (mut s, mut i) = start;
    loop {
        if !seen.insert((s, i)) {
            break;
        }
        let (labels, entries) = sections
            .get(s as usize)
            .ok_or_else(|| corrupt(format!("trace walk reached missing shard {s}")))?;
        let e = entries
            .get(i as usize)
            .ok_or_else(|| corrupt(format!("trace walk reached missing entry {s}/{i}")))?;
        chain.push(e.key.clone());
        let label = labels
            .get(e.label as usize)
            .ok_or_else(|| corrupt(format!("trace walk hit missing label in shard {s}")))?;
        if label.is_empty() {
            break;
        }
        (s, i) = (e.parent_shard, e.parent_idx);
    }
    chain.reverse();
    Ok(chain)
}

/// Builds the terminal verdict for the round's minimal finding.
fn build_finding_verdict(
    dir: &Path,
    n: u32,
    spec: &ProtocolSpec,
    cfg: &McConfig,
    shard: u32,
    f: &Finding,
    stats: ExploreStats,
) -> Result<Verdict, CheckpointError> {
    let sections = load_sections(dir, n)?;
    let entry = sections
        .get(shard as usize)
        .and_then(|(_, es)| es.get(f.idx as usize))
        .ok_or_else(|| corrupt("finding entry out of range"))?;
    let last = GlobalState::decode(&entry.key, cfg)
        .ok_or_else(|| corrupt("finding state failed to decode"))?;
    let depth = entry.level as usize;
    // Under symmetry the stored parent chain links canonical
    // representatives; replay it into a concrete execution so the
    // trace's labels are enabled step by step from the real initial
    // state.
    let (mut steps, last) = if cfg.symmetry {
        let chain = walk_chain(&sections, (shard, f.idx))?;
        match crate::trace::decanonicalize_chain(spec, cfg, &chain) {
            Ok(t) => (t.steps, t.last),
            Err(why) => {
                let t = crate::trace::decanonicalize_failed(&why, last);
                (t.steps, t.last)
            }
        }
    } else {
        (walk_trace(&sections, (shard, f.idx))?, last)
    };
    Ok(match f.kind {
        FIND_DEADLOCK => Verdict::Deadlock {
            trace: Trace { steps, last },
            depth,
            stats,
        },
        FIND_MODEL_ERROR => {
            let (rule, detail) = if cfg.symmetry {
                crate::trace::concrete_bug(spec, cfg, &last)
                    .unwrap_or_else(|| (f.rule.clone(), f.detail.clone()))
            } else {
                (f.rule.clone(), f.detail.clone())
            };
            steps.push(rule);
            Verdict::ModelError {
                trace: Trace { steps, last },
                detail,
                stats,
            }
        }
        _ => {
            let detail = if cfg.symmetry {
                cfg.swmr
                    .as_ref()
                    .and_then(|sw| sw.check(&last, spec))
                    .unwrap_or_else(|| f.detail.clone())
            } else {
                f.detail.clone()
            };
            Verdict::InvariantViolation {
                trace: Trace { steps, last },
                detail,
                stats,
            }
        }
    })
}

/// Merges the shard sections into one standard version-2 checkpoint at
/// the last *committed* level: entries above it (a crashed worker's
/// uncommitted claims) are dropped — they are a suffix of each section
/// — and the frontier is every entry at the committed level, so a plain
/// serial `--resume` re-expands that level and continues the search.
fn merge_checkpoint(
    dir: &Path,
    n: u32,
    fp: u64,
    level: u32,
    claims: u64,
    path: &Path,
) -> Result<(), CheckpointError> {
    let sections = load_sections(dir, n)?;
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(n as usize);
    let mut frontier: Vec<(u32, u32)> = Vec::new();
    for (s, (labels, entries)) in sections.iter().enumerate() {
        let mut enc = ShardEncoder::new();
        for (i, e) in entries.iter().enumerate() {
            if e.level > level {
                break;
            }
            let label = labels
                .get(e.label as usize)
                .ok_or_else(|| corrupt(format!("shard {s} entry {i} label missing")))?;
            enc.push(&e.key, e.parent_shard, e.parent_idx, label, e.level);
            if e.level == level {
                frontier.push((s as u32, i as u32));
            }
        }
        encoded.push(enc.finish());
    }

    let total: usize = encoded.iter().map(Vec::len).sum();
    let mut payload = Vec::with_capacity(44 + total + frontier.len() * 8);
    checkpoint::put_u64(&mut payload, level as u64);
    checkpoint::put_u64(&mut payload, claims);
    checkpoint::put_u32(&mut payload, n);
    for sec in &encoded {
        checkpoint::put_u64(&mut payload, sec.len() as u64);
        checkpoint::put_u64(&mut payload, checkpoint::fnv1a(sec));
    }
    for sec in &encoded {
        payload.extend_from_slice(sec);
    }
    checkpoint::put_u64(&mut payload, frontier.len() as u64);
    for (s, i) in &frontier {
        checkpoint::put_u32(&mut payload, *s);
        checkpoint::put_u32(&mut payload, *i);
    }
    let bytes = checkpoint::seal(fp, checkpoint::V2, payload);

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}
