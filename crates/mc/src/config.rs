//! Model-checking configuration.

use vnet_core::VnAssignment;
use vnet_protocol::{CoreOp, MsgId, ProtocolSpec};

/// Message-name → VN mapping used by the checker.
///
/// A thin, index-based wrapper so configs are self-contained; build one
/// from an analysis result with [`VnMap::from_assignment`] or by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VnMap {
    vn_of: Vec<usize>,
    n_vns: usize,
}

impl VnMap {
    /// A single shared VN for `n_messages` messages.
    pub fn single(n_messages: usize) -> Self {
        VnMap {
            vn_of: vec![0; n_messages],
            n_vns: 1,
        }
    }

    /// One VN per message name (the Class-2 experiment: even this must
    /// deadlock for Class-2 protocols).
    pub fn one_per_message(n_messages: usize) -> Self {
        VnMap {
            vn_of: (0..n_messages).collect(),
            n_vns: n_messages.max(1),
        }
    }

    /// From an explicit per-message vector.
    pub fn from_vns(vn_of: Vec<usize>) -> Self {
        let n_vns = vn_of.iter().max().map_or(1, |&m| m + 1);
        VnMap { vn_of, n_vns }
    }

    /// From a `vnet-core` assignment.
    pub fn from_assignment(a: &VnAssignment, n_messages: usize) -> Self {
        VnMap {
            vn_of: (0..n_messages).map(|i| a.vn_of(MsgId(i))).collect(),
            n_vns: a.n_vns(),
        }
    }

    /// The textbook three-VN mapping: requests / forwarded requests /
    /// responses each on their own VN — the conventional wisdom the
    /// paper shows to be neither necessary nor sufficient.
    pub fn textbook(spec: &ProtocolSpec) -> Self {
        use vnet_protocol::MsgType;
        let vn_of = spec
            .messages()
            .iter()
            .map(|m| match m.mtype {
                MsgType::Request => 0,
                MsgType::FwdRequest => 1,
                MsgType::DataResponse | MsgType::CtrlResponse => 2,
            })
            .collect();
        VnMap { vn_of, n_vns: 3 }
    }

    /// The VN of message `m`.
    pub fn vn_of(&self, m: MsgId) -> usize {
        self.vn_of[m.0]
    }

    /// Number of VNs.
    pub fn n_vns(&self) -> usize {
        self.n_vns
    }

    /// The full per-message VN vector (indexed by `MsgId`).
    pub fn vn_vector(&self) -> &[usize] {
        &self.vn_of
    }
}

/// ICN ordering discipline (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcnOrder {
    /// No ordering: every send nondeterministically picks either global
    /// buffer of its VN; the checker explores both.
    Unordered,
    /// Point-to-point ordering: each (source, destination) endpoint pair
    /// is statically pinned to one global buffer. `salt` selects one of
    /// the possible static mappings; checking several salts approximates
    /// the paper's "all possible static mappings" sweep.
    PointToPoint {
        /// Mapping selector (hashed with the endpoint pair).
        salt: u64,
    },
}

/// What the caches are allowed to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectionBudget {
    /// Every cache may perform up to this many core operations in total
    /// (any op, any address).
    PerCache(u8),
    /// An explicit script of `(cache, addr, op)` injections, **issued in
    /// list order** (each becomes available once all earlier ones have
    /// issued). Message deliveries remain fully nondeterministic, so
    /// ordering the injections prunes interleavings without hiding any
    /// queueing behavior — used to drive directed scenarios such as the
    /// paper's Figure 3.
    Explicit(Vec<(usize, usize, CoreOp)>),
}

/// Full checker configuration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of caches (paper: 3 to manifest the Figure-3 deadlock).
    pub n_caches: usize,
    /// Number of addresses (paper: 2).
    pub n_addrs: usize,
    /// Number of directories; address `a` is homed at `a % n_dirs`
    /// (paper: 2).
    pub n_dirs: usize,
    /// Message-name → VN mapping.
    pub vns: VnMap,
    /// Ordering discipline.
    pub order: IcnOrder,
    /// Capacity of each global buffer.
    pub global_capacity: usize,
    /// Capacity of each endpoint input FIFO.
    pub endpoint_capacity: usize,
    /// Injection budget.
    pub budget: InjectionBudget,
    /// Stop after this many explored states (bounded verdict).
    pub max_states: usize,
    /// Stop after this BFS level (bounded verdict), if set.
    pub max_depth: Option<usize>,
    /// Check the SWMR safety invariant on every state, if set.
    pub swmr: Option<crate::invariant::Swmr>,
    /// Collapse cache-symmetric states (scalar-set reduction). Only
    /// legal with a uniform [`InjectionBudget::PerCache`] budget.
    pub symmetry: bool,
    /// Out-of-core spill tier for the serial explorer's visited keys:
    /// when the accounted footprint crosses the threshold, cold state
    /// encodings move to disk segments behind an in-RAM fingerprint
    /// filter instead of the run dying on its memory budget.
    pub spill: Option<crate::spill::SpillConfig>,
}

impl McConfig {
    /// A general-model default for `spec`: 3 caches, 2 addresses, 2
    /// directories, textbook VN mapping, unordered ICN, 2 ops per cache.
    pub fn general(spec: &ProtocolSpec) -> Self {
        McConfig {
            n_caches: 3,
            n_addrs: 2,
            n_dirs: 2,
            vns: VnMap::textbook(spec),
            order: IcnOrder::Unordered,
            global_capacity: 4,
            endpoint_capacity: 4,
            budget: InjectionBudget::PerCache(2),
            max_states: 2_000_000,
            max_depth: None,
            swmr: None,
            symmetry: false,
            spill: None,
        }
    }

    /// The directed Figure-3 scenario over blocks X (addr 0, home dir 0)
    /// and Y (addr 1, home dir 1). The first two stores establish the
    /// figure's initial condition — C1 holds X in M, C2 holds Y in M —
    /// and the remaining four are the figure's time-step writes: C1→Y,
    /// C2→X, and C3 to both.
    pub fn figure3(spec: &ProtocolSpec) -> Self {
        use CoreOp::Store;
        McConfig {
            budget: InjectionBudget::Explicit(vec![
                (0, 0, Store), // setup: C1 owns X
                (1, 1, Store), // setup: C2 owns Y
                (0, 1, Store), // time 1: C1 writes Y
                (1, 0, Store), // time 1: C2 writes X
                (2, 1, Store), // time 2: C3 writes Y
                (2, 0, Store), // time 2: C3 writes X
            ]),
            ..McConfig::general(spec)
        }
    }

    /// Class-1 screening per §V-A: one address, one directory, one VN
    /// per message name.
    pub fn class1_screen(spec: &ProtocolSpec) -> Self {
        McConfig {
            n_caches: 3,
            n_addrs: 1,
            n_dirs: 1,
            vns: VnMap::one_per_message(spec.messages().len()),
            ..McConfig::general(spec)
        }
    }

    /// Overrides the VN mapping.
    pub fn with_vns(mut self, vns: VnMap) -> Self {
        self.vns = vns;
        self
    }

    /// Overrides the ordering discipline.
    pub fn with_order(mut self, order: IcnOrder) -> Self {
        self.order = order;
        self
    }

    /// Overrides the injection budget.
    pub fn with_budget(mut self, budget: InjectionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the exploration bounds.
    pub fn with_limits(mut self, max_states: usize, max_depth: Option<usize>) -> Self {
        self.max_states = max_states;
        self.max_depth = max_depth;
        self
    }

    /// Enables SWMR invariant checking.
    pub fn with_swmr(mut self, swmr: crate::invariant::Swmr) -> Self {
        self.swmr = Some(swmr);
        self
    }

    /// Enables the out-of-core spill tier for the serial explorer.
    pub fn with_spill(mut self, spill: crate::spill::SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Enables symmetry reduction (cache permutations × home-preserving
    /// address permutations).
    ///
    /// Fails closed instead of panicking: an explicit injection script
    /// names specific caches and addresses, and point-to-point ordering
    /// pins buffers by endpoint identity — neither is permutation-
    /// invariant, so both are rejected with a usage error.
    pub fn with_symmetry(mut self) -> Result<Self, String> {
        self.symmetry = true;
        self.validate_for_run()?;
        Ok(self)
    }

    /// Full pre-run validation: the codec limits plus, when symmetry is
    /// on, the compatibility checks (a hand-built config can set the
    /// flag without going through [`McConfig::with_symmetry`]). Every
    /// explorer calls this before touching a state and fails closed on
    /// `Err`.
    pub fn validate_for_run(&self) -> Result<(), String> {
        self.validate()?;
        if self.symmetry {
            if !matches!(self.budget, InjectionBudget::PerCache(_)) {
                return Err(
                    "symmetry reduction requires a uniform per-cache budget; explicit \
                     injection scripts name specific caches and break the symmetry \
                     (use the general scenario, e.g. `vnet mc --general --symmetry`)"
                        .into(),
                );
            }
            if !matches!(self.order, IcnOrder::Unordered) {
                return Err(
                    "symmetry reduction requires unordered ICN buffers; point-to-point \
                     pinning hashes endpoint identities and is not permutation-invariant"
                        .into(),
                );
            }
        }
        Ok(())
    }

    /// Checks the state codec's size limits. The `u8` reader/sharer
    /// masks silently corrupt beyond 8 caches, `Node::Dir` is encoded
    /// as `0x80 | i`, and message addresses are single bytes — so any
    /// config outside these bounds must be rejected before a single
    /// state is encoded, not explored into garbage.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_caches == 0 || self.n_caches > 8 {
            return Err(format!(
                "n_caches = {} out of range (1..=8: reader/sharer bitmasks are u8)",
                self.n_caches
            ));
        }
        if self.n_dirs == 0 || self.n_dirs > 127 {
            return Err(format!(
                "n_dirs = {} out of range (1..=127: directory nodes encode as 0x80|i)",
                self.n_dirs
            ));
        }
        if self.n_addrs == 0 || self.n_addrs > 253 {
            return Err(format!(
                "n_addrs = {} out of range (1..=253: message addresses are u8 and must \
                 stay below the 0xfd/0xfe codec separators)",
                self.n_addrs
            ));
        }
        Ok(())
    }

    /// Total number of endpoints (caches then directories).
    pub fn n_endpoints(&self) -> usize {
        self.n_caches + self.n_dirs
    }

    /// The home directory index of an address.
    pub fn home_of(&self, addr: usize) -> usize {
        addr % self.n_dirs
    }

    /// A canonical byte encoding of every field that shapes the
    /// reachable state space and the verdict, hashed into checkpoint
    /// fingerprints: resuming is only sound when this matches the run
    /// that wrote the checkpoint (see `checkpoint::fingerprint`).
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        fn num(out: &mut Vec<u8>, v: u64) {
            out.extend(v.to_le_bytes());
        }
        let mut out = Vec::with_capacity(96);
        num(&mut out, self.n_caches as u64);
        num(&mut out, self.n_addrs as u64);
        num(&mut out, self.n_dirs as u64);
        num(&mut out, self.vns.n_vns() as u64);
        for &vn in self.vns.vn_vector() {
            num(&mut out, vn as u64);
        }
        match self.order {
            IcnOrder::Unordered => num(&mut out, u64::MAX),
            IcnOrder::PointToPoint { salt } => {
                num(&mut out, 1);
                num(&mut out, salt);
            }
        }
        num(&mut out, self.global_capacity as u64);
        num(&mut out, self.endpoint_capacity as u64);
        match &self.budget {
            InjectionBudget::PerCache(b) => {
                num(&mut out, 0);
                num(&mut out, *b as u64);
            }
            InjectionBudget::Explicit(script) => {
                num(&mut out, 1);
                num(&mut out, script.len() as u64);
                for (cache, addr, op) in script {
                    num(&mut out, *cache as u64);
                    num(&mut out, *addr as u64);
                    num(
                        &mut out,
                        match op {
                            CoreOp::Load => 0,
                            CoreOp::Store => 1,
                            CoreOp::Evict => 2,
                        },
                    );
                }
            }
        }
        // `max_states`/`max_depth` are deliberately excluded: like the
        // wall-clock budget they only truncate the run, so resuming a
        // checkpoint under different bounds is sound (and is exactly how
        // a bounded sweep gets extended). `spill` is excluded for the
        // same reason — it changes where visited bytes live, never which
        // states exist, so checkpoints stay interchangeable between
        // in-RAM and spilled runs.
        match &self.swmr {
            None => num(&mut out, u64::MAX),
            Some(swmr) => {
                num(&mut out, 2);
                out.extend(swmr.fingerprint_bytes());
            }
        }
        out.push(self.symmetry as u8);
        out
    }
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    #[test]
    fn textbook_map_has_three_vns() {
        let spec = protocols::msi_blocking_cache();
        let m = VnMap::textbook(&spec);
        assert_eq!(m.n_vns(), 3);
        let gets = spec.message_by_name("GetS").unwrap();
        let fwd = spec.message_by_name("Fwd-GetM").unwrap();
        let data = spec.message_by_name("Data").unwrap();
        assert_eq!(m.vn_of(gets), 0);
        assert_eq!(m.vn_of(fwd), 1);
        assert_eq!(m.vn_of(data), 2);
    }

    #[test]
    fn one_per_message_is_injective() {
        let m = VnMap::one_per_message(5);
        assert_eq!(m.n_vns(), 5);
        let vns: std::collections::BTreeSet<usize> =
            (0..5).map(|i| m.vn_of(MsgId(i))).collect();
        assert_eq!(vns.len(), 5);
    }

    #[test]
    fn general_config_matches_paper_sizes() {
        let spec = protocols::msi_blocking_cache();
        let c = McConfig::general(&spec);
        assert_eq!((c.n_caches, c.n_addrs, c.n_dirs), (3, 2, 2));
        assert_eq!(c.home_of(0), 0);
        assert_eq!(c.home_of(1), 1);
        assert_eq!(c.n_endpoints(), 5);
    }

    #[test]
    fn with_symmetry_fails_closed_on_incompatible_configs() {
        let spec = protocols::msi_blocking_cache();
        let err = McConfig::figure3(&spec).with_symmetry().unwrap_err();
        assert!(err.contains("per-cache budget"), "{err}");
        let p2p = McConfig::general(&spec).with_order(IcnOrder::PointToPoint { salt: 0 });
        let err = p2p.with_symmetry().unwrap_err();
        assert!(err.contains("unordered"), "{err}");
        assert!(McConfig::general(&spec).with_symmetry().unwrap().symmetry);
    }

    #[test]
    fn validate_enforces_codec_limits() {
        let spec = protocols::msi_blocking_cache();
        assert!(McConfig::general(&spec).validate().is_ok());
        let big = McConfig {
            n_caches: 9,
            ..McConfig::general(&spec)
        };
        assert!(big.validate().unwrap_err().contains("n_caches"));
        let none = McConfig {
            n_caches: 0,
            ..McConfig::general(&spec)
        };
        assert!(none.validate().is_err());
        let dirs = McConfig {
            n_dirs: 128,
            ..McConfig::general(&spec)
        };
        assert!(dirs.validate().unwrap_err().contains("n_dirs"));
        let addrs = McConfig {
            n_addrs: 254,
            ..McConfig::general(&spec)
        };
        assert!(addrs.validate().unwrap_err().contains("n_addrs"));
    }

    #[test]
    fn from_assignment_round_trips() {
        let spec = protocols::chi();
        let outcome = vnet_core::minimize_vns(&spec);
        let a = outcome.assignment().unwrap();
        let m = VnMap::from_assignment(a, spec.messages().len());
        assert_eq!(m.n_vns(), 2);
    }
}
