//! Strongly connected components via Tarjan's algorithm (iterative).

use crate::digraph::{DiGraph, NodeId};

/// The strongly connected components of a directed graph.
///
/// Components are numbered `0..count` in *reverse topological order of the
/// condensation* (Tarjan emits sinks first), and every node belongs to
/// exactly one component.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `component[v]` is the component index of node `v`.
    pub component: Vec<usize>,
    /// The members of each component.
    pub members: Vec<Vec<NodeId>>,
}

impl SccResult {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component index of `node`.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component[node.0]
    }

    /// Returns `true` if `a` and `b` are in the same component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component[a.0] == self.component[b.0]
    }

    /// Components with more than one node, or with a self-loop (callers
    /// that need self-loop detection should check edges separately; this
    /// method returns only the size>1 components).
    pub fn nontrivial(&self) -> impl Iterator<Item = &Vec<NodeId>> {
        self.members.iter().filter(|m| m.len() > 1)
    }
}

/// Computes strongly connected components with an iterative Tarjan.
///
/// # Example
///
/// ```
/// use vnet_graph::{DiGraph, scc::tarjan};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ());
/// g.add_edge(b, c, ());
/// let sccs = tarjan(&g);
/// assert_eq!(sccs.count(), 2);
/// assert!(sccs.same_component(a, b));
/// assert!(!sccs.same_component(a, c));
/// ```
pub fn tarjan<N, E>(graph: &DiGraph<N, E>) -> SccResult {
    let n = graph.node_count();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNSET; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS stack: (node, iterator position over successors).
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let succs: Vec<usize> =
                        graph.successors(NodeId(v)).map(|s| s.0).collect();
                    let mut descended = false;
                    while i < succs.len() {
                        let w = succs[i];
                        i += 1;
                        if index[w] == UNSET {
                            frames.push(Frame::Resume(v, i));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let comp_id = members.len();
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component[w] = comp_id;
                            comp.push(NodeId(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        members.push(comp);
                    }
                    // Propagate lowlink to parent (the frame below us, if it
                    // is a Resume of our DFS parent).
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let p = *parent;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }

    SccResult { component, members }
}

/// Returns `true` if the graph has a cycle — i.e. a nontrivial SCC or a
/// self-loop.
pub fn has_cycle<N, E>(graph: &DiGraph<N, E>) -> bool {
    if graph.edges().any(|(_, s, d)| s == d) {
        return true;
    }
    tarjan(graph).nontrivial().next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph<usize, ()> {
        let mut g = DiGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|i| g.add_node(i)).collect();
        for &(a, b) in edges {
            g.add_edge(ns[a], ns[b], ());
        }
        g
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = tarjan(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.members[0].len(), 3);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let r = tarjan(&g);
        assert_eq!(r.count(), 4);
        assert!(r.nontrivial().next().is_none());
        assert!(!has_cycle(&g));
    }

    #[test]
    fn two_cycles_bridged_counts() {
        let g = graph(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let r = tarjan(&g);
        assert_eq!(r.count(), 3);
        assert!(r.same_component(NodeId(0), NodeId(1)));
        assert!(r.same_component(NodeId(2), NodeId(4)));
        assert!(!r.same_component(NodeId(1), NodeId(2)));
        assert!(has_cycle(&g));
    }

    #[test]
    fn self_loop_detected_as_cycle() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        assert!(has_cycle(&g));
        // but the SCCs themselves are singletons
        assert_eq!(tarjan(&g).count(), 2);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<usize, ()> = DiGraph::new();
        assert_eq!(tarjan(&g).count(), 0);
        assert!(!has_cycle(&g));
    }

    #[test]
    fn reverse_topological_numbering() {
        // 0 -> 1 -> 2 : Tarjan emits sinks first.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let r = tarjan(&g);
        assert!(r.component_of(NodeId(2)) < r.component_of(NodeId(1)));
        assert!(r.component_of(NodeId(1)) < r.component_of(NodeId(0)));
    }

    #[test]
    fn long_path_no_stack_overflow() {
        // An iterative implementation must survive deep graphs.
        let n = 200_000;
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n - 1 {
            g.add_edge(ns[i], ns[i + 1], ());
        }
        let r = tarjan(&g);
        assert_eq!(r.count(), n);
    }

    #[test]
    fn long_cycle_is_single_component() {
        let n = 50_000;
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n {
            g.add_edge(ns[i], ns[(i + 1) % n], ());
        }
        let r = tarjan(&g);
        assert_eq!(r.count(), 1);
    }
}
