//! Process-signal plumbing for graceful drain.
//!
//! SIGTERM and SIGINT set a flag the accept loop polls; nothing else
//! happens in signal context (the handler is a single atomic store,
//! which is async-signal-safe). The workspace is dependency-free, so
//! the one `signal(2)` binding is declared here directly — it is the
//! only unsafe code in the crate.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT drain handler (idempotent).
pub fn install_handlers() {
    imp::install();
}

/// `true` once SIGTERM or SIGINT has been received.
pub fn termination_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: simulate a received signal in-process.
pub fn request_termination() {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}
