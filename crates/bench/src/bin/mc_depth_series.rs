//! Regenerates the paper's §VII depth observations as a series: BFS
//! level-by-level progress for each Table-I experiment.
//!
//! The paper reports deadlocks detected at depths 25–31 and bounded
//! clean runs reaching ≥ 47 levels; the shapes here should match —
//! deadlocking protocols stop at a modest depth with a counterexample,
//! clean ones run to their bound.

use vnet_core::minimize_vns;
use vnet_mc::{explore_with, InjectionBudget, McConfig, Verdict, VnMap};
use vnet_protocol::{protocols, ProtocolSpec};

fn series(spec: &ProtocolSpec, cfg: &McConfig, label: &str) {
    print!("{label:<44}levels:");
    let mut printed = 0usize;
    let v = explore_with(spec, cfg, |level, states| {
        if level % 5 == 0 || level < 3 {
            print!(" {level}:{states}");
            printed += 1;
        }
    });
    println!();
    println!("{:<44}{}", "", v.summary());
}

fn main() {
    println!("Model-checking depth series (level:states-visited)\n");

    for spec in [
        protocols::msi_blocking_cache(),
        protocols::mesi_blocking_cache(),
        protocols::mosi_blocking_cache(),
        protocols::moesi_blocking_cache(),
    ] {
        let cfg = McConfig::figure3(&spec)
            .with_vns(VnMap::one_per_message(spec.messages().len()));
        series(&spec, &cfg, &format!("{} (unique VNs)", spec.name()));
        let v = vnet_mc::explore(&spec, &cfg);
        assert!(matches!(v, Verdict::Deadlock { .. }));
    }

    println!();
    for spec in [
        protocols::msi_nonblocking_cache(),
        protocols::mesi_nonblocking_cache(),
        protocols::chi(),
    ] {
        let outcome = minimize_vns(&spec);
        let vns = VnMap::from_assignment(
            outcome.assignment().expect("Class 3"),
            spec.messages().len(),
        );
        let cfg = McConfig::general(&spec)
            .with_vns(vns)
            .with_budget(InjectionBudget::PerCache(1))
            .with_limits(400_000, Some(48));
        series(&spec, &cfg, &format!("{} (derived VNs)", spec.name()));
    }
}
