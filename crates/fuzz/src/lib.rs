//! # vnet-fuzz
//!
//! A protocol-**mutation fuzzer** with a fail-closed **differential
//! oracle**: seeded structural edits of [`vnet_protocol::ProtocolSpec`]s
//! are re-rendered through the DSL (round-trip validity is itself under
//! test), validated, and — for every mutant that survives — cross-checked
//! *analyzer vs model checker*: the static minimum-VN assignment
//! (`vnet-core`) must never certify a configuration the bounded
//! explicit-state checker (`vnet-mc`) can deadlock. A deadlock trace is
//! definitive regardless of bounds, so one bounded run suffices to refute
//! the analyzer; agreement is only claimed from complete runs, and
//! exhausted budgets are never counted as passes.
//!
//! The moving parts:
//!
//! * [`mutate`] — named, replayable mutation operators (flip/insert
//!   stalls, reorder/drop actions, drop completions, swap message
//!   classes, remove rows);
//! * [`oracle`] — the differential verdict taxonomy
//!   ([`MutantOutcome`]): `Consistent` / `Disagreement` /
//!   `Undetermined`, plus the fail-closed rejection buckets;
//! * [`shrink`] — a delta-debugging minimizer that replays the oracle
//!   per reduction step;
//! * [`run`] — the supervised campaign runner: per-mutant panic/timeout
//!   isolation with retry lineage, deterministic JSON reports keyed by
//!   `(seed, mutation trace)`, and repro bundles for findings.
//!
//! Determinism is load-bearing: mutant `i` of a campaign depends only on
//! `(master seed, i)`, all oracle bounds are state/node counts (never
//! wall-clock), and reports carry no timing — two runs of
//! `vnet fuzz --seed S --count N` emit byte-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mutate;
pub mod oracle;
pub mod report;
pub mod run;
pub mod shrink;

pub use mutate::{apply, apply_all, generate, MutationOp};
pub use oracle::{run_oracle, MutantOutcome, OracleOpts};
pub use run::{run_campaign, CampaignReport, CaseResult, FuzzConfig, MutantRecord};
pub use shrink::{minimize, ShrinkResult};

use vnet_protocol::{dsl, ProtocolSpec};

/// Derives the per-mutant seed for index `i` of a campaign seeded with
/// `master`. SplitMix-style mixing keeps neighboring indices decorrelated
/// while staying a pure function of `(master, i)`.
pub fn mutant_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a mutation trace through the whole fail-closed pipeline:
/// apply → render → re-parse → canonical-render check → validate →
/// differential oracle. Returns the mutant's canonical DSL text and the
/// outcome.
///
/// # Errors
///
/// Returns a description when the trace does not re-apply to `base`
/// (possible for hand-edited recipes or mid-shrink candidates).
pub fn evaluate_ops(
    base: &ProtocolSpec,
    ops: &[MutationOp],
    opts: &OracleOpts,
) -> Result<(String, MutantOutcome), String> {
    let mutant = apply_all(base, ops)?;
    Ok(evaluate_spec(&mutant, opts))
}

/// The pipeline of [`evaluate_ops`] starting from an already-built
/// mutant.
pub fn evaluate_spec(mutant: &ProtocolSpec, opts: &OracleOpts) -> (String, MutantOutcome) {
    let text = dsl::to_text(mutant);
    let reparsed = match dsl::parse(&text) {
        Ok(spec) => spec,
        Err(e) => {
            return (
                text,
                MutantOutcome::RoundTripFailed {
                    error: format!("mutant rendering failed to re-parse: {e}"),
                },
            )
        }
    };
    let second = dsl::to_text(&reparsed);
    if second != text {
        return (
            text,
            MutantOutcome::RoundTripFailed {
                error: "mutant rendering is not a DSL fixed point".to_string(),
            },
        );
    }
    // The oracle runs on the *reparsed* spec so the whole textual path
    // is what gets cross-checked, not just the in-memory mutant.
    match reparsed.validate() {
        Err(e) => (
            text,
            MutantOutcome::ValidateRejected {
                error: e.to_string(),
            },
        ),
        Ok(()) => {
            let outcome = run_oracle(&reparsed, opts);
            (text, outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_graph::Rng64;
    use vnet_protocol::protocols;

    #[test]
    fn mutant_seeds_are_stable_and_spread() {
        assert_eq!(mutant_seed(7, 0), mutant_seed(7, 0));
        assert_ne!(mutant_seed(7, 0), mutant_seed(7, 1));
        assert_ne!(mutant_seed(7, 0), mutant_seed(8, 0));
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let base = protocols::msi_blocking_cache();
        let opts = OracleOpts {
            max_states: 20_000,
            ..OracleOpts::default()
        };
        for index in 0..4usize {
            let seed = mutant_seed(11, index);
            let mut r1 = Rng64::seed_from_u64(seed);
            let mut r2 = Rng64::seed_from_u64(seed);
            let (m1, o1) = generate(&base, &mut r1, 3);
            let (m2, o2) = generate(&base, &mut r2, 3);
            assert_eq!(o1, o2);
            let (t1, out1) = evaluate_spec(&m1, &opts);
            let (t2, out2) = evaluate_spec(&m2, &opts);
            assert_eq!(t1, t2);
            assert_eq!(out1, out2);
        }
    }
}
