//! Cache-symmetry reduction.
//!
//! With a uniform injection budget, the caches are interchangeable: any
//! permutation of cache indices maps reachable states to reachable
//! states. Canonicalizing each state to the lexicographically smallest
//! permutation image collapses symmetric orbits and shrinks the explored
//! space by up to `n_caches!` — the standard scalar-set reduction of
//! Murphi, specialized to the cache array.
//!
//! Not applicable to [`crate::InjectionBudget::Explicit`] scripts (the
//! script names specific caches, breaking the symmetry); the explorer
//! enforces that.

use crate::state::{GlobalState, Msg, Node};

/// Applies a cache-index permutation to a state: `perm[i]` is the new
/// index of old cache `i`.
pub fn permute(gs: &GlobalState, perm: &[usize]) -> GlobalState {
    let n = perm.len();
    debug_assert_eq!(gs.caches.len(), n);

    let remap_mask = |mask: u8| -> u8 {
        let mut out = 0u8;
        for (i, &p) in perm.iter().enumerate() {
            if mask & (1 << i) != 0 {
                out |= 1 << p;
            }
        }
        out
    };
    let remap_cache = |c: u8| perm[c as usize] as u8;
    let remap_node = |nd: Node| match nd {
        Node::Cache(c) => Node::Cache(remap_cache(c)),
        Node::Dir(d) => Node::Dir(d),
    };
    let remap_msg = |m: &Msg| Msg {
        src: remap_node(m.src),
        dst: remap_node(m.dst),
        requestor: remap_cache(m.requestor),
        ..*m
    };

    let mut caches = vec![Vec::new(); n];
    for (i, row) in gs.caches.iter().enumerate() {
        let mut new_row = row.clone();
        for line in &mut new_row {
            line.readers = remap_mask(line.readers);
            if let Some((w, a)) = line.writer {
                line.writer = Some((remap_cache(w), a));
            }
        }
        caches[perm[i]] = new_row;
    }

    let mut budgets = vec![0u8; gs.budgets.len()];
    for (i, &b) in gs.budgets.iter().enumerate() {
        budgets[perm[i]] = b;
    }

    let dirs = gs
        .dirs
        .iter()
        .map(|d| {
            let mut d = d.clone();
            d.sharers = remap_mask(d.sharers);
            d.owner = d.owner.map(remap_cache);
            d
        })
        .collect();

    // A message's *queue position* is part of the state; only identities
    // are remapped. The per-endpoint FIFOs, however, move with their
    // endpoint.
    let n_vns = gs.endpoint_fifos.len() / (n + gs.dirs.len()).max(1);
    let mut endpoint_fifos = gs.endpoint_fifos.clone();
    for (ep, _) in gs.endpoint_fifos.chunks(n_vns.max(1)).enumerate() {
        let new_ep = if ep < n { perm[ep] } else { ep };
        for vn in 0..n_vns {
            endpoint_fifos[new_ep * n_vns + vn] = gs.endpoint_fifos[ep * n_vns + vn]
                .iter()
                .map(remap_msg)
                .collect();
        }
    }
    let global_bufs = gs
        .global_bufs
        .iter()
        .map(|buf| buf.iter().map(remap_msg).collect())
        .collect();

    GlobalState {
        caches,
        dirs,
        budgets,
        used_injections: gs.used_injections,
        global_bufs,
        endpoint_fifos,
    }
}

/// All permutations of `0..n` (n ≤ 8 in practice).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// The canonical representative of `gs`'s symmetry orbit: the
/// permutation image with the smallest encoding. Returns the canonical
/// state together with its encoding (so callers don't re-encode).
pub fn canonicalize(gs: &GlobalState) -> (GlobalState, Vec<u8>) {
    let n = gs.caches.len();
    let mut best_state = gs.clone();
    let mut best_key = gs.encode();
    for perm in permutations(n) {
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            continue;
        }
        let candidate = permute(gs, &perm);
        let key = candidate.encode();
        if key < best_key {
            best_key = key;
            best_state = candidate;
        }
    }
    (best_state, best_key)
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use vnet_protocol::protocols;

    fn setup() -> (vnet_protocol::ProtocolSpec, McConfig, GlobalState) {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let gs = GlobalState::initial(&spec, &cfg);
        (spec, cfg, gs)
    }

    #[test]
    fn identity_permutation_is_identity() {
        let (_, _, gs) = setup();
        assert_eq!(permute(&gs, &[0, 1, 2]), gs);
    }

    #[test]
    fn permutation_composes_to_identity() {
        let (spec, _, mut gs) = setup();
        let m = spec.cache().state_by_name("M").unwrap();
        gs.caches[0][0].state = m.index() as u8;
        gs.dirs[0].owner = Some(0);
        gs.dirs[0].sharers = 0b011;
        let once = permute(&gs, &[1, 2, 0]);
        let back = permute(&once, &[2, 0, 1]);
        assert_eq!(back, gs);
    }

    #[test]
    fn symmetric_states_share_a_canonical_form() {
        let (spec, _, base) = setup();
        let m = spec.cache().state_by_name("M").unwrap();
        // Two states that differ only by which cache holds M.
        let mut a = base.clone();
        a.caches[0][0].state = m.index() as u8;
        a.dirs[0].owner = Some(0);
        let mut b = base.clone();
        b.caches[2][0].state = m.index() as u8;
        b.dirs[0].owner = Some(2);
        assert_eq!(canonicalize(&a).1, canonicalize(&b).1);
    }

    #[test]
    fn asymmetric_states_stay_distinct() {
        let (spec, _, base) = setup();
        let m = spec.cache().state_by_name("M").unwrap();
        let s = spec.cache().state_by_name("S").unwrap();
        let mut a = base.clone();
        a.caches[0][0].state = m.index() as u8;
        let mut b = base.clone();
        b.caches[0][0].state = s.index() as u8;
        assert_ne!(canonicalize(&a).1, canonicalize(&b).1);
    }

    #[test]
    fn messages_are_remapped_with_their_endpoints() {
        let (spec, cfg, mut gs) = setup();
        let gets = spec.message_by_name("GetS").unwrap();
        let n_vns = cfg.vns.n_vns();
        let msg = Msg {
            msg: gets.index() as u8,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        gs.endpoint_fifos[Node::Cache(0).index(3) * n_vns].push_back(msg);
        let p = permute(&gs, &[2, 0, 1]);
        // The FIFO moved from endpoint 0 to endpoint 2, and the message's
        // identity fields were remapped.
        let moved = &p.endpoint_fifos[Node::Cache(2).index(3) * n_vns];
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].src, Node::Cache(2));
        assert_eq!(moved[0].requestor, 2);
        assert!(p.endpoint_fifos[0].is_empty());
    }

    #[test]
    fn budgets_permute() {
        let (_, _, mut gs) = setup();
        gs.budgets = vec![0, 1, 2];
        let p = permute(&gs, &[1, 2, 0]);
        assert_eq!(p.budgets, vec![2, 0, 1]);
    }

    #[test]
    fn all_permutations_enumerated() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        let mut ps = permutations(3);
        ps.sort();
        ps.dedup();
        assert_eq!(ps.len(), 6);
    }
}
