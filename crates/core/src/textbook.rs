//! The **conventional-wisdom baseline** the paper argues against (§I,
//! §III): group messages into classes (requests, forwarded requests,
//! responses, and — where present — completions) and provision one VN
//! per class along the longest chain of class dependencies.
//!
//! The paper shows this rule is *neither necessary nor sufficient*; this
//! module implements it faithfully so the claim can be measured:
//!
//! * `textbook_vn_count` — the VN count the rule prescribes;
//! * `textbook_assignment` — the class→VN mapping it implies;
//! * compare both against [`crate::minimize_vns`] and
//!   [`crate::assignment::certify`] (see the `conventional_wisdom`
//!   binary in `vnet-bench`).

use crate::assignment::VnAssignment;
use crate::causes::compute_causes;
use crate::relation::Relation;
use std::collections::BTreeSet;
use vnet_protocol::{ControllerKind, MsgId, MsgType, ProtocolSpec};

/// The textbook message classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Cache → directory requests.
    Request,
    /// Directory → cache forwarded requests / invalidations / snoops.
    Forward,
    /// Data and control responses.
    Response,
    /// Transaction-completion messages (responses to responses, sent to
    /// the home) — the fourth class of protocols like CHI.
    Completion,
}

impl MsgClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Request => "Req",
            MsgClass::Forward => "Fwd",
            MsgClass::Response => "Resp",
            MsgClass::Completion => "Compl",
        }
    }
}

/// Classifies every message the way the textbook reasoning does.
///
/// Requests and forwards follow their declared [`MsgType`]. A response is
/// a *completion* when it is only ever received by directories **and**
/// every message that causes it is itself a response — the "requestor
/// closes the transaction with the home" pattern (CHI's CompAck).
pub fn classify_messages(spec: &ProtocolSpec) -> Vec<MsgClass> {
    let causes = compute_causes(spec);
    spec.message_ids()
        .map(|m| match spec.message(m).mtype {
            MsgType::Request => MsgClass::Request,
            MsgType::FwdRequest => MsgClass::Forward,
            MsgType::DataResponse | MsgType::CtrlResponse => {
                let receivers = spec.receivers_of(m);
                let dir_only = receivers.len() == 1
                    && receivers.contains(&ControllerKind::Directory);
                let parents: BTreeSet<MsgId> = causes.inverse().image(m).collect();
                let from_responses = !parents.is_empty()
                    && parents
                        .iter()
                        .all(|&p| spec.message(p).mtype.is_response());
                if dir_only && from_responses {
                    MsgClass::Completion
                } else {
                    MsgClass::Response
                }
            }
        })
        .collect()
}

/// The class-level dependency relation: `A → B` iff some message of
/// class `A` causes some message of class `B` (self-edges dropped — a
/// class never chains with itself in the textbook picture).
pub fn class_dependency_graph(spec: &ProtocolSpec) -> (Vec<MsgClass>, Relation) {
    let classes = classify_messages(spec);
    let causes = compute_causes(spec);
    let class_ids = [
        MsgClass::Request,
        MsgClass::Forward,
        MsgClass::Response,
        MsgClass::Completion,
    ];
    let idx = |c: MsgClass| class_ids.iter().position(|&x| x == c).expect("known class");
    let mut rel = Relation::new(4);
    for (a, b) in causes.iter() {
        let (ca, cb) = (classes[a.0], classes[b.0]);
        if ca != cb {
            rel.insert(MsgId(idx(ca)), MsgId(idx(cb)));
        }
    }
    (classes, rel)
}

/// The conventional-wisdom VN count: the length of the longest chain in
/// the class-dependency graph (number of classes on the longest path).
///
/// The class graph over {Req, Fwd, Resp, Compl} is a DAG for every
/// sensible protocol; if a cycle appears, all four classes are counted
/// (the rule has no better answer).
pub fn textbook_vn_count(spec: &ProtocolSpec) -> usize {
    let (classes, rel) = class_dependency_graph(spec);
    let present: BTreeSet<MsgClass> = classes.iter().copied().collect();
    if rel.has_cycle() {
        return present.len();
    }
    // Longest path (in nodes) over the 4-node DAG, restricted to classes
    // that actually occur.
    let g = rel.to_digraph();
    let order = vnet_graph::topo::topological_sort(&g).expect("acyclic checked");
    let mut longest = [1usize; 4];
    for v in order.into_iter().rev() {
        for s in g.successors(v) {
            longest[v.index()] = longest[v.index()].max(1 + longest[s.index()]);
        }
    }
    let class_ids = [
        MsgClass::Request,
        MsgClass::Forward,
        MsgClass::Response,
        MsgClass::Completion,
    ];
    (0..4)
        .filter(|&i| present.contains(&class_ids[i]))
        .map(|i| longest[i])
        .max()
        .unwrap_or(1)
}

/// The class→VN assignment the textbook rule prescribes (one VN per
/// *present* class, in class order).
pub fn textbook_assignment(spec: &ProtocolSpec) -> VnAssignment {
    let classes = classify_messages(spec);
    let mut present: Vec<MsgClass> = classes.clone();
    present.sort();
    present.dedup();
    let vn_of = classes
        .iter()
        .map(|c| present.iter().position(|p| p == c).expect("present"))
        .collect();
    VnAssignment::from_vns(vn_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::certify;
    use crate::waits::compute_waits;
    use vnet_protocol::protocols;

    #[test]
    fn msi_classes_match_the_primer() {
        let p = protocols::msi_blocking_cache();
        let classes = classify_messages(&p);
        let class_of = |n: &str| classes[p.message_by_name(n).unwrap().0];
        assert_eq!(class_of("GetS"), MsgClass::Request);
        assert_eq!(class_of("Fwd-GetM"), MsgClass::Forward);
        assert_eq!(class_of("Data"), MsgClass::Response);
        assert_eq!(class_of("Inv-Ack"), MsgClass::Response);
        // No completions in MSI.
        assert!(!classes.contains(&MsgClass::Completion));
    }

    #[test]
    fn chi_compack_is_a_completion() {
        let p = protocols::chi();
        let classes = classify_messages(&p);
        let compack = p.message_by_name("CompAck").unwrap();
        assert_eq!(classes[compack.0], MsgClass::Completion);
        // CompData/Comp are plain responses.
        let compdata = p.message_by_name("CompData").unwrap();
        assert_eq!(classes[compdata.0], MsgClass::Response);
    }

    #[test]
    fn textbook_counts_match_the_paper_narrative() {
        // "For many directory protocols that chain length is three…"
        for p in [
            protocols::msi_blocking_cache(),
            protocols::msi_nonblocking_cache(),
            protocols::mesi_blocking_cache(),
            protocols::mosi_blocking_cache(),
            protocols::moesi_nonblocking_cache(),
        ] {
            assert_eq!(textbook_vn_count(&p), 3, "{}", p.name());
        }
        // "…some protocols, which follow a response with a completion
        // message, have a chain length of four." (CHI)
        assert_eq!(textbook_vn_count(&protocols::chi()), 4);
    }

    #[test]
    fn textbook_is_not_sufficient_for_class2_protocols() {
        // §III-A: 3 VNs don't save the textbook MSI.
        let p = protocols::msi_blocking_cache();
        let waits = compute_waits(&p);
        let a = textbook_assignment(&p);
        assert_eq!(a.n_vns(), 3);
        assert!(!certify(&p, &waits, &a));
    }

    #[test]
    fn textbook_is_not_necessary_for_nonblocking_protocols() {
        // §III-B: the fully nonblocking protocols need 1 VN, the rule
        // says 3.
        for p in [
            protocols::mosi_nonblocking_cache(),
            protocols::moesi_nonblocking_cache(),
        ] {
            assert_eq!(textbook_vn_count(&p), 3, "{}", p.name());
            assert_eq!(crate::minimize_vns(&p).min_vns(), Some(1), "{}", p.name());
        }
        // And CHI: the rule says 4, two suffice.
        let chi = protocols::chi();
        assert_eq!(textbook_vn_count(&chi), 4);
        assert_eq!(crate::minimize_vns(&chi).min_vns(), Some(2));
    }

    #[test]
    fn textbook_assignment_is_sufficient_for_class3() {
        // When the protocol is Class 3, the (wasteful) textbook mapping
        // does at least certify — it separates strictly more than the
        // minimum does.
        for p in [
            protocols::msi_nonblocking_cache(),
            protocols::chi(),
        ] {
            let waits = compute_waits(&p);
            assert!(certify(&p, &waits, &textbook_assignment(&p)), "{}", p.name());
        }
    }

    #[test]
    fn class_graph_is_a_dag_for_builtins() {
        for p in protocols::all() {
            let (_, rel) = class_dependency_graph(&p);
            assert!(!rel.has_cycle(), "{}", p.name());
        }
    }
}
