//! The shipped `protocols/*.vnp` files (the artifact's "protocol models"
//! directory) must stay in sync with the builders and analyze to the
//! same verdicts.

use std::path::Path;
use vnet::core::analyze;
use vnet::protocol::{dsl, protocols};

#[test]
fn every_builtin_has_a_shipped_file_and_they_agree() {
    for spec in protocols::extended() {
        let path = format!("protocols/{}.vnp", spec.name());
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with `vnet export`)"));
        let parsed = dsl::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        parsed.validate().unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(parsed.name(), spec.name());
        // Exact sync with the builder.
        assert_eq!(
            dsl::to_text(&parsed),
            dsl::to_text(&spec),
            "{path} out of date — regenerate with `cargo run -- export {}`",
            spec.name()
        );
        // Identical analysis verdicts.
        assert_eq!(
            analyze(&parsed).outcome(),
            analyze(&spec).outcome(),
            "{path}"
        );
    }
}

#[test]
fn shipped_files_are_complete() {
    let dir = Path::new("protocols");
    let count = std::fs::read_dir(dir)
        .expect("protocols/ directory")
        .filter(|e| {
            e.as_ref()
                .map(|e| e.path().extension().is_some_and(|x| x == "vnp"))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(count, protocols::extended().len());
}

#[test]
fn murphi_models_are_shipped_and_in_sync() {
    use vnet::mc::{murphi, McConfig};
    for spec in protocols::extended() {
        let path = format!("protocols/murphi/{}.m", spec.name());
        let shipped = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with `vnet export-murphi`)"));
        let cfg = McConfig::general(&spec);
        assert_eq!(
            shipped,
            murphi::export(&spec, &cfg),
            "{path} out of date — regenerate with `cargo run -- export-murphi {}`",
            spec.name()
        );
    }
}
