//! The disabled-path contract: with both switches off (the process
//! default), every mutating operation is a no-op and spans are inert.
//!
//! This lives in its own integration-test binary (its own process) so
//! no other test's `set_metrics_enabled(true)` can race with it.

#[test]
fn disabled_instrumentation_is_a_no_op() {
    assert!(!vnet_obs::metrics_enabled());
    assert!(!vnet_obs::tracing_enabled());

    let c = vnet_obs::counter("disabled.counter");
    c.inc();
    c.add(100);
    assert_eq!(c.get(), 0);

    let g = vnet_obs::gauge("disabled.gauge");
    g.set(5);
    g.add(5);
    assert_eq!(g.get(), 0);

    let h = vnet_obs::histogram("disabled.hist", &[10]);
    h.record(3);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.bucket_counts(), vec![0, 0]);

    let mut s = vnet_obs::span("disabled.span");
    s.set_bytes(99);
    assert_eq!(s.id(), 0, "disabled spans allocate no id");
    drop(s);
    assert!(vnet_obs::trace_log().is_empty());

    // The registry still snapshots (all zeros) while disabled.
    let snap = vnet_obs::snapshot();
    assert!(snap.counters.iter().any(|(n, v)| n == "disabled.counter" && *v == 0));
    let json = snap.to_json();
    assert!(json.contains("\"disabled.counter\": 0"));
}
