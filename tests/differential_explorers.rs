//! Differential test: the serial and parallel explorers must be
//! observationally identical on every Table I protocol — same
//! reachable-state count, same diameter (deepest completed BFS level),
//! same verdict kind — and every parallel witness trace must replay
//! step-by-step to the terminal state it claims.
//!
//! The full Figure-3 spaces run to ~0.5M states, so the all-protocol
//! sweeps here use a complete small configuration and a depth-bounded
//! Figure-3 configuration; one full Figure-3 deadlock run validates
//! witness replay end to end.

use vnet::mc::{explore, explore_parallel, InjectionBudget, McConfig, Verdict, VnMap};
use vnet::protocol::protocols;

fn kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::NoDeadlock(_) => "no_deadlock",
        Verdict::Deadlock { .. } => "deadlock",
        Verdict::ModelError { .. } => "model_error",
        Verdict::InvariantViolation { .. } => "invariant_violation",
    }
}

/// Asserts the observable agreement contract between a serial verdict
/// and a parallel one.
fn assert_agree(name: &str, threads: usize, serial: &Verdict, parallel: &Verdict) {
    assert_eq!(
        kind(serial),
        kind(parallel),
        "{name} ({threads} threads): verdict kind diverged"
    );
    let (s, p) = (serial.stats(), parallel.stats());
    assert_eq!(
        s.states, p.states,
        "{name} ({threads} threads): reachable-state count diverged"
    );
    assert_eq!(
        s.levels, p.levels,
        "{name} ({threads} threads): diameter diverged"
    );
    assert_eq!(
        s.complete, p.complete,
        "{name} ({threads} threads): completeness diverged"
    );
}

#[test]
fn complete_small_spaces_agree_for_every_table1_protocol() {
    for spec in protocols::all() {
        let mut cfg = McConfig::general(&spec)
            .with_vns(VnMap::one_per_message(spec.messages().len()))
            .with_budget(InjectionBudget::PerCache(1));
        cfg.n_caches = 2;
        cfg.n_addrs = 1;
        cfg.n_dirs = 1;
        let serial = explore(&spec, &cfg);
        assert!(
            serial.stats().complete,
            "{}: small space should be fully explored",
            spec.name()
        );
        for threads in [2, 4] {
            let parallel = explore_parallel(&spec, &cfg, threads);
            assert_agree(spec.name(), threads, &serial, &parallel);
        }
    }
}

#[test]
fn bounded_figure3_sweeps_agree_for_every_table1_protocol() {
    for spec in protocols::all() {
        let cfg = McConfig::figure3(&spec)
            .with_vns(VnMap::one_per_message(spec.messages().len()))
            .with_limits(usize::MAX, Some(10));
        let serial = explore(&spec, &cfg);
        for threads in [2, 4] {
            let parallel = explore_parallel(&spec, &cfg, threads);
            assert_agree(spec.name(), threads, &serial, &parallel);
        }
    }
}

#[test]
fn parallel_figure3_witness_replays_to_its_terminal_state() {
    let spec = protocols::msi_blocking_cache();
    let cfg = McConfig::figure3(&spec).with_vns(VnMap::one_per_message(spec.messages().len()));
    let Verdict::Deadlock {
        trace: serial_trace,
        depth: serial_depth,
        ..
    } = explore(&spec, &cfg)
    else {
        panic!("figure3 MSI-blocking must deadlock serially");
    };
    let serial_end = serial_trace
        .replay(&spec, &cfg)
        .expect("serial witness must replay");
    assert_eq!(serial_end, serial_trace.last);

    for threads in [2, 4] {
        let Verdict::Deadlock { trace, depth, .. } = explore_parallel(&spec, &cfg, threads)
        else {
            panic!("figure3 MSI-blocking must deadlock with {threads} threads");
        };
        assert_eq!(depth, serial_depth, "{threads} threads: deadlock depth diverged");
        let end = trace
            .replay(&spec, &cfg)
            .unwrap_or_else(|e| panic!("{threads} threads: witness does not replay: {e}"));
        assert_eq!(
            end, trace.last,
            "{threads} threads: replay must land on the recorded witness"
        );
        // Different explorers may pick different (equally shallow)
        // witness states, but both must be genuinely deadlocked at the
        // same BFS depth — trace length is the depth for both.
        assert_eq!(trace.len(), serial_trace.len());
    }
}
