//! Executable semantics of protocol tables: guard evaluation and action
//! application against a concrete [`GlobalState`].

use crate::config::McConfig;
use crate::state::{GlobalState, Msg, Node};
use vnet_protocol::{
    Action, Cell, ControllerKind, CoreOp, Guard, MsgId, Payload, ProtocolSpec, StateId, Target,
    Trigger,
};

/// Outcome of attempting to process a trigger at a controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Firing {
    /// The entry fired: the state was mutated and these messages must be
    /// placed into the ICN.
    Fired {
        /// Messages produced by the entry's send actions, in order.
        sends: Vec<Msg>,
    },
    /// A stall cell matched: the trigger stays blocked.
    Stalled,
    /// No cell matched: a protocol-specification bug.
    Undefined,
}

/// Delivers message `m` to its destination controller, firing the
/// matching table entry.
pub fn deliver(spec: &ProtocolSpec, cfg: &McConfig, gs: &mut GlobalState, m: &Msg) -> Firing {
    let kind = match m.dst {
        Node::Cache(_) => ControllerKind::Cache,
        Node::Dir(_) => ControllerKind::Directory,
    };
    let ctrl = spec.controller(kind);
    let state = current_state(gs, m.dst, m.addr);
    let msg_id = MsgId(m.msg as usize);

    // Find the (unique, validated) matching guarded cell.
    let mut matched: Option<Cell> = None;
    for (guard, cell) in ctrl.entries_for_message(StateId(state as usize), msg_id) {
        if eval_guard(*guard, gs, m) {
            matched = Some(cell.clone());
            break;
        }
    }
    match matched {
        None => Firing::Undefined,
        Some(Cell::Stall) => Firing::Stalled,
        Some(Cell::Entry(entry)) => {
            let sends = apply_entry(spec, cfg, gs, m.dst, m.addr, Some(m), &entry);
            Firing::Fired { sends }
        }
    }
}

/// Injects a core operation at a cache. Returns `None` when the op is
/// not currently processable (stall or no cell) or is a pure hit with no
/// effect; otherwise fires the entry.
pub fn inject(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    gs: &mut GlobalState,
    cache: u8,
    addr: u8,
    op: CoreOp,
) -> Option<Vec<Msg>> {
    let state = gs.caches[cache as usize][addr as usize].state;
    let cell = spec
        .cache()
        .cell(StateId(state as usize), Trigger::core(op))?;
    let entry = match cell {
        Cell::Stall => return None,
        Cell::Entry(e) => e.clone(),
    };
    // Pure hits (no actions, no transition) don't change the state; the
    // explorer skips them to avoid useless self-loops.
    if entry.actions.is_empty() && entry.next.is_none() {
        return None;
    }
    Some(apply_entry(spec, cfg, gs, Node::Cache(cache), addr, None, &entry))
}

fn current_state(gs: &GlobalState, node: Node, addr: u8) -> u8 {
    match node {
        Node::Cache(c) => gs.caches[c as usize][addr as usize].state,
        Node::Dir(_) => gs.dirs[addr as usize].state,
    }
}

/// Evaluates a guard in the context of message `m` arriving at `m.dst`.
pub fn eval_guard(guard: Guard, gs: &GlobalState, m: &Msg) -> bool {
    let addr = m.addr as usize;
    match guard {
        Guard::Always => true,
        // Cache-side ack guards.
        Guard::AckZero | Guard::AckPositive => {
            let Node::Cache(c) = m.dst else { return false };
            let total = gs.caches[c as usize][addr].needed_acks as i32 + m.ack as i32;
            (total == 0) == (guard == Guard::AckZero)
        }
        Guard::LastAck | Guard::NotLastAck => {
            let Node::Cache(c) = m.dst else { return false };
            let last = gs.caches[c as usize][addr].needed_acks == 1;
            last == (guard == Guard::LastAck)
        }
        // Directory-side guards.
        Guard::LastSharer | Guard::NotLastSharer => {
            let others = gs.dirs[addr].sharers & !(1u8 << m.requestor);
            (others == 0) == (guard == Guard::LastSharer)
        }
        Guard::FromOwner | Guard::NotFromOwner => {
            let from_owner = match m.src {
                Node::Cache(c) => gs.dirs[addr].owner == Some(c),
                Node::Dir(_) => false,
            };
            from_owner == (guard == Guard::FromOwner)
        }
        Guard::LastSnpAck | Guard::NotLastSnpAck => {
            let last = gs.dirs[addr].pending == 1;
            last == (guard == Guard::LastSnpAck)
        }
        Guard::NoOtherSharers | Guard::HasOtherSharers => {
            let others = gs.dirs[addr].sharers & !(1u8 << m.requestor);
            (others == 0) == (guard == Guard::NoOtherSharers)
        }
        Guard::ReqIsOwner | Guard::ReqNotOwner => {
            let is_owner = gs.dirs[addr].owner == Some(m.requestor);
            is_owner == (guard == Guard::ReqIsOwner)
        }
    }
}

/// Applies an entry's actions at `node` for `addr`, triggered by
/// `trigger_msg` (or a core event when `None`). Returns the sends.
///
/// Sends carry the triggering message's requestor (or the acting cache
/// for core events); sends to deferred readers/writers carry the
/// recorded ids instead.
fn apply_entry(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    gs: &mut GlobalState,
    node: Node,
    addr: u8,
    trigger_msg: Option<&Msg>,
    entry: &vnet_protocol::Entry,
) -> Vec<Msg> {
    let requestor = match trigger_msg {
        Some(m) => m.requestor,
        None => match node {
            Node::Cache(c) => c,
            Node::Dir(_) => unreachable!("core events only fire at caches"),
        },
    };
    let msg_ack = trigger_msg.map_or(0, |m| m.ack);
    let mut sends = Vec::new();

    for action in &entry.actions {
        match action {
            Action::Send { msg, to, payload } => {
                emit(spec, cfg, gs, node, addr, requestor, msg_ack, *msg, *to, *payload, &mut sends);
            }
            Action::SendToSharersExceptReq { msg } => {
                let sharers = gs.dirs[addr as usize].sharers & !(1u8 << requestor);
                for s in 0..cfg.n_caches as u8 {
                    if sharers & (1 << s) != 0 {
                        sends.push(Msg {
                            msg: msg.index() as u8,
                            addr,
                            src: node,
                            dst: Node::Cache(s),
                            requestor,
                            ack: 0,
                        });
                    }
                }
            }
            Action::SetOwnerToReq => gs.dirs[addr as usize].owner = Some(requestor),
            Action::ClearOwner => gs.dirs[addr as usize].owner = None,
            Action::AddReqToSharers => gs.dirs[addr as usize].sharers |= 1 << requestor,
            Action::AddOwnerToSharers => {
                if let Some(o) = gs.dirs[addr as usize].owner {
                    gs.dirs[addr as usize].sharers |= 1 << o;
                }
            }
            Action::RemoveReqFromSharers => {
                gs.dirs[addr as usize].sharers &= !(1u8 << requestor)
            }
            Action::ClearSharers => gs.dirs[addr as usize].sharers = 0,
            Action::CopyDataToMem => {}
            Action::RecordReader => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].readers |= 1 << requestor;
            }
            Action::RecordWriter => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].writer = Some((requestor, msg_ack));
            }
            Action::SetPendingToOtherSharers => {
                let others = gs.dirs[addr as usize].sharers & !(1u8 << requestor);
                gs.dirs[addr as usize].pending = others.count_ones() as i8;
            }
            Action::DecPending => gs.dirs[addr as usize].pending -= 1,
            Action::AddAcksFromMsg => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].needed_acks += msg_ack;
            }
            Action::DecNeededAcks => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].needed_acks -= 1;
            }
        }
    }

    if let Some(next) = entry.next {
        match node {
            Node::Cache(c) => gs.caches[c as usize][addr as usize].state = next.index() as u8,
            Node::Dir(_) => gs.dirs[addr as usize].state = next.index() as u8,
        }
    }
    sends
}

#[allow(clippy::too_many_arguments)]
fn emit(
    _spec: &ProtocolSpec,
    cfg: &McConfig,
    gs: &mut GlobalState,
    node: Node,
    addr: u8,
    requestor: u8,
    msg_ack: i8,
    msg: MsgId,
    to: Target,
    payload: Payload,
    sends: &mut Vec<Msg>,
) {
    let dline = &gs.dirs[addr as usize];
    let others = (dline.sharers & !(1u8 << requestor)).count_ones() as i8;
    let base_ack = |stored: Option<(u8, i8)>| match payload {
        Payload::None | Payload::Data => 0,
        Payload::DataAckFromSharers | Payload::AckFromSharers => others,
        Payload::DataAckFromMsg => msg_ack,
        Payload::DataAckStored => stored.map_or(0, |(_, a)| a),
    };
    match to {
        Target::Req => sends.push(Msg {
            msg: msg.index() as u8,
            addr,
            src: node,
            dst: Node::Cache(requestor),
            requestor,
            ack: base_ack(None),
        }),
        Target::Dir => sends.push(Msg {
            msg: msg.index() as u8,
            addr,
            src: node,
            dst: Node::Dir(cfg.home_of(addr as usize) as u8),
            requestor,
            ack: base_ack(None),
        }),
        Target::Owner => {
            // A send to a missing owner is a specification bug; encode it
            // as a send to a sentinel that the explorer reports.
            let owner = dline.owner.expect("send to Owner with no owner recorded");
            sends.push(Msg {
                msg: msg.index() as u8,
                addr,
                src: node,
                dst: Node::Cache(owner),
                requestor,
                ack: base_ack(None),
            });
        }
        Target::Readers => {
            let Node::Cache(c) = node else { unreachable!() };
            let line = &mut gs.caches[c as usize][addr as usize];
            let readers = line.readers;
            line.readers = 0;
            for r in 0..cfg.n_caches as u8 {
                if readers & (1 << r) != 0 {
                    sends.push(Msg {
                        msg: msg.index() as u8,
                        addr,
                        src: node,
                        dst: Node::Cache(r),
                        requestor: r,
                        ack: 0,
                    });
                }
            }
        }
        Target::Writer => {
            let Node::Cache(c) = node else { unreachable!() };
            let line = &mut gs.caches[c as usize][addr as usize];
            let writer = line.writer.take();
            let (w, stored_ack) = writer.expect("send to Writer with none recorded");
            let ack = match payload {
                Payload::DataAckStored => stored_ack,
                _ => base_ack(Some((w, stored_ack))),
            };
            sends.push(Msg {
                msg: msg.index() as u8,
                addr,
                src: node,
                dst: Node::Cache(w),
                requestor: w,
                ack,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    fn setup() -> (ProtocolSpec, McConfig, GlobalState) {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let gs = GlobalState::initial(&spec, &cfg);
        (spec, cfg, gs)
    }

    #[test]
    fn store_in_i_sends_getm_and_transitions() {
        let (spec, cfg, mut gs) = setup();
        let sends = inject(&spec, &cfg, &mut gs, 0, 0, CoreOp::Store).unwrap();
        assert_eq!(sends.len(), 1);
        let m = sends[0];
        assert_eq!(m.dst, Node::Dir(0));
        assert_eq!(m.requestor, 0);
        assert_eq!(
            spec.message_name(MsgId(m.msg as usize)),
            "GetM"
        );
        let im_ad = spec.cache().state_by_name("IM_AD").unwrap();
        assert_eq!(gs.caches[0][0].state, im_ad.index() as u8);
    }

    #[test]
    fn load_hit_in_m_is_a_no_op() {
        let (spec, cfg, mut gs) = setup();
        let m_state = spec.cache().state_by_name("M").unwrap();
        gs.caches[0][0].state = m_state.index() as u8;
        assert!(inject(&spec, &cfg, &mut gs, 0, 0, CoreOp::Load).is_none());
    }

    #[test]
    fn getm_at_idle_directory_grants_ownership() {
        let (spec, cfg, mut gs) = setup();
        let getm = spec.message_by_name("GetM").unwrap();
        let msg = Msg {
            msg: getm.index() as u8,
            addr: 0,
            src: Node::Cache(1),
            dst: Node::Dir(0),
            requestor: 1,
            ack: 0,
        };
        let Firing::Fired { sends } = deliver(&spec, &cfg, &mut gs, &msg) else {
            panic!("GetM in I should fire");
        };
        assert_eq!(gs.dirs[0].owner, Some(1));
        let m_state = spec.directory().state_by_name("M").unwrap();
        assert_eq!(gs.dirs[0].state, m_state.index() as u8);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dst, Node::Cache(1));
        assert_eq!(sends[0].ack, 0); // no sharers
    }

    #[test]
    fn getm_in_s_counts_acks_and_invalidates_sharers() {
        let (spec, cfg, mut gs) = setup();
        let s_state = spec.directory().state_by_name("S").unwrap();
        gs.dirs[0].state = s_state.index() as u8;
        gs.dirs[0].sharers = 0b110; // caches 1 and 2 share
        let getm = spec.message_by_name("GetM").unwrap();
        let msg = Msg {
            msg: getm.index() as u8,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        let Firing::Fired { sends } = deliver(&spec, &cfg, &mut gs, &msg) else {
            panic!()
        };
        // Data to requestor with ack=2, plus two Invs.
        let data = spec.message_by_name("Data").unwrap();
        let inv = spec.message_by_name("Inv").unwrap();
        let data_msg = sends.iter().find(|m| m.msg == data.index() as u8).unwrap();
        assert_eq!(data_msg.ack, 2);
        let invs: Vec<&Msg> = sends.iter().filter(|m| m.msg == inv.index() as u8).collect();
        assert_eq!(invs.len(), 2);
        assert!(invs.iter().all(|m| m.requestor == 0));
        assert_eq!(gs.dirs[0].sharers, 0);
        assert_eq!(gs.dirs[0].owner, Some(0));
    }

    #[test]
    fn stall_reported_in_transient_state() {
        let (spec, cfg, mut gs) = setup();
        let sd = spec.directory().state_by_name("S_D").unwrap();
        gs.dirs[0].state = sd.index() as u8;
        let getm = spec.message_by_name("GetM").unwrap();
        let msg = Msg {
            msg: getm.index() as u8,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        assert_eq!(deliver(&spec, &cfg, &mut gs, &msg), Firing::Stalled);
    }

    #[test]
    fn undefined_reception_reported() {
        let (spec, cfg, mut gs) = setup();
        // Put-Ack arriving at a cache in I is undefined in the tables.
        let putack = spec.message_by_name("Put-Ack").unwrap();
        let msg = Msg {
            msg: putack.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 0,
        };
        assert_eq!(deliver(&spec, &cfg, &mut gs, &msg), Firing::Undefined);
    }

    #[test]
    fn ack_guards_combine_message_and_counter() {
        let (spec, cfg, mut gs) = setup();
        let im_ad = spec.cache().state_by_name("IM_AD").unwrap();
        gs.caches[0][0].state = im_ad.index() as u8;
        // Two early Inv-Acks already arrived.
        gs.caches[0][0].needed_acks = -2;
        let data = spec.message_by_name("Data").unwrap();
        let msg = Msg {
            msg: data.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 2,
        };
        // 2 + (-2) == 0: the ack=0 entry fires straight to M.
        let Firing::Fired { sends } = deliver(&spec, &cfg, &mut gs, &msg) else {
            panic!()
        };
        assert!(sends.is_empty());
        let m_state = spec.cache().state_by_name("M").unwrap();
        assert_eq!(gs.caches[0][0].state, m_state.index() as u8);
        assert_eq!(gs.caches[0][0].needed_acks, 0);
    }

    #[test]
    fn last_inv_ack_completes_write() {
        let (spec, cfg, mut gs) = setup();
        let im_a = spec.cache().state_by_name("IM_A").unwrap();
        gs.caches[0][0].state = im_a.index() as u8;
        gs.caches[0][0].needed_acks = 1;
        let invack = spec.message_by_name("Inv-Ack").unwrap();
        let msg = Msg {
            msg: invack.index() as u8,
            addr: 0,
            src: Node::Cache(1),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 0,
        };
        let Firing::Fired { .. } = deliver(&spec, &cfg, &mut gs, &msg) else {
            panic!()
        };
        let m_state = spec.cache().state_by_name("M").unwrap();
        assert_eq!(gs.caches[0][0].state, m_state.index() as u8);
        assert_eq!(gs.caches[0][0].needed_acks, 0);
    }

    #[test]
    fn deferred_writer_round_trip_in_nonblocking_msi() {
        let spec = protocols::msi_nonblocking_cache();
        let cfg = McConfig::general(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        let im_ad = spec.cache().state_by_name("IM_AD").unwrap();
        gs.caches[0][0].state = im_ad.index() as u8;
        // A Fwd-GetM for cache 2 arrives and is deferred.
        let fwdm = spec.message_by_name("Fwd-GetM").unwrap();
        let fwd = Msg {
            msg: fwdm.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 2,
            ack: 0,
        };
        let Firing::Fired { sends } = deliver(&spec, &cfg, &mut gs, &fwd) else {
            panic!()
        };
        assert!(sends.is_empty());
        assert_eq!(gs.caches[0][0].writer, Some((2, 0)));
        // Data (ack=0) completes the write and serves the writer.
        let data = spec.message_by_name("Data").unwrap();
        let dm = Msg {
            msg: data.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 0,
        };
        let Firing::Fired { sends } = deliver(&spec, &cfg, &mut gs, &dm) else {
            panic!()
        };
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dst, Node::Cache(2));
        assert_eq!(sends[0].requestor, 2);
        assert_eq!(gs.caches[0][0].writer, None);
        let i_state = spec.cache().state_by_name("I").unwrap();
        assert_eq!(gs.caches[0][0].state, i_state.index() as u8);
    }
}
