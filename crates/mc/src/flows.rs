//! Parameterized (all-N) deadlock-freedom via the message-flow
//! abstraction.
//!
//! Every explicit-state verdict in this crate holds only for the
//! explored configuration (so many caches, addresses, directories).
//! The paper's minimum-VN claims are meant to hold for *any* system
//! size, and its static pipeline is in fact independent of N: the
//! `causes`, `stalls`, `waits`, and `queues` relations are computed
//! over message *classes* from the FSM tables, never over concrete
//! endpoints. Following the flow-abstraction argument of
//! Sethi/Talupur/Malik ("Flow Specifications of Parameterized Cache
//! Coherence Protocols for Verifying Deadlock Freedom"), this module
//! lifts the Eq. 4 acyclicity check into an all-N certificate:
//!
//! 1. extract the per-transaction **message flows** from the protocol
//!    tables (the same worklist DFS as `vnet_core::causes`, kept
//!    per-root so the flows themselves are inspectable);
//! 2. check the **soundness preconditions** under which the
//!    class-level abstraction covers every concrete instance — and
//!    *fail closed* to [`FlowProvenance::BoundedOnly`] when any does
//!    not hold, degrading honestly to the explicit-state answer;
//! 3. decide Eq. 4 (`waits ∪ queues` has no cycle through a `waits`
//!    edge) over the given VN map. Acyclicity is N-independent, so a
//!    pass certifies deadlock freedom for every cache count, address
//!    count, and directory count the codec can express.
//!
//! The check can return "certified for all N" only as
//! [`FlowVerdict::FreeForAllN`]; everything else — an Eq. 4 cycle, a
//! flow that does not cover the vocabulary, a config the abstraction
//! cannot speak for — leaves the bounded explicit-state verdict as the
//! strongest claim. It never manufactures a "free" answer.

use crate::config::{IcnOrder, InjectionBudget, McConfig, VnMap};
use std::collections::{BTreeMap, BTreeSet};
use vnet_core::causes::compute_causes;
use vnet_core::deadlock::{find_eq4_cycle_edges, StepKind};
use vnet_core::queues::compute_queues;
use vnet_core::stalls::compute_stalls;
use vnet_core::waits::waits_from;
use vnet_core::VnAssignment;
use vnet_protocol::{ControllerKind, Event, MsgId, ProtocolSpec, Target};

/// One per-transaction message flow: the set of trigger→send edges
/// reachable from a single root message (a message some core event
/// injects), traced statically through the cache and directory tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// The message a core event sends to start the transaction.
    pub root: MsgId,
    /// Every `trigger → send` edge reachable from the root.
    pub edges: BTreeSet<(MsgId, MsgId)>,
    /// Every message appearing in this flow (root included).
    pub messages: BTreeSet<MsgId>,
}

/// Provenance of a deadlock-freedom claim after the parameterized
/// check has run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowProvenance {
    /// The flow abstraction applied and certified deadlock freedom for
    /// every N under the given VN map.
    Parameterized,
    /// Only the explicit-state bounded verdict holds; the string says
    /// why the abstraction could not certify more.
    BoundedOnly(String),
}

/// The parameterized checker's answer for one (spec, VN map) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowVerdict {
    /// Eq. 4 holds at the message-class level: deadlock-free for all
    /// N under this VN map.
    FreeForAllN {
        /// Number of per-transaction flows extracted.
        n_flows: usize,
        /// Number of message classes covered by the flows.
        n_messages: usize,
        /// Number of VNs in the certified map.
        n_vns: usize,
    },
    /// The abstraction applied but found an Eq. 4 cycle: freedom is
    /// not provable for all N (the bounded verdict still governs —
    /// the cycle may or may not manifest at small N).
    NotProvable {
        /// The offending cycle, rendered as `A -waits-> B` steps.
        cycle: Vec<String>,
    },
    /// A soundness precondition failed; the abstraction cannot speak
    /// for this configuration at all.
    Inapplicable {
        /// Which precondition failed, in operator-readable form.
        reason: String,
    },
}

impl FlowVerdict {
    /// The machine token for this verdict (`free-all-n`,
    /// `not-provable`, `inapplicable`).
    pub fn verdict_token(&self) -> &'static str {
        match self {
            FlowVerdict::FreeForAllN { .. } => "free-all-n",
            FlowVerdict::NotProvable { .. } => "not-provable",
            FlowVerdict::Inapplicable { .. } => "inapplicable",
        }
    }

    /// Whether the verdict certifies deadlock freedom for all N.
    pub fn is_free_for_all_n(&self) -> bool {
        matches!(self, FlowVerdict::FreeForAllN { .. })
    }

    /// The provenance of the overall deadlock-freedom claim: only a
    /// certified [`FlowVerdict::FreeForAllN`] upgrades to
    /// [`FlowProvenance::Parameterized`]; everything else stays
    /// bounded-only with an honest reason.
    pub fn provenance(&self) -> FlowProvenance {
        match self {
            FlowVerdict::FreeForAllN { .. } => FlowProvenance::Parameterized,
            FlowVerdict::NotProvable { cycle } => FlowProvenance::BoundedOnly(format!(
                "flow abstraction found an Eq. 4 cycle ({})",
                cycle.join(", ")
            )),
            FlowVerdict::Inapplicable { reason } => FlowProvenance::BoundedOnly(reason.clone()),
        }
    }

    /// The provenance as the machine string (`parameterized` or
    /// `bounded-only: <reason>`).
    pub fn provenance_string(&self) -> String {
        match self.provenance() {
            FlowProvenance::Parameterized => "parameterized".to_string(),
            FlowProvenance::BoundedOnly(reason) => format!("bounded-only: {reason}"),
        }
    }

    /// One-line summary for report taxonomies (fuzz oracle detail
    /// strings, campaign JSON).
    pub fn summary(&self) -> String {
        match self {
            FlowVerdict::FreeForAllN { n_vns, .. } => {
                format!("flow-free-all-n vns={n_vns}")
            }
            FlowVerdict::NotProvable { cycle } => {
                format!("flow-not-provable cycle={}", cycle.join(","))
            }
            FlowVerdict::Inapplicable { reason } => format!("flow-inapplicable: {reason}"),
        }
    }

    /// The `param-result` machine line, a sibling of the campaign's
    /// `mc-result` line. `provenance=` is the last key and runs to the
    /// end of the line, mirroring `parse_machine_line`'s convention.
    pub fn machine_line(&self) -> String {
        format!(
            "param-result verdict={} provenance={}",
            self.verdict_token(),
            self.provenance_string()
        )
    }

    /// Human-readable rendering, one claim per line.
    pub fn render(&self) -> String {
        match self {
            FlowVerdict::FreeForAllN {
                n_flows,
                n_messages,
                n_vns,
            } => format!(
                "parameterized: certified deadlock-free for ALL cache counts under this \
                 {n_vns}-VN map (flow abstraction: {n_flows} transaction flows covering \
                 {n_messages} message classes, Eq. 4 acyclic)"
            ),
            FlowVerdict::NotProvable { cycle } => format!(
                "parameterized: NOT provable for all N — Eq. 4 cycle at the message-class \
                 level: {}\n  (the bounded explicit-state verdict above is the strongest \
                 claim; provenance stays bounded-only)",
                cycle.join(", ")
            ),
            FlowVerdict::Inapplicable { reason } => format!(
                "parameterized: inapplicable — {reason}\n  (the bounded explicit-state \
                 verdict above is the strongest claim; provenance stays bounded-only)"
            ),
        }
    }
}

fn kind_of(target: Target) -> ControllerKind {
    if target.is_cache() {
        ControllerKind::Cache
    } else {
        ControllerKind::Directory
    }
}

/// Extracts the per-transaction message flows from the FSM tables.
///
/// Roots are the messages core events inject (traced from every
/// `Event::Core` entry of the cache table); from each root the same
/// worklist DFS as [`vnet_core::causes`] follows every send to every
/// controller that accepts it, but the edge set is kept *per root* so
/// each transaction's flow is inspectable on its own.
///
/// The traversal is a pure function of the parsed spec: all
/// intermediate sets are ordered (`BTreeMap`/`BTreeSet`), so two runs
/// — on any thread, in any process — produce identical flows.
pub fn extract_flows(spec: &ProtocolSpec) -> Vec<Flow> {
    // Root message → the controller kinds core events send it to.
    let mut roots: BTreeMap<MsgId, BTreeSet<ControllerKind>> = BTreeMap::new();
    for (_, trigger, cell) in spec.cache().iter() {
        if let Event::Core(_) = trigger.event {
            if let Some(entry) = cell.entry() {
                for (m, target) in entry.sends() {
                    roots.entry(m).or_default().insert(kind_of(target));
                }
            }
        }
    }
    roots
        .into_iter()
        .map(|(root, kinds)| {
            let mut edges: BTreeSet<(MsgId, MsgId)> = BTreeSet::new();
            let mut messages: BTreeSet<MsgId> = BTreeSet::new();
            messages.insert(root);
            let mut visited: BTreeSet<(MsgId, ControllerKind)> = BTreeSet::new();
            let mut work: Vec<(MsgId, ControllerKind)> =
                kinds.into_iter().map(|k| (root, k)).collect();
            while let Some((m, kind)) = work.pop() {
                if !visited.insert((m, kind)) {
                    continue;
                }
                for (_, trigger, cell) in spec.controller(kind).iter() {
                    if trigger.message() != Some(m) {
                        continue;
                    }
                    if let Some(entry) = cell.entry() {
                        for (m2, target) in entry.sends() {
                            edges.insert((m, m2));
                            messages.insert(m2);
                            work.push((m2, kind_of(target)));
                        }
                    }
                }
            }
            Flow {
                root,
                edges,
                messages,
            }
        })
        .collect()
}

/// Canonical one-string rendering of a spec's flows, used by the
/// purity property tests: byte-identical across runs and threads, or
/// the extraction is not the pure function it claims to be.
pub fn flows_canonical(spec: &ProtocolSpec) -> String {
    let mut out = String::new();
    for flow in extract_flows(spec) {
        out.push_str("flow ");
        out.push_str(spec.message_name(flow.root));
        out.push(':');
        for (a, b) in &flow.edges {
            out.push(' ');
            out.push_str(spec.message_name(*a));
            out.push_str("->");
            out.push_str(spec.message_name(*b));
        }
        out.push('\n');
    }
    out
}

/// Decides deadlock freedom for all N under `vns`, assuming the
/// caller has already established that the *runtime configuration* is
/// one the abstraction may speak for (see [`check_parameterized`] for
/// the config-level gate). This is the spec-level half: the VN map
/// must cover the vocabulary and the extracted flows must reach every
/// message class, otherwise the class-level relations provably
/// under-approximate some concrete behavior and the check fails
/// closed.
pub fn check_vn_map(spec: &ProtocolSpec, vns: &VnMap) -> FlowVerdict {
    let n_msgs = spec.messages().len();
    if vns.vn_vector().len() != n_msgs {
        return FlowVerdict::Inapplicable {
            reason: format!(
                "VN map covers {} messages but the spec defines {n_msgs}",
                vns.vn_vector().len()
            ),
        };
    }
    let flows = extract_flows(spec);
    let covered: BTreeSet<MsgId> = flows.iter().flat_map(|f| f.messages.iter().copied()).collect();
    let missing: Vec<&str> = spec
        .message_ids()
        .filter(|m| !covered.contains(m))
        .map(|m| spec.message_name(m))
        .collect();
    if !missing.is_empty() {
        return FlowVerdict::Inapplicable {
            reason: format!(
                "flow extraction does not reach message class(es) {}; the abstraction \
                 would under-approximate them",
                missing.join(", ")
            ),
        };
    }

    let causes = compute_causes(spec);
    let (stalls, _) = compute_stalls(spec);
    let waits = waits_from(&stalls, &causes);
    let assignment = VnAssignment::from_vns(vns.vn_vector().to_vec());
    let queues = compute_queues(spec, Some(&assignment));
    match find_eq4_cycle_edges(&waits, &queues) {
        None => FlowVerdict::FreeForAllN {
            n_flows: flows.len(),
            n_messages: covered.len(),
            n_vns: vns.n_vns(),
        },
        Some(edges) => {
            let cycle = edges
                .iter()
                .map(|(a, b, kind)| {
                    let step = match kind {
                        StepKind::Waits => "-waits->",
                        StepKind::Queues => "-queues->",
                    };
                    format!("{} {step} {}", spec.message_name(*a), spec.message_name(*b))
                })
                .collect();
            FlowVerdict::NotProvable { cycle }
        }
    }
}

/// The full parameterized check for a concrete [`McConfig`]: gate on
/// the config-level soundness preconditions, then decide Eq. 4 over
/// the config's VN map via [`check_vn_map`].
///
/// Preconditions, each failing closed to
/// [`FlowVerdict::Inapplicable`]:
///
/// * the config passes its own [`McConfig::validate`] (garbage in,
///   no certificate out);
/// * the injection budget is uniform [`InjectionBudget::PerCache`] —
///   an explicit script names specific caches and addresses and does
///   not generalize over N;
/// * the ICN is [`IcnOrder::Unordered`] — point-to-point pinning
///   hashes concrete endpoint identities, which the class-level
///   `queues` relation cannot model;
/// * no SWMR invariant is attached — the abstraction decides deadlock
///   freedom only, and silently dropping a safety obligation would
///   overclaim.
pub fn check_parameterized(spec: &ProtocolSpec, cfg: &McConfig) -> FlowVerdict {
    if let Err(e) = cfg.validate() {
        return FlowVerdict::Inapplicable {
            reason: format!("config fails validation: {e}"),
        };
    }
    if !matches!(cfg.budget, InjectionBudget::PerCache(_)) {
        return FlowVerdict::Inapplicable {
            reason: "explicit injection script names specific caches/addresses and does \
                     not generalize over N (use a per-cache budget, e.g. --general)"
                .to_string(),
        };
    }
    if !matches!(cfg.order, IcnOrder::Unordered) {
        return FlowVerdict::Inapplicable {
            reason: "point-to-point ordering pins concrete endpoint identities; the \
                     class-level queues relation cannot model it"
                .to_string(),
        };
    }
    if cfg.swmr.is_some() {
        return FlowVerdict::Inapplicable {
            reason: "an SWMR invariant is attached; the flow abstraction decides \
                     deadlock freedom only and cannot certify safety invariants"
                .to_string(),
        };
    }
    check_vn_map(spec, &cfg.vns)
}

// Tests use assert!/assert_eq! plus match-based destructuring instead
// of unwrap/expect so the crate-wide panic-site budget is untouched.
#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::{analyze, VnOutcome};
    use vnet_protocol::protocols;

    fn assigned_map(spec: &ProtocolSpec) -> Option<VnMap> {
        match analyze(spec).outcome() {
            VnOutcome::Assigned { assignment, .. } => {
                Some(VnMap::from_assignment(assignment, spec.messages().len()))
            }
            VnOutcome::Class2(_) => None,
        }
    }

    #[test]
    fn extraction_covers_every_message_in_every_builtin() {
        for spec in protocols::all() {
            let flows = extract_flows(&spec);
            let covered: BTreeSet<MsgId> =
                flows.iter().flat_map(|f| f.messages.iter().copied()).collect();
            for m in spec.message_ids() {
                assert!(
                    covered.contains(&m),
                    "{}: {} not covered by any flow",
                    spec.name(),
                    spec.message_name(m)
                );
            }
        }
    }

    #[test]
    fn flow_edges_agree_with_causes() {
        // The union of per-flow edges is exactly the causes relation:
        // same traversal, different bookkeeping.
        for spec in protocols::all() {
            let causes = compute_causes(&spec);
            let mut union: BTreeSet<(MsgId, MsgId)> = BTreeSet::new();
            for f in extract_flows(&spec) {
                union.extend(f.edges.iter().copied());
            }
            let from_causes: BTreeSet<(MsgId, MsgId)> = causes.iter().collect();
            assert_eq!(union, from_causes, "{}", spec.name());
        }
    }

    #[test]
    fn msi_nonblocking_assigned_map_is_free_for_all_n() {
        let spec = protocols::msi_nonblocking_cache();
        let vns = match assigned_map(&spec) {
            Some(v) => v,
            None => panic!("MSI-nonblocking must be assignable"),
        };
        let v = check_vn_map(&spec, &vns);
        assert!(v.is_free_for_all_n(), "{v:?}");
        assert_eq!(v.provenance(), FlowProvenance::Parameterized);
        assert_eq!(v.verdict_token(), "free-all-n");
    }

    #[test]
    fn msi_nonblocking_single_vn_is_not_provable() {
        // The analyzer needs 2 VNs; one shared VN must fail Eq. 4.
        let spec = protocols::msi_nonblocking_cache();
        let v = check_vn_map(&spec, &VnMap::single(spec.messages().len()));
        match &v {
            FlowVerdict::NotProvable { cycle } => assert!(!cycle.is_empty()),
            other => panic!("expected NotProvable, got {other:?}"),
        }
        match v.provenance() {
            FlowProvenance::BoundedOnly(reason) => assert!(reason.contains("cycle"), "{reason}"),
            FlowProvenance::Parameterized => panic!("cycle must not be parameterized"),
        }
    }

    #[test]
    fn mosi_nonblocking_is_free_on_one_vn() {
        // Table I: MOSI-nonblocking needs exactly 1 VN, so even the
        // single-VN map certifies for all N.
        let spec = protocols::mosi_nonblocking_cache();
        let v = check_vn_map(&spec, &VnMap::single(spec.messages().len()));
        assert!(v.is_free_for_all_n(), "{v:?}");
    }

    #[test]
    fn class2_blocking_msi_is_not_provable_even_one_per_message() {
        let spec = protocols::msi_blocking_cache();
        let v = check_vn_map(&spec, &VnMap::one_per_message(spec.messages().len()));
        assert!(
            matches!(v, FlowVerdict::NotProvable { .. }),
            "a waits cycle defeats every VN map: {v:?}"
        );
    }

    #[test]
    fn explicit_script_config_is_inapplicable() {
        let spec = protocols::msi_nonblocking_cache();
        let v = check_parameterized(&spec, &McConfig::figure3(&spec));
        match &v {
            FlowVerdict::Inapplicable { reason } => {
                assert!(reason.contains("injection script"), "{reason}")
            }
            other => panic!("figure3 must be inapplicable, got {other:?}"),
        }
        let p = v.provenance_string();
        assert!(p.starts_with("bounded-only: "), "{p}");
    }

    #[test]
    fn p2p_and_swmr_configs_are_inapplicable() {
        let spec = protocols::msi_nonblocking_cache();
        let p2p = McConfig::general(&spec).with_order(IcnOrder::PointToPoint { salt: 3 });
        assert!(matches!(
            check_parameterized(&spec, &p2p),
            FlowVerdict::Inapplicable { .. }
        ));
        let swmr =
            McConfig::general(&spec).with_swmr(crate::invariant::Swmr::by_convention(&spec));
        assert!(matches!(
            check_parameterized(&spec, &swmr),
            FlowVerdict::Inapplicable { .. }
        ));
    }

    #[test]
    fn undersized_vn_map_is_inapplicable() {
        let spec = protocols::msi_nonblocking_cache();
        let v = check_vn_map(&spec, &VnMap::single(2));
        assert!(matches!(v, FlowVerdict::Inapplicable { .. }), "{v:?}");
    }

    #[test]
    fn machine_line_shape_is_stable() {
        let spec = protocols::msi_nonblocking_cache();
        let vns = match assigned_map(&spec) {
            Some(v) => v,
            None => return,
        };
        let line = check_vn_map(&spec, &vns).machine_line();
        assert_eq!(line, "param-result verdict=free-all-n provenance=parameterized");
    }

    #[test]
    fn canonical_rendering_is_byte_identical_across_threads() {
        let baseline: Vec<String> = protocols::all()
            .iter()
            .map(flows_canonical)
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    protocols::all().iter().map(flows_canonical).collect::<Vec<String>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(got) => assert_eq!(got, baseline),
                Err(_) => panic!("worker thread panicked"),
            }
        }
    }
}
