//! The paper's headline industrial result (§VII-C, Figure 5): the CHI
//! specification mandates four virtual networks (REQ/SNP/RSP/DAT), but
//! two suffice.
//!
//! ```sh
//! cargo run --example chi_two_vns
//! ```

use vnet::core::assignment::{certify, VnAssignment};
use vnet::core::{analyze, minimize_vns};
use vnet::protocol::protocols;

fn main() {
    let chi = protocols::chi();
    let report = analyze(&chi);

    // Figure 5 / Eq. 7: the CleanUnique transaction chain.
    println!("CleanUnique transaction (paper Eq. 7), from the causes relation:");
    let mut m = "CleanUnique".to_string();
    loop {
        let id = chi.message_by_name(&m).unwrap();
        let next: Vec<&str> = report
            .causes()
            .image(id)
            .map(|x| chi.message_name(x))
            .collect();
        if next.is_empty() {
            break;
        }
        println!("  {m} -causes-> {}", next.join(", "));
        // Follow the Figure-5 spine.
        let spine = ["Inv", "SnpAck", "Comp", "CompAck"];
        match spine.iter().find(|s| next.contains(s)) {
            Some(n) => m = n.to_string(),
            None => break,
        }
    }

    println!("\nReadShared blocked behind it waits for (paper Figure 5):");
    let rs = chi.message_by_name("ReadShared").unwrap();
    let waits_for: Vec<&str> = report
        .waits()
        .image(rs)
        .map(|x| chi.message_name(x))
        .collect();
    println!("  ReadShared -waits-> {{{}}}", waits_for.join(", "));

    // The minimization result.
    let outcome = minimize_vns(&chi);
    let assignment = outcome.assignment().expect("CHI is Class 3");
    println!("\nminimum VNs: {}", assignment.n_vns());
    print!("{}", assignment.display(&chi));

    // Certify both directions: the 2-VN mapping passes the paper's
    // sufficient condition (Eq. 4); a single VN fails it.
    assert!(certify(&chi, report.waits(), assignment));
    let single = VnAssignment::single(chi.messages().len());
    assert!(!certify(&chi, report.waits(), &single));
    println!("\ncertified: 2 VNs satisfy Eq. 4; 1 VN does not.");
    println!("CHI's own specification provisions 4 VNs — twice the minimum.");
}
