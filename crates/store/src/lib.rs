//! # vnet-store — durable content-addressed result store
//!
//! Analysis in this workspace is deterministic: a (normalized protocol
//! spec, analysis config) pair fully determines the VN assignment, the
//! certifier verdict, and the model-checking summary. This crate
//! persists those results once and replays them forever, keyed by a
//! canonical hash of the producing inputs.
//!
//! ## On-disk layout
//!
//! A store is a directory:
//!
//! ```text
//! <dir>/MANIFEST        marker file, exactly "vnet-store v1\n"
//! <dir>/results.log     append-only record log
//! <dir>/quarantine/     corrupt stretches preserved on recovery
//! ```
//!
//! ## Record framing
//!
//! Every record is framed and individually checksummed, following the
//! checkpoint-v2 discipline from `crates/mc/src/checkpoint.rs`:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"VSR1"
//! 4       16    key    (content-address, see [`Key::derive`])
//! 20      1     kind   (1 = analyze, 2 = mc)
//! 21      4     schema version, u32 LE
//! 25      4     body length N, u32 LE
//! 29      N     body (UTF-8, producer-defined)
//! 29+N    8     checksum, u64 LE = FNV-1a over bytes [0, 29+N)
//! 37+N    8     commit marker b"VNETCMT1"
//! ```
//!
//! ## Commit-marker write order
//!
//! Appends are two-phase: the frame (through its checksum) is written
//! and flushed to disk first, and only then is the 8-byte commit
//! marker written and flushed. A record without its trailing marker is
//! by definition uncommitted.
//!
//! ## Fail-closed recovery
//!
//! [`Store::open`] scans the log front to back:
//!
//! * A structurally incomplete tail (torn write — the process died
//!   between the two flush points) is **rolled back**: the file is
//!   truncated to the end of the last committed record, restoring a
//!   byte-identical readable prefix. Rolled-back bytes are counted in
//!   `store.rolled_back_bytes`.
//! * A committed record whose checksum no longer matches (bit rot) is
//!   **quarantined, never silently dropped**: its raw bytes are copied
//!   to `quarantine/q-<offset>-<len>.bin`, it is skipped from the
//!   index, and `store.quarantined_total` is bumped. The log is then
//!   compacted to the surviving records so a subsequent open is clean.
//! * A record with an unknown kind or a newer schema version is kept
//!   in the log but never served (`skipped_unreadable` in the
//!   [`OpenReport`]): a result whose schema cannot be re-verified is
//!   not a certificate.
//!
//! A SIGKILL at any byte offset during a flush therefore leaves a
//! store that reopens to exactly the records that had completed their
//! marker flush — nothing more, nothing less.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Current record schema version. Records with a newer version are
/// preserved in the log but never served.
pub const SCHEMA_VERSION: u32 = 1;

const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_BODY: &str = "vnet-store v1\n";
const LOG_NAME: &str = "results.log";
const QUARANTINE_DIR: &str = "quarantine";

const FRAME_MAGIC: &[u8; 4] = b"VSR1";
const COMMIT_MARKER: &[u8; 8] = b"VNETCMT1";
const HEADER_LEN: usize = 4 + 16 + 1 + 4 + 4;
/// Sanity cap on a single body so a corrupt length field cannot make
/// the scanner treat the rest of the log as one giant torn record.
const MAX_BODY_LEN: usize = 1 << 26; // 64 MiB

/// FNV-1a 64-bit — the workspace's dependency-free checksum hash
/// (same function as `crates/mc/src/checkpoint.rs`, which keeps its
/// copy `pub(crate)`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Keys and record kinds.
// ---------------------------------------------------------------------

/// What a record holds. The numeric codes are part of the on-disk
/// format and must never be reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// VN assignment + certifier verdict for a protocol spec.
    Analyze,
    /// Model-checking summary for a (spec, config) pair.
    Mc,
}

impl RecordKind {
    fn code(self) -> u8 {
        match self {
            RecordKind::Analyze => 1,
            RecordKind::Mc => 2,
        }
    }

    fn from_code(code: u8) -> Option<RecordKind> {
        match code {
            1 => Some(RecordKind::Analyze),
            2 => Some(RecordKind::Mc),
            _ => None,
        }
    }

    /// Stable lowercase name, used in `vnet store verify` reports.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Analyze => "analyze",
            RecordKind::Mc => "mc",
        }
    }
}

/// A 128-bit content address: two independent FNV-1a streams over the
/// same length-prefixed parts. Collisions would need both 64-bit
/// hashes to collide simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Key(pub [u8; 16]);

/// Result-semantics fingerprint folded into every derived key as an
/// implicit part 0. Bump the trailing counter whenever a change can
/// alter the *content* of a stored result for unchanged inputs (new
/// analyzer heuristics, mc exploration-order fixes, body schema
/// edits): every previously derived key then stops matching, so a
/// rebuilt binary re-computes instead of serving stale results. The
/// orphaned records are kept-but-not-served — still in the log, never
/// indexed under any live key — and `gc` evicts them oldest-first
/// under a byte budget.
pub const RESULT_FINGERPRINT: &str =
    concat!("vnet-results/", env!("CARGO_PKG_VERSION"), "/r1");

impl Key {
    /// Derives a key from an ordered list of byte parts, prefixed by
    /// the crate-wide [`RESULT_FINGERPRINT`]. Each part is
    /// length-prefixed before hashing so `["ab","c"]` and `["a","bc"]`
    /// cannot collide by concatenation.
    pub fn derive(parts: &[&[u8]]) -> Key {
        Key::derive_with_fingerprint(RESULT_FINGERPRINT, parts)
    }

    /// [`Key::derive`] under an explicit fingerprint. Exposed so tests
    /// can prove that a fingerprint bump misses the old entries; real
    /// callers should use `derive`.
    pub fn derive_with_fingerprint(fingerprint: &str, parts: &[&[u8]]) -> Key {
        let mut buf = Vec::new();
        for part in std::iter::once(&fingerprint.as_bytes()).chain(parts) {
            buf.extend((part.len() as u64).to_le_bytes());
            buf.extend(*part);
        }
        let h1 = fnv1a(&buf);
        // Second stream: perturb with a domain tag so the halves are
        // independent functions of the same input.
        buf.extend(b"vnet-store/k2");
        let h2 = fnv1a(&buf);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&h1.to_le_bytes());
        out[8..].copy_from_slice(&h2.to_le_bytes());
        Key(out)
    }

    /// Lowercase hex rendering (32 chars), used in logs and responses.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

/// A decoded, committed, checksum-verified record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    pub kind: RecordKind,
    pub schema: u32,
    pub body: String,
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Why a store could not be opened or written. All paths fail closed:
/// no variant ever results in silently discarded committed data.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed; `context` names the operation.
    Io { context: &'static str, source: io::Error },
    /// The directory exists and is non-empty but carries no (or a
    /// foreign) `MANIFEST` marker — refusing to touch it.
    NotAStore { dir: PathBuf, detail: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::NotAStore { dir, detail } => {
                write!(f, "{} is not a vnet-store directory: {detail}", dir.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(context: &'static str) -> impl FnOnce(io::Error) -> StoreError {
    move |source| StoreError::Io { context, source }
}

// ---------------------------------------------------------------------
// Open-time recovery report.
// ---------------------------------------------------------------------

/// What [`Store::open`] found and did. `vnet store verify` renders
/// this and derives its exit code from it: quarantined records mean
/// committed data was damaged (exit 7); a rolled-back torn tail is
/// normal crash recovery (exit 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Committed, verified records retained in the log (including
    /// superseded duplicates of the same key).
    pub records: usize,
    /// Distinct keys served from the index.
    pub keys: usize,
    /// Log size after recovery, in bytes.
    pub log_bytes: u64,
    /// Bytes of uncommitted tail rolled back (torn write).
    pub rolled_back_bytes: u64,
    /// Committed-but-corrupt stretches moved to `quarantine/`.
    pub quarantined: usize,
    /// Committed records kept in the log but not served because their
    /// kind or schema version is unknown to this binary.
    pub skipped_unreadable: usize,
}

/// What [`Store::gc`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    pub kept: usize,
    pub evicted: usize,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

/// Classification of a directory for fail-closed CLI checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// Does not exist yet — safe to initialize.
    Missing,
    /// Exists and is empty — safe to initialize.
    Empty,
    /// Carries a valid `MANIFEST` marker.
    Store,
    /// Non-empty without a valid marker — refuse to touch.
    Foreign,
}

/// Classifies `dir` without opening the store.
pub fn dir_state(dir: &Path) -> Result<DirState, StoreError> {
    if !dir.exists() {
        return Ok(DirState::Missing);
    }
    let manifest = dir.join(MANIFEST_NAME);
    if manifest.is_file() {
        let body = fs::read_to_string(&manifest).map_err(io_err("read MANIFEST"))?;
        if body == MANIFEST_BODY {
            return Ok(DirState::Store);
        }
        return Ok(DirState::Foreign);
    }
    let mut entries = fs::read_dir(dir).map_err(io_err("read store dir"))?;
    if entries.next().is_none() {
        Ok(DirState::Empty)
    } else {
        Ok(DirState::Foreign)
    }
}

// ---------------------------------------------------------------------
// Scan machinery.
// ---------------------------------------------------------------------

struct ScannedRecord {
    key: Key,
    kind_code: u8,
    schema: u32,
    body: Vec<u8>,
    /// Byte offset of the frame within the scanned log.
    offset: u64,
}

enum FrameAt {
    /// Structurally complete and committed; checksum result included.
    Committed { rec: ScannedRecord, checksum_ok: bool, end: usize },
    /// Not a structurally complete committed frame at this offset.
    Invalid,
}

/// Attempts to parse one committed frame at `pos`. "Structurally
/// complete" requires the magic, an in-range body length, the full
/// frame, and the trailing commit marker — checksum validity is
/// reported separately so bit rot can be quarantined rather than
/// treated as a torn tail.
fn frame_at(buf: &[u8], pos: usize) -> FrameAt {
    let rest = &buf[pos..];
    if rest.len() < HEADER_LEN + 8 + 8 || &rest[..4] != FRAME_MAGIC {
        return FrameAt::Invalid;
    }
    let mut key = [0u8; 16];
    key.copy_from_slice(&rest[4..20]);
    let kind_code = rest[20];
    let schema = u32::from_le_bytes(rest[21..25].try_into().unwrap());
    let body_len = u32::from_le_bytes(rest[25..29].try_into().unwrap()) as usize;
    if body_len > MAX_BODY_LEN {
        return FrameAt::Invalid;
    }
    let total = HEADER_LEN + body_len + 8 + 8;
    if rest.len() < total {
        return FrameAt::Invalid;
    }
    let body_end = HEADER_LEN + body_len;
    if &rest[body_end + 8..total] != COMMIT_MARKER {
        return FrameAt::Invalid;
    }
    let stored = u64::from_le_bytes(rest[body_end..body_end + 8].try_into().unwrap());
    let checksum_ok = fnv1a(&rest[..body_end]) == stored;
    FrameAt::Committed {
        rec: ScannedRecord {
            key: Key(key),
            kind_code,
            schema,
            body: rest[HEADER_LEN..body_end].to_vec(),
            offset: pos as u64,
        },
        checksum_ok,
        end: pos + total,
    }
}

/// Finds the next offset `> pos` where a structurally complete
/// committed frame starts, or `None`.
fn next_frame_start(buf: &[u8], pos: usize) -> Option<usize> {
    let mut q = pos + 1;
    while q + HEADER_LEN + 16 <= buf.len() {
        if buf[q..q + 4] == *FRAME_MAGIC {
            if let FrameAt::Committed { .. } = frame_at(buf, q) {
                return Some(q);
            }
        }
        q += 1;
    }
    None
}

fn encode_frame(key: &Key, kind_code: u8, schema: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 16);
    out.extend(FRAME_MAGIC);
    out.extend(key.0);
    out.push(kind_code);
    out.extend(schema.to_le_bytes());
    out.extend((body.len() as u32).to_le_bytes());
    out.extend(body);
    let checksum = fnv1a(&out);
    out.extend(checksum.to_le_bytes());
    out
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

struct IndexEntry {
    record: Record,
    /// Monotonic write sequence; gc evicts lowest-seq entries first.
    seq: u64,
    /// On-disk footprint of this entry's frame (including marker).
    frame_bytes: u64,
}

/// An open result store. Single-writer: callers that share a store
/// across threads wrap it in a `Mutex`.
pub struct Store {
    dir: PathBuf,
    log: File,
    index: HashMap<Key, IndexEntry>,
    log_bytes: u64,
    next_seq: u64,
    report: OpenReport,
    slow_append_us: Option<u64>,
}

impl Store {
    /// Opens `dir` as a store, creating it (and its `MANIFEST`) if the
    /// directory is missing or empty. A non-empty directory without a
    /// valid marker is refused fail-closed.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        match dir_state(dir)? {
            DirState::Store => {}
            DirState::Missing | DirState::Empty => {
                fs::create_dir_all(dir).map_err(io_err("create store dir"))?;
                let tmp = dir.join("MANIFEST.tmp");
                fs::write(&tmp, MANIFEST_BODY).map_err(io_err("write MANIFEST"))?;
                fs::rename(&tmp, dir.join(MANIFEST_NAME)).map_err(io_err("commit MANIFEST"))?;
                sync_dir(dir)?;
            }
            DirState::Foreign => {
                return Err(StoreError::NotAStore {
                    dir: dir.to_path_buf(),
                    detail: "non-empty directory without a vnet-store MANIFEST".to_string(),
                });
            }
        }
        Self::open_marked(dir)
    }

    /// Opens an existing store; never initializes. Used by
    /// `vnet store verify`/`gc`, which must not conjure an empty store
    /// out of a typo'd path.
    pub fn open_existing(dir: &Path) -> Result<Store, StoreError> {
        match dir_state(dir)? {
            DirState::Store => Self::open_marked(dir),
            DirState::Missing | DirState::Empty => Err(StoreError::NotAStore {
                dir: dir.to_path_buf(),
                detail: "no store initialized here".to_string(),
            }),
            DirState::Foreign => Err(StoreError::NotAStore {
                dir: dir.to_path_buf(),
                detail: "non-empty directory without a vnet-store MANIFEST".to_string(),
            }),
        }
    }

    fn open_marked(dir: &Path) -> Result<Store, StoreError> {
        let log_path = dir.join(LOG_NAME);
        let buf = match fs::read(&log_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io { context: "read results.log", source: e }),
        };

        // Front-to-back scan: collect good records, quarantine
        // committed-but-corrupt stretches, roll back a torn tail.
        let mut good: Vec<ScannedRecord> = Vec::new();
        let mut quarantine: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut report = OpenReport::default();
        let mut pos = 0usize;
        while pos < buf.len() {
            match frame_at(&buf, pos) {
                FrameAt::Committed { rec, checksum_ok: true, end } => {
                    good.push(rec);
                    report.records += 1;
                    pos = end;
                }
                FrameAt::Committed { rec, checksum_ok: false, end } => {
                    quarantine.push((rec.offset, buf[pos..end].to_vec()));
                    pos = end;
                }
                FrameAt::Invalid => match next_frame_start(&buf, pos) {
                    Some(q) => {
                        // Mid-log damage with committed records after
                        // it: preserve the stretch, keep scanning.
                        quarantine.push((pos as u64, buf[pos..q].to_vec()));
                        pos = q;
                    }
                    None => {
                        // No committed frame ahead. If the tail still
                        // contains a commit marker it once held
                        // committed data — quarantine it; otherwise it
                        // is an uncommitted torn write — roll it back.
                        let tail = &buf[pos..];
                        if tail.windows(8).any(|w| w == COMMIT_MARKER) {
                            quarantine.push((pos as u64, tail.to_vec()));
                        } else {
                            report.rolled_back_bytes = tail.len() as u64;
                        }
                        pos = buf.len();
                    }
                },
            }
        }
        report.quarantined = quarantine.len();

        // Persist quarantined stretches before rewriting anything.
        if !quarantine.is_empty() {
            let qdir = dir.join(QUARANTINE_DIR);
            fs::create_dir_all(&qdir).map_err(io_err("create quarantine dir"))?;
            for (offset, bytes) in &quarantine {
                let name = format!("q-{offset:012}-{}.bin", bytes.len());
                let tmp = qdir.join(format!("{name}.tmp"));
                fs::write(&tmp, bytes).map_err(io_err("write quarantine file"))?;
                fs::rename(&tmp, qdir.join(&name)).map_err(io_err("commit quarantine file"))?;
            }
            sync_dir(&qdir)?;
        }

        // Rewrite the log iff recovery changed its readable content:
        // truncation suffices for a torn tail, compaction for
        // quarantined mid-log stretches.
        let retained: u64 = good
            .iter()
            .map(|r| (HEADER_LEN + r.body.len() + 16) as u64)
            .sum();
        if !quarantine.is_empty() {
            let tmp = dir.join("results.log.tmp");
            {
                let mut f = File::create(&tmp).map_err(io_err("create compacted log"))?;
                for rec in &good {
                    f.write_all(&encode_frame(&rec.key, rec.kind_code, rec.schema, &rec.body))
                        .map_err(io_err("write compacted log"))?;
                    f.write_all(COMMIT_MARKER).map_err(io_err("write compacted log"))?;
                }
                f.sync_data().map_err(io_err("sync compacted log"))?;
            }
            fs::rename(&tmp, &log_path).map_err(io_err("commit compacted log"))?;
            sync_dir(dir)?;
        } else if report.rolled_back_bytes > 0 {
            let f = OpenOptions::new()
                .write(true)
                .open(&log_path)
                .map_err(io_err("open results.log for rollback"))?;
            f.set_len(retained).map_err(io_err("roll back torn tail"))?;
            f.sync_data().map_err(io_err("sync rolled-back log"))?;
        }

        // Build the index; later writes of the same key win.
        let mut index: HashMap<Key, IndexEntry> = HashMap::new();
        let mut next_seq = 0u64;
        for rec in good {
            let frame_bytes = (HEADER_LEN + rec.body.len() + 16) as u64;
            let readable = RecordKind::from_code(rec.kind_code)
                .filter(|_| rec.schema <= SCHEMA_VERSION)
                .and_then(|kind| {
                    String::from_utf8(rec.body.clone())
                        .ok()
                        .map(|body| Record { kind, schema: rec.schema, body })
                });
            match readable {
                Some(record) => {
                    index.insert(rec.key, IndexEntry { record, seq: next_seq, frame_bytes });
                    next_seq += 1;
                }
                None => report.skipped_unreadable += 1,
            }
        }
        report.keys = index.len();
        report.log_bytes = retained;

        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(io_err("open results.log for append"))?;

        let slow_append_us = std::env::var("VNET_STORE_SLOW_APPEND_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&us| us > 0);

        vnet_obs::gauge("store.records").set(index.len() as i64);
        vnet_obs::gauge("store.bytes").set(retained as i64);
        vnet_obs::counter("store.quarantined_total").add(report.quarantined as u64);
        vnet_obs::counter("store.rolled_back_bytes").add(report.rolled_back_bytes);

        Ok(Store {
            dir: dir.to_path_buf(),
            log,
            index,
            log_bytes: retained,
            next_seq,
            report,
            slow_append_us,
        })
    }

    /// What recovery found and did when this handle was opened.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Distinct keys currently served.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Log size in bytes (committed frames only).
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Looks up a record. Only returns entries whose checksum, kind,
    /// and schema version verified at open time.
    pub fn get(&self, key: &Key) -> Option<&Record> {
        match self.index.get(key) {
            Some(entry) => {
                vnet_obs::counter("store.hits_total").inc();
                Some(&entry.record)
            }
            None => {
                vnet_obs::counter("store.misses_total").inc();
                None
            }
        }
    }

    /// Appends a record under `key`, superseding any previous record
    /// with the same key. Returns `Ok(false)` without touching disk if
    /// an identical record is already stored. Commit order: frame
    /// bytes → flush → marker → flush; a crash between the flushes
    /// leaves an uncommitted tail that the next open rolls back.
    pub fn put(&mut self, key: Key, kind: RecordKind, body: &str) -> Result<bool, StoreError> {
        if let Some(entry) = self.index.get(&key) {
            if entry.record.kind == kind
                && entry.record.schema == SCHEMA_VERSION
                && entry.record.body == body
            {
                vnet_obs::counter("store.dedup_total").inc();
                return Ok(false);
            }
        }
        let frame = encode_frame(&key, kind.code(), SCHEMA_VERSION, body.as_bytes());
        self.append(&frame).map_err(io_err("append record frame"))?;
        self.log.sync_data().map_err(io_err("sync record frame"))?;
        self.append(COMMIT_MARKER).map_err(io_err("append commit marker"))?;
        self.log.sync_data().map_err(io_err("sync commit marker"))?;

        let frame_bytes = (frame.len() + 8) as u64;
        self.log_bytes += frame_bytes;
        self.index.insert(
            key,
            IndexEntry {
                record: Record { kind, schema: SCHEMA_VERSION, body: body.to_string() },
                seq: self.next_seq,
                frame_bytes,
            },
        );
        self.next_seq += 1;
        vnet_obs::counter("store.writes_total").inc();
        vnet_obs::gauge("store.records").set(self.index.len() as i64);
        vnet_obs::gauge("store.bytes").set(self.log_bytes as i64);
        Ok(true)
    }

    /// Writes `bytes` to the log. With `VNET_STORE_SLOW_APPEND_US`
    /// set, writes one byte at a time with a flush and a sleep between
    /// bytes — a crash-injection hook that lets tests SIGKILL the
    /// writer at an arbitrary byte offset mid-flush.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.slow_append_us {
            None => self.log.write_all(bytes),
            Some(us) => {
                for b in bytes {
                    self.log.write_all(std::slice::from_ref(b))?;
                    self.log.flush()?;
                    std::thread::sleep(std::time::Duration::from_micros(us));
                }
                Ok(())
            }
        }
    }

    /// Compacts the log to the newest record per key and, if
    /// `max_bytes` is given, evicts oldest-written entries until the
    /// log fits. Quarantined files are never touched.
    pub fn gc(&mut self, max_bytes: Option<u64>) -> Result<GcReport, StoreError> {
        let bytes_before = self.log_bytes;
        let mut order: Vec<(&Key, &IndexEntry)> = self.index.iter().collect();
        order.sort_by_key(|(_, e)| e.seq);

        let mut evict = 0usize;
        if let Some(cap) = max_bytes {
            let mut total: u64 = order.iter().map(|(_, e)| e.frame_bytes).sum();
            while total > cap && evict < order.len() {
                total -= order[evict].1.frame_bytes;
                evict += 1;
            }
        }
        let keep: Vec<Key> = order[evict..].iter().map(|(k, _)| **k).collect();
        let evicted_keys: Vec<Key> = order[..evict].iter().map(|(k, _)| **k).collect();

        let log_path = self.dir.join(LOG_NAME);
        let tmp = self.dir.join("results.log.tmp");
        let mut new_bytes = 0u64;
        {
            let mut f = File::create(&tmp).map_err(io_err("create gc log"))?;
            for key in &keep {
                let entry = &self.index[key];
                let frame = encode_frame(
                    key,
                    entry.record.kind.code(),
                    entry.record.schema,
                    entry.record.body.as_bytes(),
                );
                f.write_all(&frame).map_err(io_err("write gc log"))?;
                f.write_all(COMMIT_MARKER).map_err(io_err("write gc log"))?;
                new_bytes += (frame.len() + 8) as u64;
            }
            f.sync_data().map_err(io_err("sync gc log"))?;
        }
        fs::rename(&tmp, &log_path).map_err(io_err("commit gc log"))?;
        sync_dir(&self.dir)?;

        for key in &evicted_keys {
            self.index.remove(key);
        }
        self.log = OpenOptions::new()
            .append(true)
            .open(&log_path)
            .map_err(io_err("reopen results.log after gc"))?;
        self.log_bytes = new_bytes;

        vnet_obs::counter("store.gc_runs_total").inc();
        vnet_obs::counter("store.evicted_total").add(evicted_keys.len() as u64);
        vnet_obs::gauge("store.records").set(self.index.len() as i64);
        vnet_obs::gauge("store.bytes").set(new_bytes as i64);

        Ok(GcReport {
            kept: keep.len(),
            evicted: evicted_keys.len(),
            bytes_before,
            bytes_after: new_bytes,
        })
    }
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    // Directory fsync so renames are durable; best-effort on platforms
    // where directories cannot be opened.
    if let Ok(f) = File::open(dir) {
        f.sync_all().map_err(io_err("sync store dir"))?;
    }
    Ok(())
}

/// Reads the raw log bytes (test/verify helper; `None` if absent).
pub fn read_log_bytes(dir: &Path) -> Option<Vec<u8>> {
    let mut f = File::open(dir.join(LOG_NAME)).ok()?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf).ok()?;
    Some(buf)
}

/// Lists quarantine file names (sorted), empty if none exist.
pub fn quarantine_files(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir.join(QUARANTINE_DIR)) {
        for e in entries.flatten() {
            if let Some(name) = e.file_name().to_str() {
                if name.starts_with("q-") && name.ends_with(".bin") {
                    out.push(name.to_string());
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vnet-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let k1 = Key::derive(&[b"analyze/1", b"spec-a"]);
        let k2 = Key::derive(&[b"mc/1", b"spec-a", b"cfg"]);
        {
            let mut s = Store::open(&dir).unwrap();
            assert!(s.put(k1, RecordKind::Analyze, "{\"vns\":3}").unwrap());
            assert!(s.put(k2, RecordKind::Mc, "{\"verdict\":\"pass\"}").unwrap());
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&k1).unwrap().body, "{\"vns\":3}");
        assert_eq!(s.get(&k1).unwrap().kind, RecordKind::Analyze);
        assert_eq!(s.get(&k2).unwrap().body, "{\"verdict\":\"pass\"}");
        assert_eq!(s.open_report().records, 2);
        assert_eq!(s.open_report().quarantined, 0);
        assert_eq!(s.open_report().rolled_back_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_put_dedupes_and_same_key_overrides() {
        let dir = tmp_dir("dedup");
        let k = Key::derive(&[b"analyze/1", b"spec"]);
        let mut s = Store::open(&dir).unwrap();
        assert!(s.put(k, RecordKind::Analyze, "v1").unwrap());
        let bytes = s.log_bytes();
        assert!(!s.put(k, RecordKind::Analyze, "v1").unwrap());
        assert_eq!(s.log_bytes(), bytes, "identical put must not grow the log");
        assert!(s.put(k, RecordKind::Analyze, "v2").unwrap());
        assert_eq!(s.get(&k).unwrap().body, "v2");
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(&k).unwrap().body, "v2", "latest write wins across reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_rolls_back_at_every_truncation_point() {
        let dir = tmp_dir("torn");
        let k1 = Key::derive(&[b"a"]);
        let k2 = Key::derive(&[b"b"]);
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(k1, RecordKind::Analyze, "committed-one").unwrap();
        }
        let committed = read_log_bytes(&dir).unwrap();
        // Append a second record, then truncate at every possible
        // prefix of its bytes: reopen must always recover exactly the
        // first record and restore the byte-identical prefix.
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(k2, RecordKind::Mc, "committed-two").unwrap();
        }
        let full = read_log_bytes(&dir).unwrap();
        for cut in committed.len()..full.len() {
            fs::write(dir.join(LOG_NAME), &full[..cut]).unwrap();
            let s = Store::open(&dir).unwrap();
            assert_eq!(s.len(), 1, "cut at {cut}");
            assert!(s.get(&k1).is_some(), "cut at {cut}");
            assert_eq!(
                read_log_bytes(&dir).unwrap(),
                committed,
                "cut at {cut}: prefix must be byte-identical"
            );
            assert_eq!(s.open_report().rolled_back_bytes, (cut - committed.len()) as u64);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_rot_is_quarantined_not_dropped() {
        let dir = tmp_dir("rot");
        let k1 = Key::derive(&[b"a"]);
        let k2 = Key::derive(&[b"b"]);
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(k1, RecordKind::Analyze, "first-record-body").unwrap();
            s.put(k2, RecordKind::Mc, "second-record-body").unwrap();
        }
        let mut bytes = read_log_bytes(&dir).unwrap();
        // Flip a byte inside the first record's body.
        bytes[HEADER_LEN + 3] ^= 0xff;
        fs::write(dir.join(LOG_NAME), &bytes).unwrap();

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 1, "corrupt record must not be served");
        assert!(s.get(&k2).is_some(), "later good record must survive");
        assert_eq!(s.open_report().quarantined, 1);
        let q = quarantine_files(&dir);
        assert_eq!(q.len(), 1, "corrupt bytes must be preserved: {q:?}");
        drop(s);
        // The compacted log reopens clean.
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.open_report().quarantined, 0);
        assert_eq!(s.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_directory_is_refused() {
        let dir = tmp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("precious.txt"), "user data").unwrap();
        match Store::open(&dir) {
            Err(StoreError::NotAStore { .. }) => {}
            Err(other) => panic!("expected NotAStore, got {other:?}"),
            Ok(_) => panic!("expected NotAStore, got a store"),
        }
        assert_eq!(
            fs::read_to_string(dir.join("precious.txt")).unwrap(),
            "user data",
            "refused open must not touch the directory"
        );
        assert!(matches!(dir_state(&dir).unwrap(), DirState::Foreign));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_existing_refuses_missing_dir() {
        let dir = tmp_dir("missing");
        assert!(matches!(
            Store::open_existing(&dir),
            Err(StoreError::NotAStore { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_compacts_and_evicts_oldest() {
        let dir = tmp_dir("gc");
        let mut s = Store::open(&dir).unwrap();
        let keys: Vec<Key> = (0..4u8)
            .map(|i| Key::derive(&[b"k", &[i]]))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            s.put(*k, RecordKind::Analyze, &format!("body-{i}-padpadpad")).unwrap();
        }
        // Rewrite key 0 so it becomes the newest entry.
        s.put(keys[0], RecordKind::Analyze, "body-0-rewritten").unwrap();
        let per_frame = (HEADER_LEN + "body-0-rewritten".len() + 16) as u64;
        let report = s.gc(Some(per_frame * 2 + 8)).unwrap();
        assert_eq!(report.kept + report.evicted, 4);
        assert!(report.evicted >= 1);
        assert!(
            s.get(&keys[0]).is_some(),
            "most recently written key must survive eviction"
        );
        assert!(report.bytes_after <= report.bytes_before);
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), report.kept);
        assert_eq!(s.open_report().quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_derivation_is_stable_and_prefix_safe() {
        let a = Key::derive(&[b"ab", b"c"]);
        let b = Key::derive(&[b"a", b"bc"]);
        assert_ne!(a, b, "length prefixing must prevent concatenation collisions");
        assert_eq!(a, Key::derive(&[b"ab", b"c"]));
        assert_eq!(a.to_hex().len(), 32);
        assert_ne!(a.0[..8], a.0[8..], "halves must be independent streams");
        assert_eq!(
            a,
            Key::derive_with_fingerprint(RESULT_FINGERPRINT, &[b"ab", b"c"]),
            "derive must be the fingerprinted derivation under the live fingerprint"
        );
    }

    #[test]
    fn fingerprint_bump_misses_old_entries_but_keeps_them() {
        let dir = tmp_dir("fingerprint-bump");
        // A record written by "yesterday's build" under its fingerprint.
        let old = Key::derive_with_fingerprint("vnet-results/0.1.0/r0", &[b"analyze/1", b"spec"]);
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(old, RecordKind::Analyze, "stale-result").unwrap();
        }
        // Today's build derives a different key for the same inputs, so
        // the lookup misses and the result is recomputed...
        let new = Key::derive(&[b"analyze/1", b"spec"]);
        assert_ne!(old, new, "a fingerprint bump must change every derived key");
        let s = Store::open(&dir).unwrap();
        assert!(s.get(&new).is_none(), "stale entry must not be served");
        // ...while the stale record itself is kept, not destroyed: it
        // still opens, checksums, and answers under its original key.
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&old).unwrap().body, "stale-result");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_kind_is_kept_but_not_served() {
        let dir = tmp_dir("unknown-kind");
        let k = Key::derive(&[b"future"]);
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(k, RecordKind::Analyze, "body").unwrap();
        }
        let mut bytes = read_log_bytes(&dir).unwrap();
        // Rewrite the kind byte to an unknown code and re-seal the
        // checksum so the frame stays committed and valid.
        bytes[20] = 99;
        let body_end = HEADER_LEN + "body".len();
        let sum = fnv1a(&bytes[..body_end]);
        bytes[body_end..body_end + 8].copy_from_slice(&sum.to_le_bytes());
        fs::write(dir.join(LOG_NAME), &bytes).unwrap();

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 0, "unknown kind must not be served");
        assert_eq!(s.open_report().skipped_unreadable, 1);
        assert_eq!(s.open_report().quarantined, 0, "valid frame is not corruption");
        assert_eq!(
            read_log_bytes(&dir).unwrap(),
            bytes,
            "unknown-kind record must be preserved in the log"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
