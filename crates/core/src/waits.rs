//! The `waits` relation (paper Eq. 3): `waits = stalls⁻¹ ; causes⁺`.
//!
//! `m1 —waits→ m2` iff a stalled `m1` can be waiting for an `m2` from the
//! transaction that caused the stall. A **cycle in `waits` is the Class-2
//! signature** (§V-E): such a protocol deadlocks even with one VN per
//! message name, because the cycle can be chained across addresses with
//! same-name `queues` edges that no assignment can break.

use crate::causes::compute_causes;
use crate::relation::Relation;
use crate::stalls::compute_stalls;
use vnet_protocol::ProtocolSpec;

/// Computes `waits` from already-computed `stalls` and `causes`.
pub fn waits_from(stalls: &Relation, causes: &Relation) -> Relation {
    stalls.inverse().compose(&causes.transitive_closure())
}

/// Computes the `waits` relation of a protocol from scratch.
///
/// # Example
///
/// ```
/// use vnet_core::waits::compute_waits;
/// use vnet_protocol::protocols;
///
/// let msi = protocols::msi_blocking_cache();
/// let waits = compute_waits(&msi);
/// let fwdm = msi.message_by_name("Fwd-GetM").unwrap();
/// // §V-E(b): the textbook protocol has Fwd-GetM —waits→ Fwd-GetM.
/// assert!(waits.contains(fwdm, fwdm));
/// ```
pub fn compute_waits(spec: &ProtocolSpec) -> Relation {
    let causes = compute_causes(spec);
    let (stalls, _) = compute_stalls(spec);
    waits_from(&stalls, &causes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    #[test]
    fn textbook_msi_has_the_fwdgetm_self_wait() {
        let p = protocols::msi_blocking_cache();
        let w = compute_waits(&p);
        let fwdm = p.message_by_name("Fwd-GetM").unwrap();
        assert!(w.contains(fwdm, fwdm));
        assert!(w.has_cycle());
    }

    #[test]
    fn nonblocking_msi_waits_is_requests_on_left_only() {
        let p = protocols::msi_nonblocking_cache();
        let w = compute_waits(&p);
        assert!(!w.has_cycle());
        for (m1, _) in w.iter() {
            assert_eq!(p.message(m1).mtype, vnet_protocol::MsgType::Request);
        }
        // GetM waits for Fwd-GetS and Data (paper §IV-C example).
        let getm = p.message_by_name("GetM").unwrap();
        let fwds = p.message_by_name("Fwd-GetS").unwrap();
        let data = p.message_by_name("Data").unwrap();
        assert!(w.contains(getm, fwds));
        assert!(w.contains(getm, data));
    }

    #[test]
    fn chi_waits_matches_paper_generalization() {
        // req —waits→ {fwd, res, data} and nothing else (§VII-C).
        let p = protocols::chi();
        let w = compute_waits(&p);
        assert!(!w.has_cycle());
        for (m1, m2) in w.iter() {
            assert_eq!(p.message(m1).mtype, vnet_protocol::MsgType::Request);
            assert_ne!(p.message(m2).mtype, vnet_protocol::MsgType::Request);
        }
        // The Figure-5 instance: ReadShared waits {Inv, SnpAck, Comp,
        // CompAck} when blocked behind a CleanUnique.
        let rs = p.message_by_name("ReadShared").unwrap();
        for m in ["Inv", "SnpAck", "Comp", "CompAck"] {
            let id = p.message_by_name(m).unwrap();
            assert!(w.contains(rs, id), "ReadShared should wait for {m}");
        }
    }

    #[test]
    fn fully_nonblocking_protocols_have_empty_waits() {
        for p in [
            protocols::mosi_nonblocking_cache(),
            protocols::moesi_nonblocking_cache(),
        ] {
            assert!(compute_waits(&p).is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn blocking_mosi_and_moesi_have_waits_cycles() {
        for p in [
            protocols::mosi_blocking_cache(),
            protocols::moesi_blocking_cache(),
            protocols::mesi_blocking_cache(),
        ] {
            let w = compute_waits(&p);
            assert!(w.has_cycle(), "{} should be Class 2", p.name());
            let fwdm = p.message_by_name("Fwd-GetM").unwrap();
            assert!(w.contains(fwdm, fwdm), "{}", p.name());
        }
    }
}
