//! Scaling of the conflict-graph coloring kernels (exact chromatic
//! search vs. DSATUR).

use std::hint::black_box;
use vnet_bench::timing::{bench, group};
use vnet_graph::coloring::{dsatur_coloring, exact_coloring};
use vnet_graph::{NodeId, Rng64, UnGraph};

fn random_ungraph(n: usize, density: f64, seed: u64) -> UnGraph<()> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut g = UnGraph::new();
    let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(density) {
                g.add_edge(ns[i], ns[j]);
            }
        }
    }
    g
}

fn main() {
    group("coloring");
    for n in [8usize, 12, 16, 20] {
        let g = random_ungraph(n, 0.3, 5 + n as u64);
        bench(&format!("exact/{n}"), || black_box(exact_coloring(&g)));
        bench(&format!("dsatur/{n}"), || black_box(dsatur_coloring(&g)));
    }
    for n in [64usize, 128] {
        let g = random_ungraph(n, 0.2, 11 + n as u64);
        bench(&format!("dsatur/{n}"), || black_box(dsatur_coloring(&g)));
    }
}
