//! The VN-minimization algorithm (paper §VI-A) and its certifier.
//!
//! Pipeline: build the condition graph under a single-VN assumption →
//! weighted minimum feedback arc set (Eq. 6) → translate the selected
//! edges back to their `qs(e)` `queues` pairs → color the resulting
//! conflict graph → the chromatic number is the number of VNs and the
//! coloring is the mapping.
//!
//! Two hardenings beyond the paper's description:
//!
//! * **Class-2 detection is done twice** — directly (a cycle in `waits`,
//!   §V-E) and through the algorithm (a FAS edge with empty `qs`,
//!   §VI-A(b)); they must agree.
//! * **The result is certified, not trusted**: the `queues` relation is
//!   re-derived under the produced assignment and Eq. 4 is re-checked.
//!   If a cycle survives (possible in principle, because `qs` only
//!   covers *minimal* witness paths), its `queues` steps are added to
//!   the conflict graph and the coloring is repeated. The loop
//!   terminates because the conflict graph grows monotonically within a
//!   finite pair set; in practice the first coloring already certifies.

use crate::causes::compute_causes;
use crate::deadlock::{build_condition_graph, find_eq4_cycle_edges, StepKind};
use crate::queues::compute_queues;
use crate::relation::Relation;
use crate::stalls::compute_stalls;
use crate::waits::waits_from;
use std::collections::BTreeSet;
use vnet_graph::coloring::exact_coloring_budgeted;
use vnet_graph::fas::minimum_feedback_arc_set_budgeted;
use vnet_graph::{Budget, DegradeReason, Provenance, UnGraph};
use vnet_protocol::{MsgId, MsgType, ProtocolSpec};

/// A mapping from message names to virtual networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VnAssignment {
    vn_of: Vec<usize>,
    n_vns: usize,
}

impl VnAssignment {
    /// Builds an assignment from a per-message VN vector.
    ///
    /// # Panics
    ///
    /// Panics if `vn_of` is empty but VN indices are not dense from 0.
    pub fn from_vns(vn_of: Vec<usize>) -> Self {
        let n_vns = vn_of.iter().max().map_or(1, |&m| m + 1);
        VnAssignment { vn_of, n_vns }
    }

    /// The single-VN assignment for `n` messages.
    pub fn single(n: usize) -> Self {
        VnAssignment {
            vn_of: vec![0; n],
            n_vns: 1,
        }
    }

    /// One VN per message name (the Class-2 thought experiment).
    pub fn one_per_message(n: usize) -> Self {
        VnAssignment {
            vn_of: (0..n).collect(),
            n_vns: n.max(1),
        }
    }

    /// The VN of message `m`.
    pub fn vn_of(&self, m: MsgId) -> usize {
        self.vn_of[m.0]
    }

    /// Number of VNs.
    pub fn n_vns(&self) -> usize {
        self.n_vns
    }

    /// The messages mapped to `vn`.
    pub fn messages_in(&self, vn: usize) -> impl Iterator<Item = MsgId> + '_ {
        self.vn_of
            .iter()
            .enumerate()
            .filter(move |&(_, &v)| v == vn)
            .map(|(i, _)| MsgId(i))
    }

    /// Renders the mapping with message names, one VN per line.
    pub fn display(&self, spec: &ProtocolSpec) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for vn in 0..self.n_vns {
            let names: Vec<&str> = self
                .messages_in(vn)
                .map(|m| spec.message_name(m))
                .collect();
            let _ = writeln!(out, "  VN{vn}: {{{}}}", names.join(", "));
        }
        out
    }
}

/// Evidence that a protocol is Class 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class2Evidence {
    /// A cycle in the `waits` relation (message names repeat-free; the
    /// last element waits for the first).
    pub waits_cycle: Vec<MsgId>,
}

/// The result of VN minimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VnOutcome {
    /// The protocol has a `waits` cycle: no per-message-name VN
    /// assignment can prevent deadlock (paper §V-E).
    Class2(Class2Evidence),
    /// A minimal assignment was found and certified against Eq. 4.
    Assigned {
        /// The message → VN mapping.
        assignment: VnAssignment,
        /// The conflict pairs the coloring separated.
        conflict_pairs: BTreeSet<(MsgId, MsgId)>,
        /// Total Eq.-6 weight of the selected feedback arc set.
        fas_weight: u128,
        /// How many certify-and-recolor rounds ran (0 = first coloring
        /// was already sound).
        recolor_rounds: usize,
        /// Whether both solver kernels (FAS, coloring) ran to
        /// completion. A [`Provenance::Degraded`] assignment still
        /// certifies against Eq. 4 — deadlock freedom is re-checked, not
        /// trusted — but its VN count may exceed the true minimum.
        provenance: Provenance,
    },
}

impl VnOutcome {
    /// The number of VNs, or `None` for Class 2.
    pub fn min_vns(&self) -> Option<usize> {
        match self {
            VnOutcome::Class2(_) => None,
            VnOutcome::Assigned { assignment, .. } => Some(assignment.n_vns()),
        }
    }

    /// The assignment, or `None` for Class 2.
    pub fn assignment(&self) -> Option<&VnAssignment> {
        match self {
            VnOutcome::Class2(_) => None,
            VnOutcome::Assigned { assignment, .. } => Some(assignment),
        }
    }

    /// The solver provenance. Class-2 verdicts are always exact (the
    /// `waits` cycle is found by plain DFS, never budgeted away).
    pub fn provenance(&self) -> &Provenance {
        match self {
            VnOutcome::Class2(_) => &Provenance::Exact,
            VnOutcome::Assigned { provenance, .. } => provenance,
        }
    }
}

/// Checks Eq. 4 for `spec` under `assignment`: `true` iff the protocol
/// cannot deadlock with that mapping (per the paper's sufficient
/// condition).
pub fn certify(spec: &ProtocolSpec, waits: &Relation, assignment: &VnAssignment) -> bool {
    let queues = compute_queues(spec, Some(assignment));
    find_eq4_cycle_edges(waits, &queues).is_none()
}

/// Runs the §VI-A algorithm on a protocol.
///
/// # Example
///
/// ```
/// use vnet_core::minimize_vns;
/// use vnet_protocol::protocols;
///
/// let outcome = minimize_vns(&protocols::msi_nonblocking_cache());
/// assert_eq!(outcome.min_vns(), Some(2));
///
/// let outcome = minimize_vns(&protocols::msi_blocking_cache());
/// assert_eq!(outcome.min_vns(), None); // Class 2
/// ```
pub fn minimize_vns(spec: &ProtocolSpec) -> VnOutcome {
    minimize_vns_budgeted(spec, &Budget::unlimited())
}

/// Like [`minimize_vns`], but every exact kernel (the branch-and-bound
/// FAS, the backtracking coloring) runs under `budget` and falls back to
/// its polynomial heuristic on exhaustion. The outcome's
/// [`provenance`](VnOutcome::provenance) records whether any kernel
/// degraded; a degraded assignment is still certified deadlock-free
/// against Eq. 4 — only *minimality* of the VN count is forfeited.
///
/// Each kernel invocation gets a fresh allotment of `budget` (the budget
/// is per-call, not shared across the pipeline).
pub fn minimize_vns_budgeted(spec: &ProtocolSpec, budget: &Budget) -> VnOutcome {
    let causes = compute_causes(spec);
    let (stalls, _) = compute_stalls(spec);
    let waits = waits_from(&stalls, &causes);
    minimize_vns_from_relations_budgeted(spec, &waits, budget)
}

/// The algorithm proper, given a precomputed `waits` relation.
pub fn minimize_vns_from_relations(spec: &ProtocolSpec, waits: &Relation) -> VnOutcome {
    minimize_vns_from_relations_budgeted(spec, waits, &Budget::unlimited())
}

/// [`minimize_vns_from_relations`] under a [`Budget`]; see
/// [`minimize_vns_budgeted`] for the degradation contract.
pub fn minimize_vns_from_relations_budgeted(
    spec: &ProtocolSpec,
    waits: &Relation,
    budget: &Budget,
) -> VnOutcome {
    let n = spec.messages().len();

    // §V-E: a waits cycle means Class 2, full stop.
    if let Some(cycle) = waits.find_cycle() {
        return VnOutcome::Class2(Class2Evidence { waits_cycle: cycle });
    }

    // §VI-A(a): single-VN queues, condition graph with witnesses.
    let queues1 = compute_queues(spec, None);
    let cg = build_condition_graph(waits, &queues1);

    // §VI-A(b): weighted minimum FAS.
    let (fas, fas_provenance) = minimum_feedback_arc_set_budgeted(
        &cg.graph,
        |w| {
            // Recompute Eq. 6 inline (the closure cannot borrow `cg`'s
            // method with the graph borrowed, so duplicate the two-case
            // weight).
            if w.qs.is_empty() {
                if n >= 127 {
                    u128::MAX
                } else {
                    (1u128 << n) + 1
                }
            } else {
                1
            }
        },
        budget,
    );

    // A pure-waits FAS edge would contradict the acyclicity of waits
    // checked above — for the *exact* solver. The heuristic fallback
    // only promises a valid FAS, so an unbreakable edge may slip in; its
    // empty `qs` contributes no conflict pairs and certification below
    // still decides soundness.
    debug_assert!(
        !fas_provenance.is_exact()
            || fas.edges.iter().all(|&e| !cg.graph.edge(e).qs.is_empty()),
        "exact FAS selected an unbreakable edge although waits is acyclic"
    );

    // §VI-A(c): conflict pairs from the selected edges.
    let mut conflict_pairs: BTreeSet<(MsgId, MsgId)> = BTreeSet::new();
    for &e in &fas.edges {
        for &(a, b) in &cg.graph.edge(e).qs {
            conflict_pairs.insert(normalize(a, b));
        }
    }

    // Color, assign, certify; grow the conflict graph if a non-minimal
    // witness path survived (see module docs).
    let mut rounds = 0usize;
    let mut coloring_degraded: Option<Provenance> = None;
    loop {
        let (assignment, color_prov) = color_and_assign(spec, &conflict_pairs, budget);
        if !color_prov.is_exact() && coloring_degraded.is_none() {
            coloring_degraded = Some(color_prov);
        }
        let queues = compute_queues(spec, Some(&assignment));
        match find_eq4_cycle_edges(waits, &queues) {
            None => {
                // First degradation wins the tag: FAS before coloring.
                let provenance = if !fas_provenance.is_exact() {
                    fas_provenance
                } else {
                    coloring_degraded.unwrap_or(Provenance::Exact)
                };
                return VnOutcome::Assigned {
                    assignment,
                    conflict_pairs,
                    fas_weight: fas.weight,
                    recolor_rounds: rounds,
                    provenance,
                };
            }
            Some(cycle_edges) => {
                rounds += 1;
                let before = conflict_pairs.len();
                for (a, b, kind) in cycle_edges {
                    if kind == StepKind::Queues && a != b {
                        conflict_pairs.insert(normalize(a, b));
                    }
                }
                if conflict_pairs.len() == before {
                    // No new separable pair, so recoloring cannot make
                    // progress. With `waits` acyclic this is not
                    // reachable from the exact path (a surviving Eq.-4
                    // cycle always crosses a queues step between distinct
                    // messages), so rather than panic, degrade to the
                    // one-VN-per-message assignment — the finest
                    // per-message-name split, which certifies whenever
                    // `waits` is acyclic (§V-E: only Class 2 defeats it).
                    return VnOutcome::Assigned {
                        assignment: VnAssignment::one_per_message(n),
                        conflict_pairs,
                        fas_weight: fas.weight,
                        recolor_rounds: rounds,
                        provenance: Provenance::Degraded {
                            reason: DegradeReason::Bound {
                                what: "certification found no separable pair; \
                                       fell back to one VN per message"
                                    .into(),
                            },
                        },
                    };
                }
            }
        }
    }
}

fn normalize(a: MsgId, b: MsgId) -> (MsgId, MsgId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Colors the conflict graph exactly and extends the partial mapping to
/// all messages: unconstrained messages join the VN where messages of
/// their type (request/forward/response) predominate, defaulting to VN 0.
fn color_and_assign(
    spec: &ProtocolSpec,
    pairs: &BTreeSet<(MsgId, MsgId)>,
    budget: &Budget,
) -> (VnAssignment, Provenance) {
    let n = spec.messages().len();
    if pairs.is_empty() {
        return (VnAssignment::single(n), Provenance::Exact);
    }
    // Conflict graph over the constrained messages only.
    let mut members: Vec<MsgId> = pairs
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect();
    members.sort();
    members.dedup();
    let mut g: UnGraph<MsgId> = UnGraph::new();
    let mut node_of = std::collections::BTreeMap::new();
    for &m in &members {
        node_of.insert(m, g.add_node(m));
    }
    for &(a, b) in pairs {
        g.add_edge(node_of[&a], node_of[&b]);
    }
    let (coloring, provenance) = exact_coloring_budgeted(&g, budget);
    let n_vns = coloring.num_colors.max(1);

    const UNSET: usize = usize::MAX;
    let mut vn_of = vec![UNSET; n];
    for &m in &members {
        vn_of[m.0] = coloring.color_of(node_of[&m]);
    }

    // Placement for the unconstrained messages: same-type majority
    // first, then same-side majority (request vs. non-request — the
    // paper's presented mappings group responses with forwards), then
    // VN 0.
    let mut type_counts = vec![vec![0usize; n_vns]; 4];
    let mut side_counts = vec![vec![0usize; n_vns]; 2];
    let type_idx = |t: MsgType| match t {
        MsgType::Request => 0,
        MsgType::FwdRequest => 1,
        MsgType::DataResponse => 2,
        MsgType::CtrlResponse => 3,
    };
    let side_idx = |t: MsgType| usize::from(t != MsgType::Request);
    for &m in &members {
        let t = spec.message(m).mtype;
        type_counts[type_idx(t)][vn_of[m.0]] += 1;
        side_counts[side_idx(t)][vn_of[m.0]] += 1;
    }
    for (i, slot) in vn_of.iter_mut().enumerate() {
        if *slot != UNSET {
            continue;
        }
        let t = spec.message(MsgId(i)).mtype;
        let pick = |counts: &[usize]| -> Option<usize> {
            let best = (0..n_vns).max_by_key(|&v| counts[v])?;
            (counts[best] > 0).then_some(best)
        };
        *slot = pick(&type_counts[type_idx(t)])
            .or_else(|| pick(&side_counts[side_idx(t)]))
            .unwrap_or(0);
    }
    (VnAssignment { vn_of, n_vns }, provenance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    #[test]
    fn class2_protocols_rejected_with_evidence() {
        for p in [
            protocols::msi_blocking_cache(),
            protocols::mesi_blocking_cache(),
            protocols::mosi_blocking_cache(),
            protocols::moesi_blocking_cache(),
        ] {
            match minimize_vns(&p) {
                VnOutcome::Class2(ev) => {
                    assert!(!ev.waits_cycle.is_empty(), "{}", p.name());
                }
                other => panic!("{} should be Class 2, got {other:?}", p.name()),
            }
        }
    }

    #[test]
    fn fully_nonblocking_protocols_need_one_vn() {
        for p in [
            protocols::mosi_nonblocking_cache(),
            protocols::moesi_nonblocking_cache(),
        ] {
            assert_eq!(minimize_vns(&p).min_vns(), Some(1), "{}", p.name());
        }
    }

    #[test]
    fn table1_cell5_msi_mesi_need_two_vns() {
        for p in [
            protocols::msi_nonblocking_cache(),
            protocols::mesi_nonblocking_cache(),
        ] {
            let outcome = minimize_vns(&p);
            assert_eq!(outcome.min_vns(), Some(2), "{}", p.name());
        }
    }

    #[test]
    fn table1_cell4_chi_needs_two_vns() {
        let outcome = minimize_vns(&protocols::chi());
        assert_eq!(outcome.min_vns(), Some(2));
    }

    #[test]
    fn chi_mapping_separates_requests_from_everything_else() {
        let p = protocols::chi();
        let VnOutcome::Assigned { assignment, .. } = minimize_vns(&p) else {
            panic!("CHI should be assignable");
        };
        let req_vn = assignment.vn_of(p.message_by_name("ReadShared").unwrap());
        for m in p.message_ids() {
            let is_req = p.message(m).mtype == MsgType::Request;
            assert_eq!(
                assignment.vn_of(m) == req_vn,
                is_req,
                "{} misplaced",
                p.message_name(m)
            );
        }
    }

    #[test]
    fn assignments_certify_and_single_vn_does_not() {
        for p in [
            protocols::msi_nonblocking_cache(),
            protocols::mesi_nonblocking_cache(),
            protocols::chi(),
        ] {
            let waits = crate::waits::compute_waits(&p);
            let VnOutcome::Assigned { assignment, .. } = minimize_vns(&p) else {
                panic!("{} should be assignable", p.name());
            };
            assert!(certify(&p, &waits, &assignment), "{}", p.name());
            // One fewer VN (the single-VN map) must fail Eq. 4.
            let single = VnAssignment::single(p.messages().len());
            assert!(!certify(&p, &waits, &single), "{}", p.name());
        }
    }

    #[test]
    fn minimality_no_smaller_merge_certifies() {
        // For the 2-VN protocols, every way of merging the two VNs into
        // one fails — i.e. 2 is truly minimal (exhaustive because the
        // only 1-VN assignment is the single-VN one).
        for p in [protocols::msi_nonblocking_cache(), protocols::chi()] {
            let waits = crate::waits::compute_waits(&p);
            let single = VnAssignment::single(p.messages().len());
            assert!(!certify(&p, &waits, &single), "{}", p.name());
        }
    }

    #[test]
    fn first_coloring_certifies_for_builtins() {
        for p in protocols::all() {
            if let VnOutcome::Assigned { recolor_rounds, .. } = minimize_vns(&p) {
                assert_eq!(recolor_rounds, 0, "{} needed recoloring", p.name());
            }
        }
    }

    #[test]
    fn one_vn_per_message_does_not_save_class2() {
        // The defining property of Class 2 (§V-E): even the
        // one-VN-per-message assignment fails Eq. 4.
        let p = protocols::msi_blocking_cache();
        let waits = crate::waits::compute_waits(&p);
        let per_msg = VnAssignment::one_per_message(p.messages().len());
        assert!(!certify(&p, &waits, &per_msg));
    }

    #[test]
    fn assignment_display_lists_all_vns() {
        let p = protocols::chi();
        let VnOutcome::Assigned { assignment, .. } = minimize_vns(&p) else {
            panic!();
        };
        let text = assignment.display(&p);
        assert!(text.contains("VN0"));
        assert!(text.contains("VN1"));
        assert!(text.contains("ReadShared"));
    }

    #[test]
    fn unlimited_budget_outcomes_are_exact() {
        for p in protocols::all() {
            let outcome = minimize_vns_budgeted(&p, &Budget::unlimited());
            assert!(outcome.provenance().is_exact(), "{}", p.name());
            assert_eq!(outcome, minimize_vns(&p), "{}", p.name());
        }
    }

    #[test]
    fn starved_budget_still_certifies_every_class3_builtin() {
        // One node of search effort: both kernels fall back to their
        // heuristics. The assignment must still pass Eq.-4 certification
        // (graceful degradation forfeits minimality, never soundness).
        let budget = Budget::unlimited().with_node_limit(1);
        for p in protocols::all() {
            let waits = crate::waits::compute_waits(&p);
            match minimize_vns_budgeted(&p, &budget) {
                VnOutcome::Class2(ev) => {
                    // Class-2 detection is never budgeted away.
                    assert!(!ev.waits_cycle.is_empty(), "{}", p.name());
                }
                VnOutcome::Assigned { assignment, .. } => {
                    assert!(certify(&p, &waits, &assignment), "{}", p.name());
                }
            }
        }
    }

    #[test]
    fn class2_verdicts_are_exact_under_any_budget() {
        let p = protocols::msi_blocking_cache();
        let outcome = minimize_vns_budgeted(&p, &Budget::unlimited().with_node_limit(1));
        assert!(matches!(outcome, VnOutcome::Class2(_)));
        assert!(outcome.provenance().is_exact());
    }

    #[test]
    fn from_vns_round_trip() {
        let a = VnAssignment::from_vns(vec![0, 1, 1, 0]);
        assert_eq!(a.n_vns(), 2);
        assert_eq!(a.vn_of(MsgId(2)), 1);
        assert_eq!(a.messages_in(0).count(), 2);
    }
}
