//! Breadth-first exploration with deadlock detection, bounded-run
//! reporting, and crash-tolerant checkpoint/resume.
//!
//! State storage is interned (see [`crate::intern`]): each canonical
//! encoding lives once in a bump arena under a dense `u32` id, and the
//! visited/parent structure is three flat `Vec`s indexed by id. Memory
//! accounting against the [`Budget`] is exact — computed from the
//! capacities of the owned structures, not estimated per entry.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, VisitedEntry};
use crate::config::McConfig;
use crate::intern::{InternError, LabelTable, StateId};
use crate::rules::{expand, ExpandOutcome, Scratch};
use crate::spill::{SpillArena, SpillConfig, SpillStats};
use crate::state::GlobalState;
use crate::trace::Trace;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use vnet_graph::{BitSet, Budget, BudgetMeter, DegradeReason, Provenance};
use vnet_protocol::ProtocolSpec;

/// Exploration statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states: usize,
    /// Deepest completed BFS level.
    pub levels: usize,
    /// `true` if the whole reachable space was explored (no bound hit).
    pub complete: bool,
    /// Why the run was truncated, if it was. Counterexample verdicts
    /// (deadlock, model error, invariant violation) are always
    /// [`Provenance::Exact`] — a found trace is definitive no matter how
    /// much of the space was left unexplored. A `NoDeadlock` verdict with
    /// degraded provenance is only a bounded claim.
    pub provenance: Provenance,
    /// High-water mark of the explorer's accounted heap bytes (visited
    /// arena + parent links + frontiers), exact from capacities. Zero
    /// for error paths that never ran the explorer.
    pub peak_bytes: u64,
    /// Cumulative compressed bytes of visited keys pushed to the spill
    /// tier's disk segments. Zero unless a memory budget forced cold
    /// state encodings out of RAM (see [`crate::spill`]).
    pub spill_bytes: u64,
}

impl ExploreStats {
    fn bounded(states: usize, levels: usize, peak_bytes: u64, spill_bytes: u64) -> Self {
        // Truncation by a *counterexample*: the search stopped early
        // because the verdict is already decided, which is exact.
        ExploreStats {
            states,
            levels,
            complete: false,
            provenance: Provenance::Exact,
            peak_bytes,
            spill_bytes,
        }
    }
}

/// The outcome of a model-checking run.
#[derive(Debug)]
pub enum Verdict {
    /// No deadlock found. `stats.complete` distinguishes a full proof
    /// from a bounded run (the paper's "reached level N without error").
    NoDeadlock(ExploreStats),
    /// A reachable state with work in flight and no enabled rule.
    Deadlock {
        /// Shortest path to the deadlocked state.
        trace: Trace,
        /// BFS depth at which it was found.
        depth: usize,
        /// Statistics at detection time.
        stats: ExploreStats,
    },
    /// A controller received an undefined message — a specification bug.
    ModelError {
        /// Path to the erroneous state.
        trace: Trace,
        /// What went wrong.
        detail: String,
        /// Statistics at detection time.
        stats: ExploreStats,
    },
    /// A safety invariant (SWMR) was violated.
    InvariantViolation {
        /// Path to the violating state.
        trace: Trace,
        /// The violation description.
        detail: String,
        /// Statistics at detection time.
        stats: ExploreStats,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Deadlock`].
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Verdict::Deadlock { .. })
    }

    /// The statistics of the run.
    pub fn stats(&self) -> &ExploreStats {
        match self {
            Verdict::NoDeadlock(s) => s,
            Verdict::Deadlock { stats, .. }
            | Verdict::ModelError { stats, .. }
            | Verdict::InvariantViolation { stats, .. } => stats,
        }
    }

    /// One-line summary in the style of the paper's result extraction.
    pub fn summary(&self) -> String {
        match self {
            Verdict::NoDeadlock(s) if s.complete => format!(
                "no deadlock (complete, {} states, {} levels)",
                s.states, s.levels
            ),
            Verdict::NoDeadlock(s) => format!(
                "no deadlock up to bound ({} states, {} levels){}",
                s.states,
                s.levels,
                s.provenance.annotation()
            ),
            Verdict::Deadlock { depth, stats, .. } => format!(
                "DEADLOCK at depth {depth} ({} states explored)",
                stats.states
            ),
            Verdict::ModelError { detail, .. } => format!("MODEL ERROR: {detail}"),
            Verdict::InvariantViolation { detail, .. } => {
                format!("INVARIANT VIOLATION: {detail}")
            }
        }
    }
}

/// Explores the reachable state space of `spec` under `cfg`.
///
/// See the crate docs for an end-to-end example.
pub fn explore(spec: &ProtocolSpec, cfg: &McConfig) -> Verdict {
    explore_with(spec, cfg, |_, _| {})
}

/// Like [`explore`], invoking `on_level(level, states_so_far)` as each
/// BFS level completes (the paper reports Murphi progress the same way).
pub fn explore_with(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    on_level: impl FnMut(usize, usize),
) -> Verdict {
    explore_budgeted_with(spec, cfg, &Budget::unlimited(), on_level)
}

/// [`explore`] under a work/memory [`Budget`]. On exhaustion the partial
/// result is returned with a degraded provenance instead of hanging.
pub fn explore_budgeted(spec: &ProtocolSpec, cfg: &McConfig, budget: &Budget) -> Verdict {
    explore_budgeted_with(spec, cfg, budget, |_, _| {})
}

/// [`explore_budgeted`] with the per-level progress callback.
pub fn explore_budgeted_with(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    on_level: impl FnMut(usize, usize),
) -> Verdict {
    match run_serial(spec, cfg, budget, None, None, on_level) {
        Ok(CheckpointedRun::Finished(v)) => v,
        // Without a checkpoint policy there is no file IO and no stop
        // file, so these arms are unreachable; fail soft, never panic.
        Ok(CheckpointedRun::Interrupted { states, level, .. }) => {
            Verdict::NoDeadlock(ExploreStats {
                states,
                levels: level,
                complete: false,
                provenance: Provenance::Degraded {
                    reason: DegradeReason::Bound {
                        what: "run interrupted".into(),
                    },
                },
                peak_bytes: 0,
                spill_bytes: 0,
            })
        }
        Err(e) => Verdict::NoDeadlock(ExploreStats {
            states: 0,
            levels: 0,
            complete: false,
            provenance: Provenance::Degraded {
                reason: DegradeReason::Bound {
                    what: format!("checkpoint error: {e}"),
                },
            },
            peak_bytes: 0,
            spill_bytes: 0,
        }),
    }
}

/// The outcome of a checkpoint-enabled run.
// A `Verdict` is bigger than the `Interrupted` payload, but one value
// exists per run (not per state) and every caller matches on it
// immediately — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CheckpointedRun {
    /// The run ended with a verdict (possibly bounded/degraded).
    Finished(Verdict),
    /// The stop file appeared at a level boundary: progress was flushed
    /// to `checkpoint` and the run stepped aside without a verdict.
    Interrupted {
        /// The checkpoint holding the flushed progress.
        checkpoint: PathBuf,
        /// Distinct states claimed so far.
        states: usize,
        /// Completed BFS levels.
        level: usize,
    },
}

/// [`explore_budgeted_with`] plus crash tolerance: explorer progress is
/// flushed to `policy.path` per the policy's cadence, on an imminent
/// budget deadline, and on budget exhaustion, so a killed or starved
/// run can be continued with [`resume`]. Checkpoint IO failures are
/// returned, never ignored — a run that cannot persist its progress
/// should not pretend it can.
pub fn explore_checkpointed(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    policy: &CheckpointPolicy,
    on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    run_serial(spec, cfg, budget, None, Some(policy), on_level)
}

/// Continues a run from the checkpoint at `path`, after verifying its
/// checksum and its (spec, config) fingerprint — a checkpoint from a
/// different protocol, VN mapping, or system size is refused with
/// [`CheckpointError::SpecMismatch`]. The budget's node accounting is
/// cumulative: the checkpoint records nodes already spent.
pub fn resume(
    path: &Path,
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    policy: Option<&CheckpointPolicy>,
    on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    let ckpt = Checkpoint::load(path, spec, cfg)?;
    run_serial(spec, cfg, budget, Some(ckpt), policy, on_level)
}

/// The interned visited/parent structure: the key arena plus three flat
/// vectors indexed by [`StateId`] (ids are dense in claim order).
struct Store {
    /// Canonical state encodings, one copy each — hot in a bump arena,
    /// cold on disk once a spill config's threshold is crossed.
    keys: SpillArena,
    /// Rule labels, shared across states.
    labels: LabelTable,
    /// `parents[id]` — the id the state was first reached from (the
    /// initial state points at itself).
    parents: Vec<StateId>,
    /// `label_ids[id]` — the rule label taken from the parent (label 0
    /// is the empty string, reserved for the initial state).
    label_ids: Vec<u32>,
    /// `levels[id]` — the BFS level at which the state was claimed.
    levels: Vec<u32>,
}

impl Store {
    fn new(spill: Option<SpillConfig>) -> Self {
        let mut labels = LabelTable::new();
        // Reserve label id 0 for the empty (initial-state) label.
        let empty = labels.intern("");
        debug_assert_eq!(empty, 0);
        Store {
            keys: SpillArena::new(spill),
            labels,
            parents: Vec::new(),
            label_ids: Vec::new(),
            levels: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.parents.len()
    }

    fn push_link(&mut self, parent: StateId, label_id: u32, level: u32) {
        self.parents.push(parent);
        self.label_ids.push(label_id);
        self.levels.push(level);
    }

    /// Exact heap bytes owned by the store, from capacities.
    fn heap_bytes(&self) -> u64 {
        self.keys.heap_bytes()
            + self.labels.heap_bytes()
            + ((self.parents.capacity() + self.label_ids.capacity() + self.levels.capacity())
                * std::mem::size_of::<u32>()) as u64
    }
}

/// Exact bytes of the whole explorer footprint: store plus both
/// id frontiers.
fn footprint(store: &Store, frontier: &VecDeque<StateId>, next: &VecDeque<StateId>) -> u64 {
    store.heap_bytes()
        + ((frontier.capacity() + next.capacity()) * std::mem::size_of::<u32>()) as u64
}

/// Delta-charges the meter so its current-bytes figure tracks `now`
/// exactly. Returns `false` once the memory budget is exhausted.
fn account(meter: &mut BudgetMeter, accounted: &mut u64, now: u64) -> bool {
    let ok = if now > *accounted {
        meter.charge_bytes(now - *accounted)
    } else {
        meter.release_bytes(*accounted - now);
        true
    };
    *accounted = now;
    ok
}

/// Rebuilds the id-interned visited structure from checkpoint entries.
/// Every entry's parent must itself be an entry; anything else is a
/// structurally inconsistent checkpoint and is refused (fail closed,
/// like every other checkpoint defect) rather than silently yielding
/// truncated witness traces.
fn seed_store(
    store: &mut Store,
    entries: &[VisitedEntry],
    parent_ids: Option<&[u32]>,
) -> Result<(), CheckpointError> {
    for (i, e) in entries.iter().enumerate() {
        let (_, fresh) = match store.keys.intern(&e.key) {
            Ok(v) => v,
            Err(why) => {
                return Err(CheckpointError::Corrupt {
                    offset: 0,
                    detail: format!("checkpoint exceeds the intern arena: {why}"),
                });
            }
        };
        if !fresh {
            return Err(CheckpointError::Corrupt {
                offset: 0,
                detail: "duplicate visited key in checkpoint".into(),
            });
        }
        let lid = store.labels.intern(&e.label);
        // Parent ids are patched in the second pass, once all keys
        // (and therefore all potential parents) are interned.
        store.push_link(StateId::MAX, lid, e.level);
        // Spill while seeding, not after: a resumed run's peak must
        // match what a fresh run reaching this point would carry, and a
        // fresh run would have spilled on the way. A refused spill
        // (IO error) keeps everything in RAM — the budget decides.
        if i % 4096 == 4095 {
            let _ = store.keys.maybe_spill(store.heap_bytes());
        }
    }
    // The version-2 decoder already globalized parent indices — and
    // interning above assigned ids in entry order, so those indices ARE
    // the parent ids. Version-1 checkpoints fall back to the per-entry
    // key lookup.
    if let Some(pids) = parent_ids {
        if pids.len() != entries.len() {
            return Err(CheckpointError::Corrupt {
                offset: 0,
                detail: "parent id table does not match the entry count".into(),
            });
        }
        store.parents[..pids.len()].copy_from_slice(pids);
        return Ok(());
    }
    for (i, e) in entries.iter().enumerate() {
        let Some(pid) = store.keys.lookup(&e.parent) else {
            return Err(CheckpointError::Corrupt {
                offset: 0,
                detail: format!(
                    "visited entry {i} references a parent key absent from the checkpoint"
                ),
            });
        };
        store.parents[i] = pid;
    }
    Ok(())
}

/// Maps checkpointed frontier states back to their interned ids. A
/// frontier state that was never claimed cannot come from a consistent
/// snapshot; refuse it.
fn resolve_frontier(
    store: &mut Store,
    states: &[GlobalState],
) -> Result<VecDeque<StateId>, CheckpointError> {
    let mut out = VecDeque::with_capacity(states.len());
    let mut scratch = Vec::with_capacity(128);
    for (i, gs) in states.iter().enumerate() {
        gs.encode_into(&mut scratch);
        let Some(id) = store.keys.lookup(&scratch) else {
            return Err(CheckpointError::Corrupt {
                offset: 0,
                detail: format!("frontier state {i} is not in the checkpoint's visited set"),
            });
        };
        out.push_back(id);
    }
    Ok(out)
}

/// Snapshot the explorer at a level boundary and write it out. The
/// on-disk format is unchanged (byte blobs, version 1): ids are
/// expanded back to key bytes on flush and re-interned on load, so
/// checkpoints taken before the interning rewrite resume cleanly.
fn flush(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    store: &mut Store,
    frontier: &VecDeque<StateId>,
    level: usize,
    claims: u64,
    path: &Path,
) -> Result<(), CheckpointError> {
    // Flush duration feeds the `explore.checkpoint_flush_us` histogram;
    // the clock is only read while metrics are on.
    let clock = vnet_obs::metrics_enabled().then(std::time::Instant::now);
    let mut entries = Vec::with_capacity(store.len());
    let mut key_scratch: Vec<u8> = Vec::with_capacity(128);
    let mut parent_scratch: Vec<u8> = Vec::with_capacity(128);
    for i in 0..store.len() {
        // A false here means a spilled segment became unreadable under
        // the run; surfacing it beats flushing a checkpoint with holes.
        if !store.keys.get_into(i as StateId, &mut key_scratch)
            || !store.keys.get_into(store.parents[i], &mut parent_scratch)
        {
            return Err(CheckpointError::Corrupt {
                offset: 0,
                detail: format!("visited state {i} unreadable at flush"),
            });
        }
        entries.push(VisitedEntry {
            key: key_scratch.clone(),
            parent: parent_scratch.clone(),
            label: store.labels.get(store.label_ids[i]).to_string(),
            level: store.levels[i],
        });
    }
    let mut states = Vec::with_capacity(frontier.len());
    for &id in frontier {
        if !store.keys.get_into(id, &mut key_scratch) {
            return Err(CheckpointError::Corrupt {
                offset: 0,
                detail: "interned frontier state unreadable at flush".into(),
            });
        }
        match GlobalState::decode(&key_scratch, cfg) {
            Some(gs) => states.push(gs),
            None => {
                return Err(CheckpointError::Corrupt {
                    offset: 0,
                    detail: "interned frontier state failed to decode".into(),
                })
            }
        }
    }
    let ckpt = Checkpoint {
        fingerprint: crate::checkpoint::fingerprint(spec, cfg),
        level,
        nodes_spent: claims,
        entries,
        frontier: states,
        parent_ids: None,
    };
    // The serial explorer writes the version-2 (delta-compressed,
    // sharded) format; version-1 files are still read and rewritten as
    // version 2 at the first flush after a resume.
    let res = ckpt.write_to_v2(path);
    if let Some(clock) = clock {
        vnet_obs::counter("explore.checkpoint_flushes_total").inc();
        vnet_obs::histogram("explore.checkpoint_flush_us", vnet_obs::DURATION_US_BOUNDS)
            .record(clock.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
    res
}

/// The BFS core shared by the fresh, checkpointed, and resumed entry
/// points. `start` seeds the visited store/frontier/level from a loaded
/// checkpoint; `policy` enables flushing.
///
/// Budget granularity: without a policy, exhaustion stops the search at
/// the very next claim (the historical behaviour). With a policy, the
/// current level is finished first — a flushable snapshot must sit at a
/// level boundary — so the overrun is bounded by one BFS level and the
/// checkpoint is always consistent.
fn run_serial(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    start: Option<Checkpoint>,
    policy: Option<&CheckpointPolicy>,
    on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    // The observability shim around the BFS core. Counting at this
    // single choke point (rather than per-claim inside the hot loop)
    // keeps `explore.states_total` exactly equal to the verdict's
    // `ExploreStats.states` on every exit path — complete, degraded,
    // cancelled, or interrupted — at zero per-state cost.
    let mut span = vnet_obs::span("explore.serial");
    let result = run_serial_inner(spec, cfg, budget, start, policy, on_level);
    match &result {
        Ok(CheckpointedRun::Finished(v)) => {
            let stats = v.stats();
            span.set_bytes(stats.peak_bytes as i64);
            if vnet_obs::metrics_enabled() {
                vnet_obs::counter("explore.runs_total").inc();
                vnet_obs::counter("explore.states_total").add(stats.states as u64);
            }
        }
        Ok(CheckpointedRun::Interrupted { states, .. }) => {
            if vnet_obs::metrics_enabled() {
                vnet_obs::counter("explore.runs_total").inc();
                vnet_obs::counter("explore.states_total").add(*states as u64);
            }
        }
        Err(_) => {}
    }
    result
}

/// The uninstrumented BFS core; see [`run_serial`].
fn run_serial_inner(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    start: Option<Checkpoint>,
    policy: Option<&CheckpointPolicy>,
    mut on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    if let Err(detail) = cfg.validate_for_run() {
        return Err(CheckpointError::Config { detail });
    }
    // The symmetry group + scratch, built once and reused for every
    // successor; `None` outside symmetry mode.
    let mut canon = cfg
        .symmetry
        .then(|| crate::symmetry::Canonicalizer::new(cfg));

    let mut store = Store::new(cfg.spill.clone());
    let mut frontier: VecDeque<StateId>;
    let mut level: usize;
    // Claimed-state work counter; cumulative across resumes (unlike the
    // meter's wall clock, which is per-process).
    let mut claims: u64;

    match start {
        Some(ckpt) => {
            seed_store(&mut store, &ckpt.entries, ckpt.parent_ids.as_deref())?;
            frontier = resolve_frontier(&mut store, &ckpt.frontier)?;
            level = ckpt.level;
            claims = ckpt.nodes_spent;
        }
        None => {
            let initial = GlobalState::initial(spec, cfg);
            // The initial state is a fixed point of every permutation
            // (all caches identical, no messages), so its canonical key
            // equals its plain encoding; computing it through the
            // canonicalizer keeps that an invariant, not an assumption.
            let init_key = match canon.as_mut() {
                Some(c) => c.canonicalize(cfg, &initial).1,
                None => initial.encode(),
            };
            // Invariant check on the initial state (vacuous for sane
            // specs, but uniform).
            if let Some(swmr) = &cfg.swmr {
                if let Some(detail) = swmr.check(&initial, spec) {
                    return Ok(CheckpointedRun::Finished(Verdict::InvariantViolation {
                        trace: Trace {
                            steps: Vec::new(),
                            last: initial,
                        },
                        detail,
                        stats: ExploreStats::bounded(1, 0, 0, 0),
                    }));
                }
            }
            let (init_id, _) = match store.keys.intern(&init_key) {
                Ok(v) => v,
                // A single state cannot overflow the arena; fail soft.
                Err(why) => {
                    return Err(CheckpointError::Corrupt {
                        offset: 0,
                        detail: format!("intern arena rejected the initial state: {why}"),
                    });
                }
            };
            store.push_link(init_id, 0, 0);
            frontier = VecDeque::from([init_id]);
            level = 0;
            claims = 0;
        }
    }

    let mut meter = budget.start_from(claims);
    // Per-level wall clock for the states/sec histograms; only read
    // while metrics are on so the disabled path never touches a clock.
    let mut level_clock = vnet_obs::metrics_enabled().then(std::time::Instant::now);
    // Spill counters already pushed to the metrics registry, so level
    // boundaries emit deltas of the monotonic totals.
    let mut spill_seen = SpillStats::default();
    let mut complete = true;
    let mut truncated: Option<DegradeReason> = None;
    let mut since_flush = 0usize;
    let mut accounted = 0u64;
    // Run-lifetime scratch: successor state, key encoding, label text.
    let mut expand_scratch = Scratch::new(spec, cfg);
    let mut key_buf: Vec<u8> = Vec::with_capacity(128);
    let mut label_buf = String::new();

    // Charge the starting footprint exactly. For a fresh run that is
    // the initial state; for a resumed run the rebuilt store — the same
    // capacity-based figure a fresh run reaching this point would
    // carry, so fresh and resumed runs meter identically.
    {
        let now = footprint(&store, &frontier, &VecDeque::new());
        if !account(&mut meter, &mut accounted, now) {
            complete = false;
            truncated = meter.exhaustion().cloned();
        }
    }

    'bfs: while !frontier.is_empty() && truncated.is_none() {
        // Level-boundary housekeeping: cooperative interrupt, then the
        // periodic / deadline-imminent flush.
        if let Some(pol) = policy {
            if pol.stop_file.as_ref().is_some_and(|p| p.exists()) {
                flush(spec, cfg, &mut store, &frontier, level, claims, &pol.path)?;
                let states = store.len();
                return Ok(CheckpointedRun::Interrupted {
                    checkpoint: pol.path.clone(),
                    states,
                    level,
                });
            }
            if since_flush > pol.every_states || meter.deadline_imminent(pol.deadline_window) {
                flush(spec, cfg, &mut store, &frontier, level, claims, &pol.path)?;
                since_flush = 0;
            }
        }
        if let Some(max) = cfg.max_depth {
            if level >= max {
                complete = false;
                truncated = Some(DegradeReason::Bound {
                    what: format!("depth limit of {max} reached"),
                });
                break;
            }
        }
        let mut next_frontier: VecDeque<StateId> = VecDeque::new();
        while let Some(id) = frontier.pop_front() {
            // Cancellation (drain, client gone, admission deadline) must
            // not wait for the level to finish — a late level can take
            // minutes. Stop at the next state boundary and flush a
            // mid-level checkpoint: the unexpanded remainder plus the
            // states already promoted to the next level. Resume counts
            // the promoted states' depth from `level`, so level stats
            // after a cancelled resume are approximate; the verdict and
            // traces are not affected (parents record exact depths).
            // Budget truncations (node/deadline/memory) keep the
            // level-end snapshot so kill-resume equivalence stays exact.
            if matches!(&truncated, Some(DegradeReason::Cancelled { .. })) {
                frontier.push_front(id);
                frontier.append(&mut next_frontier);
                break 'bfs;
            }
            let gs = if store.keys.get_into(id, &mut key_buf) {
                GlobalState::decode(&key_buf, cfg)
            } else {
                None
            };
            let Some(gs) = gs else {
                // Unreachable for states we interned ourselves; treat
                // as corruption (or a vanished spill segment), keep the
                // run resumable, never panic.
                complete = false;
                truncated = Some(DegradeReason::Bound {
                    what: "interned state failed to decode".into(),
                });
                frontier.push_front(id);
                frontier.append(&mut next_frontier);
                break 'bfs;
            };
            // Early stops requested from inside the expansion callback
            // (which cannot `break 'bfs` or `return` across the closure
            // boundary itself).
            enum Stop {
                /// Arena exhaustion — of address space or of the
                /// allocator itself: degrade + requeue.
                Overflow(InternError),
                /// SWMR violated by a fresh successor.
                Invariant {
                    sid: StateId,
                    state: GlobalState,
                    detail: String,
                },
                /// Budget/bound trip on a policy-less run.
                Budget,
            }
            let mut stop: Option<Stop> = None;
            let outcome = expand(spec, cfg, &gs, &mut expand_scratch, |sstate, label| {
                // Symmetry mode interns the canonical *key* only — no
                // permuted state is materialized on the hot path.
                match canon.as_mut() {
                    Some(c) => c.canonical_key_into(sstate, &mut key_buf),
                    None => sstate.encode_into(&mut key_buf),
                }
                let (sid, inserted) = match store.keys.intern(&key_buf) {
                    Ok(v) => v,
                    Err(why) => {
                        // Out of arena address space, or the allocator
                        // refused to grow it. Degrade like any other
                        // resource exhaustion.
                        stop = Some(Stop::Overflow(why));
                        return false;
                    }
                };
                if !inserted {
                    return true;
                }
                label.render_into(spec, &mut label_buf);
                let lid = store.labels.intern(&label_buf);
                store.push_link(id, lid, (level + 1) as u32);
                if let Some(swmr) = &cfg.swmr {
                    // SWMR is permutation-invariant, so the concrete
                    // successor is checked directly; the recorded
                    // witness is the canonical representative (what
                    // the interned key decodes to).
                    if let Some(detail) = swmr.check(sstate, spec) {
                        let state = if canon.is_some() {
                            GlobalState::decode(&key_buf, cfg)
                                .unwrap_or_else(|| sstate.clone())
                        } else {
                            sstate.clone()
                        };
                        stop = Some(Stop::Invariant { sid, state, detail });
                        return false;
                    }
                }
                claims += 1;
                since_flush += 1;
                next_frontier.push_back(sid);
                if truncated.is_none() {
                    let mut now = footprint(&store, &frontier, &next_frontier);
                    // Spill *before* the meter sees the new figure: the
                    // budget's memory exhaustion latches, so cold bytes
                    // must leave RAM first. A refused or failed spill
                    // falls through to honest accounting.
                    if matches!(store.keys.maybe_spill(now), Ok(true)) {
                        now = footprint(&store, &frontier, &next_frontier);
                    }
                    if !account(&mut meter, &mut accounted, now) {
                        complete = false;
                        truncated = meter.exhaustion().cloned();
                        if policy.is_none() {
                            stop = Some(Stop::Budget);
                            return false;
                        }
                    }
                }
                if truncated.is_none() && !meter.tick() {
                    complete = false;
                    truncated = meter.exhaustion().cloned();
                    if policy.is_none() {
                        stop = Some(Stop::Budget);
                        return false;
                    }
                }
                if truncated.is_none() && store.len() >= cfg.max_states {
                    complete = false;
                    truncated = Some(DegradeReason::Bound {
                        what: format!("state limit of {} reached", cfg.max_states),
                    });
                    if policy.is_none() {
                        stop = Some(Stop::Budget);
                        return false;
                    }
                }
                true
            });
            match outcome {
                ExpandOutcome::Bug { rule, detail } => {
                    let mut trace = rebuild_trace(spec, cfg, &mut store, id, gs);
                    // The recorded rule/detail name canonical indices
                    // under symmetry; re-derive them from the concrete
                    // terminal the de-canonicalized trace reaches.
                    let (rule, detail) = if cfg.symmetry {
                        crate::trace::concrete_bug(spec, cfg, &trace.last)
                            .unwrap_or((rule, detail))
                    } else {
                        (rule, detail)
                    };
                    trace.steps.push(rule);
                    let stats = ExploreStats::bounded(
                        store.len(),
                        level,
                        meter.peak_bytes(),
                        store.keys.spill_stats().spilled_bytes,
                    );
                    return Ok(CheckpointedRun::Finished(Verdict::ModelError {
                        trace,
                        detail,
                        stats,
                    }));
                }
                ExpandOutcome::Done(0) => {
                    if !gs.is_quiescent(spec) {
                        let stats = ExploreStats::bounded(
                            store.len(),
                            level,
                            meter.peak_bytes(),
                            store.keys.spill_stats().spilled_bytes,
                        );
                        let trace = rebuild_trace(spec, cfg, &mut store, id, gs);
                        return Ok(CheckpointedRun::Finished(Verdict::Deadlock {
                            depth: level,
                            trace,
                            stats,
                        }));
                    }
                }
                ExpandOutcome::Done(_) => {}
                ExpandOutcome::Stopped => match stop {
                    Some(Stop::Overflow(why)) => {
                        complete = false;
                        truncated = Some(match why {
                            InternError::AllocFailed => DegradeReason::MemoryPressure {
                                what: "state intern arena".into(),
                            },
                            InternError::AddressSpace => DegradeReason::Bound {
                                what: "intern arena address space exhausted".into(),
                            },
                        });
                        frontier.push_front(id);
                        frontier.append(&mut next_frontier);
                        break 'bfs;
                    }
                    Some(Stop::Invariant { sid, state, detail }) => {
                        let stats = ExploreStats::bounded(
                            store.len(),
                            level,
                            meter.peak_bytes(),
                            store.keys.spill_stats().spilled_bytes,
                        );
                        let trace = rebuild_trace(spec, cfg, &mut store, sid, state);
                        // Keep the violation text consistent with the
                        // concrete terminal the trace replays to.
                        let detail = if cfg.symmetry {
                            cfg.swmr
                                .as_ref()
                                .and_then(|s| s.check(&trace.last, spec))
                                .unwrap_or(detail)
                        } else {
                            detail
                        };
                        return Ok(CheckpointedRun::Finished(Verdict::InvariantViolation {
                            trace,
                            detail,
                            stats,
                        }));
                    }
                    // Budget trip without a policy stops at the state
                    // boundary, exactly like the historical explorer.
                    Some(Stop::Budget) | None => break 'bfs,
                },
            }
        }
        level += 1;
        on_level(level, store.len());
        if let Some(clock) = level_clock.as_mut() {
            vnet_obs::histogram("explore.level_wall_us", vnet_obs::DURATION_US_BOUNDS)
                .record(clock.elapsed().as_micros().min(u64::MAX as u128) as u64);
            vnet_obs::histogram("explore.level_states", vnet_obs::SMALL_COUNT_BOUNDS)
                .record(next_frontier.len() as u64);
            vnet_obs::gauge("explore.intern_load_pct").set(store.keys.load_factor_pct() as i64);
            vnet_obs::gauge("explore.peak_bytes").set(meter.peak_bytes() as i64);
            emit_spill_metrics(store.keys.spill_stats(), &mut spill_seen);
            *clock = std::time::Instant::now();
        }
        frontier = next_frontier;
        // The old frontier was dropped and the new one took its place;
        // re-sync the exact accounting (peak tracking is unaffected).
        let mut now = footprint(&store, &frontier, &VecDeque::new());
        if matches!(store.keys.maybe_spill(now), Ok(true)) {
            now = footprint(&store, &frontier, &VecDeque::new());
        }
        let _ = account(&mut meter, &mut accounted, now);
        if truncated.is_some() {
            // Bounded run, level finished: snapshot then stop.
            break;
        }
    }

    // A truncated run is resumable — flush a final checkpoint so the
    // remaining work survives. A complete verdict needs no snapshot.
    if let Some(pol) = policy {
        if truncated.is_some() {
            flush(spec, cfg, &mut store, &frontier, level, claims, &pol.path)?;
        }
    }

    if level_clock.is_some() {
        emit_spill_metrics(store.keys.spill_stats(), &mut spill_seen);
    }
    Ok(CheckpointedRun::Finished(Verdict::NoDeadlock(ExploreStats {
        states: store.len(),
        levels: level,
        complete,
        provenance: match truncated {
            None => Provenance::Exact,
            Some(reason) => Provenance::Degraded { reason },
        },
        peak_bytes: meter.peak_bytes(),
        spill_bytes: store.keys.spill_stats().spilled_bytes,
    })))
}

/// Pushes the delta between the arena's monotonic spill totals and the
/// last-emitted snapshot into the metrics registry. No-op until the
/// first spill so unspilled runs register no spill series at all.
fn emit_spill_metrics(now: SpillStats, seen: &mut SpillStats) {
    if now.spills == 0 {
        return;
    }
    vnet_obs::counter("explore.spill_bytes").add(now.spilled_bytes.saturating_sub(seen.spilled_bytes));
    vnet_obs::counter("explore.spill_reads_total").add(now.reads.saturating_sub(seen.reads));
    vnet_obs::gauge("explore.compress_ratio").set(now.compress_ratio_pct() as i64);
    *seen = now;
}

/// Walks the parent links from `id` back to the initial state. The
/// visited bitset guards against parent cycles — impossible for links
/// built by this explorer, but a checkpoint that passed checksum
/// validation with a crafted payload must terminate too, not spin.
///
/// Under symmetry reduction the stored labels reference *canonical*
/// (permuted) indices and are not a concrete execution; the trace is
/// instead de-canonicalized from the chain of canonical state keys, so
/// the returned steps replay from the concrete initial state to the
/// returned terminal (see [`crate::trace::decanonicalize_chain`]).
fn rebuild_trace(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    store: &mut Store,
    id: StateId,
    last: GlobalState,
) -> Trace {
    let mut ids = Vec::new();
    let mut seen = BitSet::with_capacity(store.len());
    let mut cur = id;
    while (cur as usize) < store.len() && seen.insert(cur as usize) {
        ids.push(cur);
        if store.labels.get(store.label_ids[cur as usize]).is_empty() {
            break; // the root carries the empty label
        }
        cur = store.parents[cur as usize];
    }
    ids.reverse();
    if cfg.symmetry {
        let mut chain = Vec::with_capacity(ids.len());
        let mut buf = Vec::with_capacity(160);
        for &sid in &ids {
            if !store.keys.get_into(sid, &mut buf) {
                return crate::trace::decanonicalize_failed(
                    &format!("interned state {sid} unreadable"),
                    last,
                );
            }
            chain.push(buf.clone());
        }
        return match crate::trace::decanonicalize_chain(spec, cfg, &chain) {
            Ok(t) => t,
            Err(why) => crate::trace::decanonicalize_failed(&why, last),
        };
    }
    let steps = ids
        .iter()
        .map(|&sid| store.labels.get(store.label_ids[sid as usize]).to_string())
        .filter(|l| !l.is_empty())
        .collect();
    Trace { steps, last }
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IcnOrder, InjectionBudget, McConfig, VnMap};
    use vnet_protocol::protocols;

    #[test]
    fn figure3_deadlock_found_in_textbook_msi() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let v = explore(&spec, &cfg);
        match &v {
            Verdict::Deadlock { depth, trace, .. } => {
                assert!(*depth > 4, "deadlock depth {depth} suspiciously small");
                assert!(!trace.is_empty());
            }
            other => panic!("expected deadlock, got {}", other.summary()),
        }
    }

    #[test]
    fn figure3_deadlock_survives_unique_vns() {
        // Class 2: even one VN per message name deadlocks.
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec)
            .with_vns(VnMap::one_per_message(spec.messages().len()));
        assert!(explore(&spec, &cfg).is_deadlock());
    }

    #[test]
    fn nonblocking_msi_with_two_vns_is_clean_on_figure3() {
        let spec = protocols::msi_nonblocking_cache();
        let outcome = vnet_core::minimize_vns(&spec);
        let vns = VnMap::from_assignment(
            outcome.assignment().expect("class 3"),
            spec.messages().len(),
        );
        let cfg = McConfig::figure3(&spec).with_vns(vns);
        let v = explore(&spec, &cfg);
        assert!(!v.is_deadlock(), "{}", v.summary());
        if let Verdict::NoDeadlock(stats) = &v {
            assert!(stats.complete);
        }
    }

    #[test]
    fn single_cache_single_addr_msi_completes_cleanly() {
        let spec = protocols::msi_blocking_cache();
        let mut cfg = McConfig::general(&spec);
        cfg.n_caches = 1;
        cfg.n_addrs = 1;
        cfg.n_dirs = 1;
        cfg.budget = InjectionBudget::PerCache(2);
        let v = explore(&spec, &cfg);
        match v {
            Verdict::NoDeadlock(stats) => assert!(stats.complete),
            other => panic!("{}", other.summary()),
        }
    }

    #[test]
    fn level_callback_fires() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let mut levels = 0;
        let _ = explore_with(&spec, &cfg, |_, _| levels += 1);
        assert!(levels > 0);
    }

    #[test]
    fn depth_bound_reports_incomplete() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec).with_limits(usize::MAX, Some(2));
        match explore(&spec, &cfg) {
            Verdict::NoDeadlock(stats) => {
                assert!(!stats.complete);
                assert!(stats.levels <= 2);
            }
            other => panic!("{}", other.summary()),
        }
    }

    #[test]
    fn swmr_holds_on_the_directed_scenario() {
        let spec = protocols::msi_nonblocking_cache();
        let outcome = vnet_core::minimize_vns(&spec);
        let vns = VnMap::from_assignment(outcome.assignment().unwrap(), spec.messages().len());
        let cfg = McConfig::figure3(&spec)
            .with_vns(vns)
            .with_swmr(crate::invariant::Swmr::by_convention(&spec));
        let v = explore(&spec, &cfg);
        assert!(matches!(v, Verdict::NoDeadlock(_)), "{}", v.summary());
    }

    #[test]
    fn swmr_catches_a_broken_protocol() {
        // A directory that grants M to every requestor without
        // invalidating anyone: two stores → two writers.
        use vnet_protocol::{acts, CoreOp, Guard, MsgType, ProtocolBuilder, Target};
        let mut b = ProtocolBuilder::new("broken-grants");
        b.msg("GetM", MsgType::Request).msg("Data", MsgType::DataResponse);
        b.cache_stable(&["I", "M"]).cache_transient(&["IM"]);
        b.dir_stable(&["I"]);
        b.cache_on_core("I", CoreOp::Store, acts().send("GetM", Target::Dir).goto("IM"));
        b.cache_on_msg_if("IM", "Data", Guard::AckZero, acts().goto("M"));
        b.dir_on_msg("I", "GetM", acts().send_data("Data", Target::Req));
        let spec = b.build();
        spec.validate().unwrap();

        let mut cfg = McConfig::general(&spec)
            .with_budget(InjectionBudget::PerCache(1))
            .with_swmr(crate::invariant::Swmr::by_convention(&spec));
        cfg.n_caches = 2;
        cfg.n_addrs = 1;
        cfg.n_dirs = 1;
        let v = explore(&spec, &cfg);
        match v {
            Verdict::InvariantViolation { detail, trace, .. } => {
                assert!(detail.contains("SWMR"));
                assert!(!trace.is_empty());
            }
            other => panic!("expected SWMR violation, got {}", other.summary()),
        }
    }

    #[test]
    fn symmetry_reduces_states_and_preserves_the_verdict() {
        let spec = protocols::msi_blocking_cache();
        let mut base = McConfig::general(&spec).with_budget(InjectionBudget::PerCache(1));
        base.n_caches = 3;
        base.n_addrs = 1;
        base.n_dirs = 1;
        let plain = explore(&spec, &base);
        let sym = base.clone().with_symmetry().expect("symmetric config");
        let reduced = explore(&spec, &sym);
        let (p, r) = (plain.stats(), reduced.stats());
        assert!(p.complete && r.complete);
        assert!(
            r.states * 2 < p.states,
            "symmetry should at least halve the space: {} vs {}",
            r.states,
            p.states
        );
        assert_eq!(plain.is_deadlock(), reduced.is_deadlock());
        // Symmetry-mode witnesses must still be *real* executions: the
        // de-canonicalized trace replays to its recorded terminal.
        if let Verdict::Deadlock { trace, .. } = &reduced {
            let end = trace.replay(&spec, &sym).expect("witness must replay");
            assert_eq!(end, trace.last, "replay must land on the recorded witness");
        }
    }

    #[test]
    fn symmetry_with_an_explicit_script_fails_closed() {
        let spec = protocols::msi_blocking_cache();
        let mut cfg = McConfig::figure3(&spec);
        cfg.symmetry = true; // bypasses with_symmetry's validation
        let budget = vnet_graph::Budget::unlimited();
        match run_serial(&spec, &cfg, &budget, None, None, |_, _| {}) {
            Err(CheckpointError::Config { detail }) => {
                assert!(detail.contains("per-cache budget"), "{detail}");
            }
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_returns_a_degraded_partial_verdict() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        // Five states is far too few to reach the Figure-3 deadlock; the
        // explorer must stop cleanly and say so.
        let budget = vnet_graph::Budget::unlimited().with_node_limit(5);
        match explore_budgeted(&spec, &cfg, &budget) {
            Verdict::NoDeadlock(stats) => {
                assert!(!stats.complete);
                assert!(!stats.provenance.is_exact());
                assert!(stats.provenance.annotation().contains("node limit"));
                assert!(stats.states <= 7, "stopped late: {} states", stats.states);
            }
            other => panic!("expected a partial verdict, got {}", other.summary()),
        }
    }

    #[test]
    fn unlimited_budget_matches_the_plain_explorer() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let plain = explore(&spec, &cfg);
        let budgeted = explore_budgeted(&spec, &cfg, &vnet_graph::Budget::unlimited());
        assert_eq!(plain.stats(), budgeted.stats());
        assert_eq!(plain.is_deadlock(), budgeted.is_deadlock());
        assert!(plain.stats().provenance.is_exact());
    }

    #[test]
    fn counterexamples_stay_exact_even_under_a_budget() {
        // Enough budget to reach the deadlock, far too little for the
        // full space: the trace is still a definitive (exact) verdict.
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let full = explore(&spec, &cfg);
        let Verdict::Deadlock { stats, .. } = &full else {
            panic!("figure3 must deadlock");
        };
        let budget =
            vnet_graph::Budget::unlimited().with_node_limit(stats.states as u64 + 64);
        let v = explore_budgeted(&spec, &cfg, &budget);
        assert!(v.is_deadlock(), "{}", v.summary());
        assert!(v.stats().provenance.is_exact());
    }

    #[test]
    fn p2p_ordering_also_finds_the_class2_deadlock() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec).with_order(IcnOrder::PointToPoint { salt: 1 });
        assert!(explore(&spec, &cfg).is_deadlock());
    }

    #[test]
    fn peak_bytes_is_reported_and_plausible() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let v = explore(&spec, &cfg);
        let stats = v.stats();
        // The visited arena alone holds ~62 bytes of key per state, so
        // the exact peak must be at least that and at most a generous
        // constant factor above it.
        let floor = (stats.states * 32) as u64;
        let ceiling = (stats.states as u64) * 4096 + (1 << 20);
        assert!(
            stats.peak_bytes > floor && stats.peak_bytes < ceiling,
            "peak {} outside [{floor}, {ceiling}] for {} states",
            stats.peak_bytes,
            stats.states
        );
    }
}
