//! The `.vnp` bad-spec corpus: every file under `tests/bad_specs/` is
//! malformed on purpose and must be rejected by [`dsl::parse`] with the
//! positioned error its `# expect:` header names — never accepted, never
//! a panic. CI runs this as the fail-closed parser fuzz gate.
//!
//! Header convention (line 1 of each corpus file):
//!
//! ```text
//! # expect: <line>: <message substring>
//! ```

use std::path::PathBuf;
use vnet::protocol::dsl;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("bad_specs")
}

struct Expectation {
    line: usize,
    needle: String,
}

fn expectation(text: &str) -> Result<Expectation, String> {
    let header = text.lines().next().ok_or("empty corpus file")?;
    let spec = header
        .strip_prefix("# expect: ")
        .ok_or("first line must be `# expect: <line>: <substring>`")?;
    let (line, needle) = spec
        .split_once(": ")
        .ok_or("expectation must be `<line>: <substring>`")?;
    Ok(Expectation {
        line: line
            .trim()
            .parse()
            .map_err(|e| format!("bad expected line number {line:?}: {e}"))?,
        needle: needle.trim().to_string(),
    })
}

/// Every corpus file must fail to parse, at the expected line, with the
/// expected message. A corpus file that *parses* is itself a test bug —
/// the gate fails closed.
#[test]
fn every_bad_spec_is_rejected_with_a_positioned_error() -> Result<(), String> {
    let dir = corpus_dir();
    let mut checked = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "vnp"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{name}: read failed: {e}"))?;
        let want = expectation(&text).map_err(|e| format!("{name}: {e}"))?;
        let got = match dsl::parse(&text) {
            Err(e) => e,
            Ok(spec) => {
                return Err(format!(
                    "{name}: parsed successfully as protocol `{}` — corpus must fail closed",
                    spec.name()
                ))
            }
        };
        if got.line != want.line {
            return Err(format!(
                "{name}: error at line {}, expected line {} ({got})",
                got.line, want.line
            ));
        }
        if !got.message.contains(&want.needle) {
            return Err(format!(
                "{name}: error `{}` does not mention `{}`",
                got.message, want.needle
            ));
        }
        checked += 1;
    }
    // Guard against the corpus silently vanishing (e.g. a bad glob):
    // there is one file per distinct parser error production.
    if checked < 20 {
        return Err(format!("only {checked} corpus files found — corpus missing?"));
    }
    Ok(())
}

/// The parse error type renders its position; downstream tools print it
/// verbatim to users.
#[test]
fn parse_errors_display_the_line_number() {
    let Err(e) = dsl::parse("protocol") else {
        unreachable!("bare `protocol` must not parse");
    };
    assert_eq!(e.line, 1);
    assert!(e.to_string().starts_with("line 1:"));
}
