//! The global model-checking state and its canonical encoding.

use crate::config::McConfig;
use std::collections::VecDeque;
use vnet_protocol::{ProtocolSpec, StateId};

/// An endpoint of the system: a cache or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// Cache `i`.
    Cache(u8),
    /// Directory `i`.
    Dir(u8),
}

impl Node {
    /// Flat endpoint index (caches first, then directories).
    pub fn index(self, n_caches: usize) -> usize {
        match self {
            Node::Cache(i) => i as usize,
            Node::Dir(i) => n_caches + i as usize,
        }
    }
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Cache(i) => write!(f, "C{}", i + 1),
            Node::Dir(i) => write!(f, "Dir{}", i + 1),
        }
    }
}

/// A message instance in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Msg {
    /// The static message name.
    pub msg: u8,
    /// The cache-block address.
    pub addr: u8,
    /// Sender.
    pub src: Node,
    /// Destination.
    pub dst: Node,
    /// The transaction's original requestor (a cache index).
    pub requestor: u8,
    /// Carried ack count.
    pub ack: i8,
}

impl Msg {
    /// Pretty form, e.g. `Fwd-GetM(X) C1→C2 req=C3 ack=1`.
    pub fn display(&self, spec: &ProtocolSpec) -> String {
        let mut s = String::new();
        self.display_into(spec, &mut s);
        s
    }

    /// [`Msg::display`] into a caller-provided buffer (appends), for
    /// label rendering without a fresh allocation per message.
    pub fn display_into(&self, spec: &ProtocolSpec, out: &mut String) {
        use std::fmt::Write;
        let addr = (b'X' + self.addr) as char;
        let _ = write!(
            out,
            "{}({}) {}\u{2192}{} req=C{}",
            spec.message_name(vnet_protocol::MsgId(self.msg as usize)),
            addr,
            self.src,
            self.dst,
            self.requestor + 1
        );
        if self.ack != 0 {
            let _ = write!(out, " ack={}", self.ack);
        }
    }
}

/// Per-(cache, address) protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CacheLine {
    /// FSM state.
    pub state: u8,
    /// Outstanding invalidation-ack balance (may go negative while acks
    /// race the data).
    pub needed_acks: i8,
    /// Deferred-reader set (bitmask over cache ids).
    pub readers: u8,
    /// Deferred writer: `(cache id, stored ack count)`.
    pub writer: Option<(u8, i8)>,
}

/// Per-address directory state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DirLine {
    /// FSM state.
    pub state: u8,
    /// Recorded owner cache.
    pub owner: Option<u8>,
    /// Sharer set (bitmask over cache ids).
    pub sharers: u8,
    /// Outstanding snoop-ack count.
    pub pending: i8,
}

/// The complete system state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalState {
    /// `caches[c][a]` — cache `c`'s line for address `a`.
    pub caches: Vec<Vec<CacheLine>>,
    /// `dirs[a]` — the home directory line for address `a`.
    pub dirs: Vec<DirLine>,
    /// Remaining per-cache budget (uniform mode) — empty in explicit mode.
    pub budgets: Vec<u8>,
    /// Bitmask of already-used explicit injections (explicit mode).
    pub used_injections: u32,
    /// `global_bufs[vn * 2 + b]` — the two global FIFO buffers per VN.
    pub global_bufs: Vec<VecDeque<Msg>>,
    /// `endpoint_fifos[endpoint * n_vns + vn]` — per-endpoint input FIFOs.
    pub endpoint_fifos: Vec<VecDeque<Msg>>,
}

impl GlobalState {
    /// The initial state: every controller in its initial state, all
    /// buffers empty, full budgets.
    pub fn initial(spec: &ProtocolSpec, cfg: &McConfig) -> Self {
        let cache_init = spec.cache().initial().index() as u8;
        let dir_init = spec.directory().initial().index() as u8;
        let n_vns = cfg.vns.n_vns();
        GlobalState {
            caches: vec![
                vec![
                    CacheLine {
                        state: cache_init,
                        ..CacheLine::default()
                    };
                    cfg.n_addrs
                ];
                cfg.n_caches
            ],
            dirs: vec![
                DirLine {
                    state: dir_init,
                    ..DirLine::default()
                };
                cfg.n_addrs
            ],
            budgets: match &cfg.budget {
                crate::config::InjectionBudget::PerCache(b) => vec![*b; cfg.n_caches],
                crate::config::InjectionBudget::Explicit(_) => Vec::new(),
            },
            used_injections: 0,
            global_bufs: vec![VecDeque::new(); n_vns * 2],
            endpoint_fifos: vec![VecDeque::new(); cfg.n_endpoints() * n_vns],
        }
    }

    /// `true` if nothing is in flight and every controller sits in a
    /// stable state — the good kind of "nothing enabled".
    pub fn is_quiescent(&self, spec: &ProtocolSpec) -> bool {
        let all_empty = self.global_bufs.iter().all(VecDeque::is_empty)
            && self.endpoint_fifos.iter().all(VecDeque::is_empty);
        if !all_empty {
            return false;
        }
        let cache_stable = self.caches.iter().flatten().all(|l| {
            !spec.cache().state(StateId(l.state as usize)).is_transient()
        });
        let dir_stable = self
            .dirs
            .iter()
            .all(|l| !spec.directory().state(StateId(l.state as usize)).is_transient());
        cache_stable && dir_stable
    }

    /// Deep-copies `other` into `self`, reusing every existing
    /// allocation. All container shapes are fixed by the `McConfig`, so
    /// after the first copy into a scratch state the successor hot path
    /// performs no allocator traffic for state cloning at all.
    pub fn copy_from(&mut self, other: &GlobalState) {
        fn copy_fifos(dst: &mut Vec<VecDeque<Msg>>, src: &[VecDeque<Msg>]) {
            dst.truncate(src.len());
            while dst.len() < src.len() {
                dst.push(VecDeque::new());
            }
            for (d, s) in dst.iter_mut().zip(src) {
                d.clear();
                d.extend(s.iter().copied());
            }
        }
        self.caches.truncate(other.caches.len());
        while self.caches.len() < other.caches.len() {
            self.caches.push(Vec::new());
        }
        for (d, s) in self.caches.iter_mut().zip(&other.caches) {
            d.clone_from(s);
        }
        self.dirs.clone_from(&other.dirs);
        self.budgets.clone_from(&other.budgets);
        self.used_injections = other.used_injections;
        copy_fifos(&mut self.global_bufs, &other.global_bufs);
        copy_fifos(&mut self.endpoint_fifos, &other.endpoint_fifos);
    }

    /// Canonical byte encoding for hashing/deduplication.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        self.encode_into(&mut out);
        out
    }

    /// [`GlobalState::encode`] into a caller-owned buffer (cleared
    /// first). The explorers reuse one scratch buffer across millions
    /// of successor checks, so the dedup path allocates nothing.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        for row in &self.caches {
            for l in row {
                out.push(l.state);
                out.push(l.needed_acks as u8);
                out.push(l.readers);
                match l.writer {
                    None => out.extend([0xff, 0]),
                    Some((w, a)) => out.extend([w, a as u8]),
                }
            }
        }
        for d in &self.dirs {
            out.push(d.state);
            out.push(d.owner.map_or(0xff, |o| o));
            out.push(d.sharers);
            out.push(d.pending as u8);
        }
        out.extend(&self.budgets);
        out.extend(self.used_injections.to_le_bytes());
        let enc_msg = |out: &mut Vec<u8>, m: &Msg| {
            debug_assert!(m.msg < 0xfd, "message ids must stay below the separators");
            out.push(m.msg);
            out.push(m.addr);
            out.push(match m.src {
                Node::Cache(i) => i,
                Node::Dir(i) => 0x80 | i,
            });
            out.push(match m.dst {
                Node::Cache(i) => i,
                Node::Dir(i) => 0x80 | i,
            });
            out.push(m.requestor);
            out.push(m.ack as u8);
        };
        for buf in &self.global_bufs {
            out.push(0xfe); // buffer separator
            for m in buf {
                enc_msg(out, m);
            }
        }
        for fifo in &self.endpoint_fifos {
            out.push(0xfd);
            for m in fifo {
                enc_msg(out, m);
            }
        }
    }

    /// Inverse of [`GlobalState::encode`]: reconstructs the state from
    /// its canonical bytes, given the config that fixes the shapes
    /// (cache/directory counts, budget mode, VN count). The encoding is
    /// self-delimiting under a fixed config — message ids stay below
    /// the `0xfe`/`0xfd` buffer separators and messages are exactly 6
    /// bytes, so a separator at a message boundary is unambiguous.
    /// Returns `None` on any structural mismatch instead of panicking;
    /// the explorers treat that as corruption.
    pub fn decode(bytes: &[u8], cfg: &McConfig) -> Option<GlobalState> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = bytes.get(pos..pos + n)?;
            pos += n;
            Some(s)
        };
        let mut caches = Vec::with_capacity(cfg.n_caches);
        for _ in 0..cfg.n_caches {
            let mut row = Vec::with_capacity(cfg.n_addrs);
            for _ in 0..cfg.n_addrs {
                let b = take(5)?;
                row.push(CacheLine {
                    state: b[0],
                    needed_acks: b[1] as i8,
                    readers: b[2],
                    writer: match (b[3], b[4]) {
                        (0xff, 0) => None,
                        (w, a) => Some((w, a as i8)),
                    },
                });
            }
            caches.push(row);
        }
        let mut dirs = Vec::with_capacity(cfg.n_addrs);
        for _ in 0..cfg.n_addrs {
            let b = take(4)?;
            dirs.push(DirLine {
                state: b[0],
                owner: if b[1] == 0xff { None } else { Some(b[1]) },
                sharers: b[2],
                pending: b[3] as i8,
            });
        }
        let n_budgets = match &cfg.budget {
            crate::config::InjectionBudget::PerCache(_) => cfg.n_caches,
            crate::config::InjectionBudget::Explicit(_) => 0,
        };
        let budgets = take(n_budgets)?.to_vec();
        let ui = take(4)?;
        let used_injections = u32::from_le_bytes([ui[0], ui[1], ui[2], ui[3]]);

        let dec_msg = |b: &[u8]| -> Msg {
            let node = |v: u8| {
                if v & 0x80 != 0 {
                    Node::Dir(v & 0x7f)
                } else {
                    Node::Cache(v)
                }
            };
            Msg {
                msg: b[0],
                addr: b[1],
                src: node(b[2]),
                dst: node(b[3]),
                requestor: b[4],
                ack: b[5] as i8,
            }
        };
        let n_vns = cfg.vns.n_vns();
        let mut dec_buf = |sep: u8| -> Option<VecDeque<Msg>> {
            if *bytes.get(pos)? != sep {
                return None;
            }
            pos += 1;
            let mut buf = VecDeque::new();
            while pos < bytes.len() && bytes[pos] < 0xfd {
                let b = bytes.get(pos..pos + 6)?;
                buf.push_back(dec_msg(b));
                pos += 6;
            }
            Some(buf)
        };
        let mut global_bufs = Vec::with_capacity(n_vns * 2);
        for _ in 0..n_vns * 2 {
            global_bufs.push(dec_buf(0xfe)?);
        }
        let mut endpoint_fifos = Vec::with_capacity(cfg.n_endpoints() * n_vns);
        for _ in 0..cfg.n_endpoints() * n_vns {
            endpoint_fifos.push(dec_buf(0xfd)?);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(GlobalState {
            caches,
            dirs,
            budgets,
            used_injections,
            global_bufs,
            endpoint_fifos,
        })
    }

    /// Total number of in-flight messages.
    pub fn messages_in_flight(&self) -> usize {
        self.global_bufs.iter().map(VecDeque::len).sum::<usize>()
            + self.endpoint_fifos.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Multi-line human dump (used in traces).
    pub fn dump(&self, spec: &ProtocolSpec, cfg: &McConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (c, row) in self.caches.iter().enumerate() {
            let states: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(a, l)| {
                    let name = &spec.cache().state(StateId(l.state as usize)).name;
                    let addr = (b'X' + a as u8) as char;
                    let mut s = format!("{addr}:{name}");
                    if l.needed_acks != 0 {
                        s.push_str(&format!("(acks {})", l.needed_acks));
                    }
                    s
                })
                .collect();
            let _ = writeln!(out, "  C{} {}", c + 1, states.join(" "));
        }
        for (a, d) in self.dirs.iter().enumerate() {
            let name = &spec.directory().state(StateId(d.state as usize)).name;
            let addr = (b'X' + a as u8) as char;
            let owner = d.owner.map_or("-".to_string(), |o| format!("C{}", o + 1));
            let _ = writeln!(
                out,
                "  Dir-{addr} (Dir{}) {name} owner={owner} sharers={:#05b}",
                cfg.home_of(a) + 1,
                d.sharers
            );
        }
        for (i, buf) in self.global_bufs.iter().enumerate() {
            if !buf.is_empty() {
                let msgs: Vec<String> = buf.iter().map(|m| m.display(spec)).collect();
                let _ = writeln!(out, "  glob[vn{} b{}]: {}", i / 2, i % 2, msgs.join(" | "));
            }
        }
        for (i, fifo) in self.endpoint_fifos.iter().enumerate() {
            if !fifo.is_empty() {
                let n_vns = cfg.vns.n_vns();
                let ep = i / n_vns;
                let vn = i % n_vns;
                let node = if ep < cfg.n_caches {
                    format!("C{}", ep + 1)
                } else {
                    format!("Dir{}", ep - cfg.n_caches + 1)
                };
                let msgs: Vec<String> = fifo.iter().map(|m| m.display(spec)).collect();
                let _ = writeln!(out, "  in[{node} vn{vn}]: {}", msgs.join(" | "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InjectionBudget, McConfig};
    use vnet_protocol::protocols;

    #[test]
    fn initial_state_is_quiescent() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let s = GlobalState::initial(&spec, &cfg);
        assert!(s.is_quiescent(&spec));
        assert_eq!(s.messages_in_flight(), 0);
        assert_eq!(s.budgets, vec![2, 2, 2]);
    }

    #[test]
    fn explicit_budget_has_no_uniform_budgets() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let s = GlobalState::initial(&spec, &cfg);
        assert!(s.budgets.is_empty());
        assert_eq!(s.used_injections, 0);
    }

    #[test]
    fn encoding_distinguishes_states() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let s0 = GlobalState::initial(&spec, &cfg);
        let mut s1 = s0.clone();
        s1.caches[0][0].state = 5;
        assert_ne!(s0.encode(), s1.encode());
        let mut s2 = s0.clone();
        s2.global_bufs[0].push_back(Msg {
            msg: 0,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        });
        assert_ne!(s0.encode(), s2.encode());
    }

    #[test]
    fn encoding_is_stable() {
        let spec = protocols::chi();
        let cfg = McConfig::general(&spec);
        let s = GlobalState::initial(&spec, &cfg);
        assert_eq!(s.encode(), s.clone().encode());
    }

    #[test]
    fn buffer_boundaries_are_unambiguous() {
        // A message at the tail of buffer 0 must encode differently from
        // the same message at the head of buffer 1.
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let m = Msg {
            msg: 1,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        let mut a = GlobalState::initial(&spec, &cfg);
        a.global_bufs[0].push_back(m);
        let mut b = GlobalState::initial(&spec, &cfg);
        b.global_bufs[1].push_back(m);
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn decode_inverts_encode() {
        // Shapes from several protocols and both budget modes; states
        // mutated with in-flight messages in global and endpoint
        // buffers, deferred writers, and spent budgets.
        for (spec, cfg) in [
            (
                protocols::msi_blocking_cache(),
                McConfig::figure3(&protocols::msi_blocking_cache()),
            ),
            (
                protocols::msi_blocking_cache(),
                McConfig::general(&protocols::msi_blocking_cache()),
            ),
            (protocols::chi(), McConfig::general(&protocols::chi())),
        ] {
            let mut s = GlobalState::initial(&spec, &cfg);
            let round = |s: &GlobalState, cfg: &McConfig| {
                let enc = s.encode();
                let back = GlobalState::decode(&enc, cfg).expect("decode failed");
                assert_eq!(&back, s);
                assert_eq!(back.encode(), enc);
            };
            round(&s, &cfg);
            s.caches[0][0].state = 2;
            s.caches[0][0].writer = Some((1, -1));
            s.dirs[0].owner = Some(0);
            s.dirs[0].pending = -2;
            if !s.budgets.is_empty() {
                s.budgets[0] = 0;
            }
            s.used_injections = 0x01020304;
            let m = Msg {
                msg: 1,
                addr: 0,
                src: Node::Cache(1),
                dst: Node::Dir(0),
                requestor: 1,
                ack: -1,
            };
            s.global_bufs[0].push_back(m);
            s.global_bufs[0].push_back(m);
            let last = s.endpoint_fifos.len() - 1;
            s.endpoint_fifos[last].push_back(m);
            round(&s, &cfg);
        }
    }

    #[test]
    fn decode_rejects_malformed_bytes() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let enc = GlobalState::initial(&spec, &cfg).encode();
        // Truncation, trailing garbage, and a corrupted separator must
        // all come back None, never panic.
        assert!(GlobalState::decode(&enc[..enc.len() - 1], &cfg).is_none());
        let mut long = enc.clone();
        long.push(0);
        assert!(GlobalState::decode(&long, &cfg).is_none());
        let mut bad_sep = enc.clone();
        let sep_at = bad_sep.iter().position(|&b| b == 0xfe).unwrap();
        bad_sep[sep_at] = 0xfd;
        assert!(GlobalState::decode(&bad_sep, &cfg).is_none());
        assert!(GlobalState::decode(&[], &cfg).is_none());
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let s = GlobalState::initial(&spec, &cfg);
        let mut buf = vec![0xAA; 512];
        s.encode_into(&mut buf);
        assert_eq!(buf, s.encode());
    }

    #[test]
    fn node_display_and_index() {
        assert_eq!(Node::Cache(0).to_string(), "C1");
        assert_eq!(Node::Dir(1).to_string(), "Dir2");
        assert_eq!(Node::Cache(2).index(3), 2);
        assert_eq!(Node::Dir(0).index(3), 3);
    }

    #[test]
    fn budget_is_part_of_identity() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec)
            .with_budget(InjectionBudget::PerCache(1));
        let s0 = GlobalState::initial(&spec, &cfg);
        let mut s1 = s0.clone();
        s1.budgets[0] = 0;
        assert_ne!(s0.encode(), s1.encode());
    }
}
