//! Executable semantics of protocol tables: guard evaluation and action
//! application against a concrete [`GlobalState`].

use crate::config::McConfig;
use crate::state::{GlobalState, Msg, Node};
use vnet_protocol::{
    Action, Cell, ControllerKind, CoreOp, Guard, MsgId, Payload, ProtocolSpec, StateId, Target,
    Trigger,
};

/// A dynamic specification bug surfaced while applying an entry's
/// actions — a condition the static validator cannot rule out because it
/// depends on the reachable directory/cache bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A send targeted [`Target::Owner`] while the directory records no
    /// owner for the block.
    OwnerUnset {
        /// The message the entry tried to send.
        msg: MsgId,
    },
    /// A send targeted [`Target::Writer`] while no deferred writer is
    /// recorded at the cache.
    WriterUnset {
        /// The message the entry tried to send.
        msg: MsgId,
    },
}

impl ExecError {
    /// Renders the error with the protocol's message names.
    pub fn display(&self, spec: &ProtocolSpec) -> String {
        match self {
            ExecError::OwnerUnset { msg } => format!(
                "send of {} to Owner with no owner recorded",
                spec.message_name(*msg)
            ),
            ExecError::WriterUnset { msg } => format!(
                "send of {} to Writer with no writer recorded",
                spec.message_name(*msg)
            ),
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OwnerUnset { msg } => {
                write!(f, "send of message #{} to Owner with no owner recorded", msg.0)
            }
            ExecError::WriterUnset { msg } => {
                write!(f, "send of message #{} to Writer with no writer recorded", msg.0)
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of attempting to process a trigger at a controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Firing {
    /// The entry fired: the state was mutated and these messages must be
    /// placed into the ICN.
    Fired {
        /// Messages produced by the entry's send actions, in order.
        sends: Vec<Msg>,
    },
    /// A stall cell matched: the trigger stays blocked.
    Stalled,
    /// No cell matched: a protocol-specification bug.
    Undefined,
    /// The entry's actions hit a dynamic specification bug.
    Error(ExecError),
}

/// Delivers message `m` to its destination controller, firing the
/// matching table entry.
pub fn deliver(spec: &ProtocolSpec, cfg: &McConfig, gs: &mut GlobalState, m: &Msg) -> Firing {
    let kind = match m.dst {
        Node::Cache(_) => ControllerKind::Cache,
        Node::Dir(_) => ControllerKind::Directory,
    };
    let ctrl = spec.controller(kind);
    let state = current_state(gs, m.dst, m.addr);
    let msg_id = MsgId(m.msg as usize);

    // Find the (unique, validated) matching guarded cell.
    let mut matched: Option<Cell> = None;
    for (guard, cell) in ctrl.entries_for_message(StateId(state as usize), msg_id) {
        if eval_guard(*guard, gs, m) {
            matched = Some(cell.clone());
            break;
        }
    }
    match matched {
        None => Firing::Undefined,
        Some(Cell::Stall) => Firing::Stalled,
        Some(Cell::Entry(entry)) => {
            match apply_entry(spec, cfg, gs, m.dst, m.addr, Some(m), &entry) {
                Ok(sends) => Firing::Fired { sends },
                Err(e) => Firing::Error(e),
            }
        }
    }
}

/// Injects a core operation at a cache. Returns `Ok(None)` when the op
/// is not currently processable (stall or no cell) or is a pure hit with
/// no effect; otherwise fires the entry. `Err` reports a dynamic
/// specification bug hit while applying the entry.
pub fn inject(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    gs: &mut GlobalState,
    cache: u8,
    addr: u8,
    op: CoreOp,
) -> Result<Option<Vec<Msg>>, ExecError> {
    let state = gs.caches[cache as usize][addr as usize].state;
    let Some(cell) = spec.cache().cell(StateId(state as usize), Trigger::core(op)) else {
        return Ok(None);
    };
    let entry = match cell {
        Cell::Stall => return Ok(None),
        Cell::Entry(e) => e.clone(),
    };
    // Pure hits (no actions, no transition) don't change the state; the
    // explorer skips them to avoid useless self-loops.
    if entry.actions.is_empty() && entry.next.is_none() {
        return Ok(None);
    }
    apply_entry(spec, cfg, gs, Node::Cache(cache), addr, None, &entry).map(Some)
}

fn current_state(gs: &GlobalState, node: Node, addr: u8) -> u8 {
    match node {
        Node::Cache(c) => gs.caches[c as usize][addr as usize].state,
        Node::Dir(_) => gs.dirs[addr as usize].state,
    }
}

/// Evaluates a guard in the context of message `m` arriving at `m.dst`.
pub fn eval_guard(guard: Guard, gs: &GlobalState, m: &Msg) -> bool {
    let addr = m.addr as usize;
    match guard {
        Guard::Always => true,
        // Cache-side ack guards.
        Guard::AckZero | Guard::AckPositive => {
            let Node::Cache(c) = m.dst else { return false };
            let total = gs.caches[c as usize][addr].needed_acks as i32 + m.ack as i32;
            (total == 0) == (guard == Guard::AckZero)
        }
        Guard::LastAck | Guard::NotLastAck => {
            let Node::Cache(c) = m.dst else { return false };
            let last = gs.caches[c as usize][addr].needed_acks == 1;
            last == (guard == Guard::LastAck)
        }
        // Directory-side guards.
        Guard::LastSharer | Guard::NotLastSharer => {
            let others = gs.dirs[addr].sharers & !(1u8 << m.requestor);
            (others == 0) == (guard == Guard::LastSharer)
        }
        Guard::FromOwner | Guard::NotFromOwner => {
            let from_owner = match m.src {
                Node::Cache(c) => gs.dirs[addr].owner == Some(c),
                Node::Dir(_) => false,
            };
            from_owner == (guard == Guard::FromOwner)
        }
        Guard::LastSnpAck | Guard::NotLastSnpAck => {
            let last = gs.dirs[addr].pending == 1;
            last == (guard == Guard::LastSnpAck)
        }
        Guard::NoOtherSharers | Guard::HasOtherSharers => {
            let others = gs.dirs[addr].sharers & !(1u8 << m.requestor);
            (others == 0) == (guard == Guard::NoOtherSharers)
        }
        Guard::ReqIsOwner | Guard::ReqNotOwner => {
            let is_owner = gs.dirs[addr].owner == Some(m.requestor);
            is_owner == (guard == Guard::ReqIsOwner)
        }
    }
}

/// Applies an entry's actions at `node` for `addr`, triggered by
/// `trigger_msg` (or a core event when `None`). Returns the sends.
///
/// Sends carry the triggering message's requestor (or the acting cache
/// for core events); sends to deferred readers/writers carry the
/// recorded ids instead.
fn apply_entry(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    gs: &mut GlobalState,
    node: Node,
    addr: u8,
    trigger_msg: Option<&Msg>,
    entry: &vnet_protocol::Entry,
) -> Result<Vec<Msg>, ExecError> {
    let requestor = match trigger_msg {
        Some(m) => m.requestor,
        None => match node {
            Node::Cache(c) => c,
            Node::Dir(_) => unreachable!("core events only fire at caches"),
        },
    };
    let msg_ack = trigger_msg.map_or(0, |m| m.ack);
    let mut sends = Vec::new();

    for action in &entry.actions {
        match action {
            Action::Send { msg, to, payload } => {
                emit(spec, cfg, gs, node, addr, requestor, msg_ack, *msg, *to, *payload, &mut sends)?;
            }
            Action::SendToSharersExceptReq { msg } => {
                let sharers = gs.dirs[addr as usize].sharers & !(1u8 << requestor);
                for s in 0..cfg.n_caches as u8 {
                    if sharers & (1 << s) != 0 {
                        sends.push(Msg {
                            msg: msg.index() as u8,
                            addr,
                            src: node,
                            dst: Node::Cache(s),
                            requestor,
                            ack: 0,
                        });
                    }
                }
            }
            Action::SetOwnerToReq => gs.dirs[addr as usize].owner = Some(requestor),
            Action::ClearOwner => gs.dirs[addr as usize].owner = None,
            Action::AddReqToSharers => gs.dirs[addr as usize].sharers |= 1 << requestor,
            Action::AddOwnerToSharers => {
                if let Some(o) = gs.dirs[addr as usize].owner {
                    gs.dirs[addr as usize].sharers |= 1 << o;
                }
            }
            Action::RemoveReqFromSharers => {
                gs.dirs[addr as usize].sharers &= !(1u8 << requestor)
            }
            Action::ClearSharers => gs.dirs[addr as usize].sharers = 0,
            Action::CopyDataToMem => {}
            Action::RecordReader => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].readers |= 1 << requestor;
            }
            Action::RecordWriter => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].writer = Some((requestor, msg_ack));
            }
            Action::SetPendingToOtherSharers => {
                let others = gs.dirs[addr as usize].sharers & !(1u8 << requestor);
                gs.dirs[addr as usize].pending = others.count_ones() as i8;
            }
            Action::DecPending => gs.dirs[addr as usize].pending -= 1,
            Action::AddAcksFromMsg => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].needed_acks += msg_ack;
            }
            Action::DecNeededAcks => {
                let Node::Cache(c) = node else { unreachable!() };
                gs.caches[c as usize][addr as usize].needed_acks -= 1;
            }
        }
    }

    if let Some(next) = entry.next {
        match node {
            Node::Cache(c) => gs.caches[c as usize][addr as usize].state = next.index() as u8,
            Node::Dir(_) => gs.dirs[addr as usize].state = next.index() as u8,
        }
    }
    Ok(sends)
}

#[allow(clippy::too_many_arguments)]
fn emit(
    _spec: &ProtocolSpec,
    cfg: &McConfig,
    gs: &mut GlobalState,
    node: Node,
    addr: u8,
    requestor: u8,
    msg_ack: i8,
    msg: MsgId,
    to: Target,
    payload: Payload,
    sends: &mut Vec<Msg>,
) -> Result<(), ExecError> {
    let dline = &gs.dirs[addr as usize];
    let others = (dline.sharers & !(1u8 << requestor)).count_ones() as i8;
    let base_ack = |stored: Option<(u8, i8)>| match payload {
        Payload::None | Payload::Data => 0,
        Payload::DataAckFromSharers | Payload::AckFromSharers => others,
        Payload::DataAckFromMsg => msg_ack,
        Payload::DataAckStored => stored.map_or(0, |(_, a)| a),
    };
    match to {
        Target::Req => sends.push(Msg {
            msg: msg.index() as u8,
            addr,
            src: node,
            dst: Node::Cache(requestor),
            requestor,
            ack: base_ack(None),
        }),
        Target::Dir => sends.push(Msg {
            msg: msg.index() as u8,
            addr,
            src: node,
            dst: Node::Dir(cfg.home_of(addr as usize) as u8),
            requestor,
            ack: base_ack(None),
        }),
        Target::Owner => {
            // A send to a missing owner is a specification bug, reported
            // as a structured error so the explorer can surface it.
            let owner = dline.owner.ok_or(ExecError::OwnerUnset { msg })?;
            sends.push(Msg {
                msg: msg.index() as u8,
                addr,
                src: node,
                dst: Node::Cache(owner),
                requestor,
                ack: base_ack(None),
            });
        }
        Target::Readers => {
            let Node::Cache(c) = node else { unreachable!() };
            let line = &mut gs.caches[c as usize][addr as usize];
            let readers = line.readers;
            line.readers = 0;
            for r in 0..cfg.n_caches as u8 {
                if readers & (1 << r) != 0 {
                    sends.push(Msg {
                        msg: msg.index() as u8,
                        addr,
                        src: node,
                        dst: Node::Cache(r),
                        requestor: r,
                        ack: 0,
                    });
                }
            }
        }
        Target::Writer => {
            let Node::Cache(c) = node else { unreachable!() };
            let line = &mut gs.caches[c as usize][addr as usize];
            let writer = line.writer.take();
            let (w, stored_ack) = writer.ok_or(ExecError::WriterUnset { msg })?;
            let ack = match payload {
                Payload::DataAckStored => stored_ack,
                _ => base_ack(Some((w, stored_ack))),
            };
            sends.push(Msg {
                msg: msg.index() as u8,
                addr,
                src: node,
                dst: Node::Cache(w),
                requestor: w,
                ack,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    // Tests return `Result` and surface failures as `Err` values instead
    // of unwrap/panic — the crate-wide panic-free discipline extends to
    // its own test suite.
    type TestResult = Result<(), String>;

    fn setup() -> (ProtocolSpec, McConfig, GlobalState) {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let gs = GlobalState::initial(&spec, &cfg);
        (spec, cfg, gs)
    }

    fn mid(spec: &ProtocolSpec, name: &str) -> Result<MsgId, String> {
        spec.message_by_name(name)
            .ok_or_else(|| format!("no message named {name}"))
    }

    fn cache_state(spec: &ProtocolSpec, name: &str) -> Result<u8, String> {
        Ok(spec
            .cache()
            .state_by_name(name)
            .ok_or_else(|| format!("no cache state named {name}"))?
            .index() as u8)
    }

    fn dir_state(spec: &ProtocolSpec, name: &str) -> Result<u8, String> {
        Ok(spec
            .directory()
            .state_by_name(name)
            .ok_or_else(|| format!("no directory state named {name}"))?
            .index() as u8)
    }

    fn fired(f: Firing) -> Result<Vec<Msg>, String> {
        match f {
            Firing::Fired { sends } => Ok(sends),
            other => Err(format!("expected the entry to fire, got {other:?}")),
        }
    }

    #[test]
    fn store_in_i_sends_getm_and_transitions() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        let sends = inject(&spec, &cfg, &mut gs, 0, 0, CoreOp::Store)
            .map_err(|e| e.display(&spec))?
            .ok_or("store in I should be processable")?;
        assert_eq!(sends.len(), 1);
        let m = sends[0];
        assert_eq!(m.dst, Node::Dir(0));
        assert_eq!(m.requestor, 0);
        assert_eq!(spec.message_name(MsgId(m.msg as usize)), "GetM");
        assert_eq!(gs.caches[0][0].state, cache_state(&spec, "IM_AD")?);
        Ok(())
    }

    #[test]
    fn load_hit_in_m_is_a_no_op() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        gs.caches[0][0].state = cache_state(&spec, "M")?;
        let out = inject(&spec, &cfg, &mut gs, 0, 0, CoreOp::Load).map_err(|e| e.display(&spec))?;
        assert_eq!(out, None);
        Ok(())
    }

    #[test]
    fn getm_at_idle_directory_grants_ownership() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        let msg = Msg {
            msg: mid(&spec, "GetM")?.index() as u8,
            addr: 0,
            src: Node::Cache(1),
            dst: Node::Dir(0),
            requestor: 1,
            ack: 0,
        };
        let sends = fired(deliver(&spec, &cfg, &mut gs, &msg))?;
        assert_eq!(gs.dirs[0].owner, Some(1));
        assert_eq!(gs.dirs[0].state, dir_state(&spec, "M")?);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dst, Node::Cache(1));
        assert_eq!(sends[0].ack, 0); // no sharers
        Ok(())
    }

    #[test]
    fn getm_in_s_counts_acks_and_invalidates_sharers() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        gs.dirs[0].state = dir_state(&spec, "S")?;
        gs.dirs[0].sharers = 0b110; // caches 1 and 2 share
        let msg = Msg {
            msg: mid(&spec, "GetM")?.index() as u8,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        let sends = fired(deliver(&spec, &cfg, &mut gs, &msg))?;
        // Data to requestor with ack=2, plus two Invs.
        let data = mid(&spec, "Data")?;
        let inv = mid(&spec, "Inv")?;
        let data_msg = sends
            .iter()
            .find(|m| m.msg == data.index() as u8)
            .ok_or("no Data message in the directory's sends")?;
        assert_eq!(data_msg.ack, 2);
        let invs: Vec<&Msg> = sends.iter().filter(|m| m.msg == inv.index() as u8).collect();
        assert_eq!(invs.len(), 2);
        assert!(invs.iter().all(|m| m.requestor == 0));
        assert_eq!(gs.dirs[0].sharers, 0);
        assert_eq!(gs.dirs[0].owner, Some(0));
        Ok(())
    }

    #[test]
    fn stall_reported_in_transient_state() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        gs.dirs[0].state = dir_state(&spec, "S_D")?;
        let msg = Msg {
            msg: mid(&spec, "GetM")?.index() as u8,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        assert_eq!(deliver(&spec, &cfg, &mut gs, &msg), Firing::Stalled);
        Ok(())
    }

    #[test]
    fn undefined_reception_reported() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        // Put-Ack arriving at a cache in I is undefined in the tables.
        let msg = Msg {
            msg: mid(&spec, "Put-Ack")?.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 0,
        };
        assert_eq!(deliver(&spec, &cfg, &mut gs, &msg), Firing::Undefined);
        Ok(())
    }

    #[test]
    fn ack_guards_combine_message_and_counter() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        gs.caches[0][0].state = cache_state(&spec, "IM_AD")?;
        // Two early Inv-Acks already arrived.
        gs.caches[0][0].needed_acks = -2;
        let msg = Msg {
            msg: mid(&spec, "Data")?.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 2,
        };
        // 2 + (-2) == 0: the ack=0 entry fires straight to M.
        let sends = fired(deliver(&spec, &cfg, &mut gs, &msg))?;
        assert!(sends.is_empty());
        assert_eq!(gs.caches[0][0].state, cache_state(&spec, "M")?);
        assert_eq!(gs.caches[0][0].needed_acks, 0);
        Ok(())
    }

    #[test]
    fn last_inv_ack_completes_write() -> TestResult {
        let (spec, cfg, mut gs) = setup();
        gs.caches[0][0].state = cache_state(&spec, "IM_A")?;
        gs.caches[0][0].needed_acks = 1;
        let msg = Msg {
            msg: mid(&spec, "Inv-Ack")?.index() as u8,
            addr: 0,
            src: Node::Cache(1),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 0,
        };
        fired(deliver(&spec, &cfg, &mut gs, &msg))?;
        assert_eq!(gs.caches[0][0].state, cache_state(&spec, "M")?);
        assert_eq!(gs.caches[0][0].needed_acks, 0);
        Ok(())
    }

    #[test]
    fn deferred_writer_round_trip_in_nonblocking_msi() -> TestResult {
        let spec = protocols::msi_nonblocking_cache();
        let cfg = McConfig::general(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        gs.caches[0][0].state = cache_state(&spec, "IM_AD")?;
        // A Fwd-GetM for cache 2 arrives and is deferred.
        let fwd = Msg {
            msg: mid(&spec, "Fwd-GetM")?.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 2,
            ack: 0,
        };
        let sends = fired(deliver(&spec, &cfg, &mut gs, &fwd))?;
        assert!(sends.is_empty());
        assert_eq!(gs.caches[0][0].writer, Some((2, 0)));
        // Data (ack=0) completes the write and serves the writer.
        let dm = Msg {
            msg: mid(&spec, "Data")?.index() as u8,
            addr: 0,
            src: Node::Dir(0),
            dst: Node::Cache(0),
            requestor: 0,
            ack: 0,
        };
        let sends = fired(deliver(&spec, &cfg, &mut gs, &dm))?;
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dst, Node::Cache(2));
        assert_eq!(sends[0].requestor, 2);
        assert_eq!(gs.caches[0][0].writer, None);
        assert_eq!(gs.caches[0][0].state, cache_state(&spec, "I")?);
        Ok(())
    }

    /// A hand-built spec that sends to [`Target::Owner`] while the
    /// directory has never recorded one must surface the structured
    /// [`ExecError::OwnerUnset`] instead of panicking.
    #[test]
    fn missing_owner_is_a_structured_error() -> TestResult {
        use vnet_protocol::{acts, MsgType, ProtocolBuilder};
        let mut b = ProtocolBuilder::new("owner-bug");
        b.msg("Ping", MsgType::Request);
        b.msg("Poke", MsgType::FwdRequest);
        b.cache_stable(&["I"]);
        b.dir_stable(&["I"]);
        b.cache_on_core("I", CoreOp::Store, acts().send("Ping", Target::Dir));
        b.dir_on_msg("I", "Ping", acts().send("Poke", Target::Owner));
        let spec = b.build();
        let cfg = McConfig::general(&spec);
        let mut gs = GlobalState::initial(&spec, &cfg);
        let msg = Msg {
            msg: mid(&spec, "Ping")?.index() as u8,
            addr: 0,
            src: Node::Cache(0),
            dst: Node::Dir(0),
            requestor: 0,
            ack: 0,
        };
        match deliver(&spec, &cfg, &mut gs, &msg) {
            Firing::Error(e @ ExecError::OwnerUnset { .. }) => {
                assert!(e.display(&spec).contains("Poke"));
                Ok(())
            }
            other => Err(format!("expected OwnerUnset, got {other:?}")),
        }
    }
}
