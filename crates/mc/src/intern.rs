//! State interning: canonical encodings stored once, addressed by id.
//!
//! The explorers used to key their visited/parent maps by full
//! `Vec<u8>` state encodings, with a second copy of the parent's key in
//! every entry — two heap allocations and ~2× the key bytes per state,
//! plus `HashMap` bucket overhead that the memory budget could only
//! estimate. [`StateArena`] replaces that: each distinct encoding is
//! appended once to a bump arena and assigned a dense [`StateId`];
//! everything downstream (parent links, frontiers, witness rebuild,
//! checkpoint flush) carries 4-byte ids instead of byte blobs.
//!
//! The index is a hand-rolled open-addressing table over
//! [`vnet_graph::fx_hash_bytes`] — no per-entry allocation, no
//! SipHash, and `heap_bytes` is computable exactly from capacities, so
//! the [`vnet_graph::BudgetMeter`] charge is no longer an estimate.

use vnet_graph::fx_hash_bytes;

/// Dense handle for an interned state encoding. Ids are assigned in
/// insertion order starting at 0, so parallel `Vec`s indexed by id hold
/// per-state metadata without a map.
pub type StateId = u32;

const EMPTY: u32 = u32::MAX;
/// Initial slot count of the open-addressing table (power of two).
const INITIAL_SLOTS: usize = 64;

/// Why an intern could not be completed. Both variants are resource
/// exhaustion, not corruption: callers degrade the run (a bounded
/// verdict) instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternError {
    /// The arena would exceed the `u32` address space (≈4 GiB of key
    /// bytes or 4 billion states).
    AddressSpace,
    /// The allocator refused to grow the arena or its index
    /// (`try_reserve` failed): the machine is out of memory.
    AllocFailed,
}

impl std::fmt::Display for InternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternError::AddressSpace => write!(f, "intern arena address space exhausted"),
            InternError::AllocFailed => write!(f, "allocator refused intern arena growth"),
        }
    }
}

/// An append-only interning arena for state encodings.
#[derive(Debug, Clone)]
pub struct StateArena {
    /// All encodings, concatenated.
    data: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is the span of id `i`; length is
    /// `len() + 1`.
    offsets: Vec<u32>,
    /// Open-addressing slots holding ids ([`EMPTY`] = vacant). Length
    /// is a power of two; resized at ¾ load.
    table: Vec<u32>,
}

impl Default for StateArena {
    fn default() -> Self {
        StateArena::new()
    }
}

impl StateArena {
    /// An empty arena.
    pub fn new() -> Self {
        StateArena {
            data: Vec::new(),
            offsets: vec![0],
            table: vec![EMPTY; INITIAL_SLOTS],
        }
    }

    /// Number of distinct encodings interned.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes of id `id`. An out-of-range id returns the empty
    /// slice rather than panicking (callers treat it as corruption).
    pub fn get(&self, id: StateId) -> &[u8] {
        let i = id as usize;
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The id of `bytes`, if already interned.
    pub fn lookup(&self, bytes: &[u8]) -> Option<StateId> {
        let mask = self.table.len() - 1;
        let mut slot = (fx_hash_bytes(bytes) as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return None,
                id => {
                    if self.get(id) == bytes {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `bytes`, returning `(id, true)` on first sight and
    /// `(id, false)` when already present. Exhaustion — of the `u32`
    /// address space or of the machine's memory itself — comes back as
    /// a structured [`InternError`], never a panic or an abort: every
    /// growth path reserves via `try_reserve` first.
    pub fn intern(&mut self, bytes: &[u8]) -> Result<(StateId, bool), InternError> {
        let mask = self.table.len() - 1;
        let mut slot = (fx_hash_bytes(bytes) as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => break,
                id => {
                    if self.get(id) == bytes {
                        return Ok((id, false));
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
        let id = self.len();
        if id >= EMPTY as usize || self.data.len() + bytes.len() > u32::MAX as usize {
            return Err(InternError::AddressSpace);
        }
        // The probe loop above requires at least one EMPTY slot; if an
        // earlier resize was refused by the allocator, stop before the
        // table can fill up completely.
        if id + 1 >= self.table.len() {
            return Err(InternError::AllocFailed);
        }
        if self.data.try_reserve(bytes.len()).is_err() || self.offsets.try_reserve(1).is_err() {
            return Err(InternError::AllocFailed);
        }
        self.data.extend_from_slice(bytes);
        self.offsets.push(self.data.len() as u32);
        self.table[slot] = id as u32;
        // Resize at ¾ load, re-probing every id into the doubled table.
        // A refused resize is not yet fatal: inserts continue into the
        // existing table (at degraded probe lengths) until the one-
        // EMPTY-slot invariant above would break.
        if (self.len() + 1) * 4 > self.table.len() * 3 {
            self.grow_table();
        }
        Ok((id as u32, true))
    }

    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        let mask = new_len - 1;
        let mut table = Vec::new();
        if table.try_reserve_exact(new_len).is_err() {
            return; // Keep the old table; intern() degrades gracefully.
        }
        table.resize(new_len, EMPTY);
        for id in 0..self.len() as u32 {
            let mut slot = (fx_hash_bytes(self.get(id)) as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id;
        }
        self.table = table;
    }

    /// Bytes of interned encodings (excluding index overhead) — the
    /// figure the spill tier compares against its minimum-hot guard.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Open-addressing table load factor in percent. Bounded by 75 by
    /// construction (the ¾-load resize rule); surfaced as the
    /// `explore.intern_load_pct` gauge.
    pub fn load_factor_pct(&self) -> u64 {
        (self.len() as u64 * 100) / (self.table.len() as u64)
    }

    /// Exact heap bytes held: arena data, offset vector, and the slot
    /// table, all from capacities.
    pub fn heap_bytes(&self) -> u64 {
        self.data.capacity() as u64
            + (self.offsets.capacity() * std::mem::size_of::<u32>()) as u64
            + (self.table.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// Interner for rule labels. A run sees at most a few hundred distinct
/// labels, each shared by thousands of states, so storing a `u32` per
/// state instead of an owned `String` removes one allocation per
/// claimed state.
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    /// One arena of label text, like [`StateArena`] but keyed by str.
    arena: StateArena,
}

impl LabelTable {
    /// An empty table.
    pub fn new() -> Self {
        LabelTable::default()
    }

    /// Interns `label`, returning its id. Falls back to id 0 (the first
    /// interned label) on arena overflow, which cannot happen before
    /// the state arena overflows — labels are a tiny subset of key
    /// bytes.
    pub fn intern(&mut self, label: &str) -> u32 {
        match self.arena.intern(label.as_bytes()) {
            Ok((id, _)) => id,
            Err(_) => 0,
        }
    }

    /// The label text of `id` (empty for out-of-range ids).
    pub fn get(&self, id: u32) -> &str {
        std::str::from_utf8(self.arena.get(id)).unwrap_or("")
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` when no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Exact heap bytes held.
    pub fn heap_bytes(&self) -> u64 {
        self.arena.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_and_round_trips() {
        let mut a = StateArena::new();
        let (x, fresh) = a.intern(b"alpha").unwrap();
        assert!(fresh);
        let (y, fresh2) = a.intern(b"beta").unwrap();
        assert!(fresh2);
        assert_ne!(x, y);
        let (x2, fresh3) = a.intern(b"alpha").unwrap();
        assert!(!fresh3);
        assert_eq!(x, x2);
        assert_eq!(a.get(x), b"alpha");
        assert_eq!(a.get(y), b"beta");
        assert_eq!(a.len(), 2);
        assert_eq!(a.lookup(b"alpha"), Some(x));
        assert_eq!(a.lookup(b"gamma"), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut a = StateArena::new();
        for i in 0..1000u32 {
            let (id, fresh) = a.intern(&i.to_le_bytes()).unwrap();
            assert!(fresh);
            assert_eq!(id, i);
        }
        for i in 0..1000u32 {
            assert_eq!(a.lookup(&i.to_le_bytes()), Some(i));
            assert_eq!(a.get(i), i.to_le_bytes());
        }
    }

    #[test]
    fn survives_table_growth() {
        let mut a = StateArena::new();
        // Far past several resize boundaries, with variable-length keys.
        for i in 0..10_000u32 {
            let key = vec![(i & 0xff) as u8; 3 + (i as usize % 29)];
            let full: Vec<u8> = key.iter().chain(i.to_le_bytes().iter()).copied().collect();
            a.intern(&full).unwrap();
        }
        assert_eq!(a.len(), 10_000);
        let probe: Vec<u8> = [77u8; 3 + (77 % 29)]
            .iter()
            .chain(77u32.to_le_bytes().iter())
            .copied()
            .collect();
        assert!(a.lookup(&probe).is_some());
    }

    #[test]
    fn empty_key_and_out_of_range_ids_are_safe() {
        let mut a = StateArena::new();
        let (e, fresh) = a.intern(b"").unwrap();
        assert!(fresh);
        assert_eq!(a.get(e), b"");
        assert_eq!(a.get(999), b"");
        assert_eq!(a.lookup(b""), Some(e));
    }

    #[test]
    fn heap_bytes_tracks_growth() {
        let mut a = StateArena::new();
        let before = a.heap_bytes();
        for i in 0..500u32 {
            a.intern(&i.to_le_bytes()).unwrap();
        }
        assert!(a.heap_bytes() > before);
        // Exactness: recomputable from capacities alone.
        let expect = a.data.capacity() as u64
            + (a.offsets.capacity() * 4) as u64
            + (a.table.capacity() * 4) as u64;
        assert_eq!(a.heap_bytes(), expect);
    }

    #[test]
    fn label_table_round_trips() {
        let mut t = LabelTable::new();
        let empty = t.intern("");
        let a = t.intern("C1 sends GetM(X)");
        let b = t.intern("Dir1 handles GetS(X)");
        assert_eq!(t.intern("C1 sends GetM(X)"), a);
        assert_eq!(t.get(empty), "");
        assert_eq!(t.get(a), "C1 sends GetM(X)");
        assert_eq!(t.get(b), "Dir1 handles GetS(X)");
        assert_eq!(t.len(), 3);
    }
}
