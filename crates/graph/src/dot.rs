//! Graphviz DOT export for debugging and documentation.

use crate::digraph::{DiGraph, EdgeId};
use crate::ungraph::UnGraph;
use std::fmt::Write as _;

/// Renders a directed graph to DOT, labeling nodes and edges with the
/// supplied formatters. Edges in `highlight` are drawn red and dashed
/// (used to visualize a feedback arc set).
pub fn digraph_to_dot<N, E>(
    graph: &DiGraph<N, E>,
    node_label: impl Fn(&N) -> String,
    edge_label: impl Fn(&E) -> String,
    highlight: &[EdgeId],
) -> String {
    let mut out = String::from("digraph G {\n  rankdir=LR;\n");
    for id in graph.node_ids() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            id.index(),
            escape(&node_label(graph.node(id)))
        );
    }
    for (eid, s, d) in graph.edges() {
        let style = if highlight.contains(&eid) {
            ", color=red, style=dashed"
        } else {
            ""
        };
        let label = edge_label(graph.edge(eid));
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"{}];",
            s.index(),
            d.index(),
            escape(&label),
            style
        );
    }
    out.push_str("}\n");
    out
}

/// Renders an undirected graph to DOT, with `color[v]` shown per node when
/// provided (used to visualize the conflict-graph coloring / VN mapping).
pub fn ungraph_to_dot<N>(
    graph: &UnGraph<N>,
    node_label: impl Fn(&N) -> String,
    colors: Option<&[usize]>,
) -> String {
    const PALETTE: [&str; 8] = [
        "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5",
    ];
    let mut out = String::from("graph G {\n");
    for id in graph.node_ids() {
        let fill = colors
            .and_then(|c| c.get(id.index()))
            .map(|&c| {
                format!(
                    ", style=filled, fillcolor=\"{}\"",
                    PALETTE[c % PALETTE.len()]
                )
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"{}];",
            id.index(),
            escape(&node_label(graph.node(id))),
            fill
        );
    }
    for (a, b) in graph.edges() {
        let _ = writeln!(out, "  n{} -- n{};", a.index(), b.index());
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digraph_dot_contains_edges_and_highlights() {
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let a = g.add_node("GetM");
        let b = g.add_node("Data");
        let e = g.add_edge(a, b, 1);
        let dot = digraph_to_dot(&g, |n| n.to_string(), |w| w.to_string(), &[e]);
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("GetM"));
    }

    #[test]
    fn ungraph_dot_colors_nodes() {
        let mut g: UnGraph<&str> = UnGraph::new();
        let a = g.add_node("Req");
        let b = g.add_node("Resp");
        g.add_edge(a, b);
        let dot = ungraph_to_dot(&g, |n| n.to_string(), Some(&[0, 1]));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("fillcolor"));
    }

    #[test]
    fn quotes_escaped() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = digraph_to_dot(&g, |n| n.to_string(), |_| String::new(), &[]);
        assert!(dot.contains("\\\"hi\\\""));
    }
}
