//! A fast, non-cryptographic hasher for hot-path hash tables.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which none of our internal tables need: keys are
//! canonical state encodings and small integers produced by our own
//! code, never attacker-controlled. This is the Fx/FNV-style
//! multiply-rotate hash used by rustc's `FxHashMap` — a few cycles per
//! word, quality adequate for power-of-two open addressing.
//!
//! Use [`FxBuildHasher`] as the `S` parameter of `HashMap`/`HashSet`,
//! or [`fx_hash_bytes`] to hash a byte slice directly (the model
//! checker's intern tables index with it).

use std::hash::{BuildHasherDefault, Hasher};

/// One round of the Fx mix: xor, rotate, multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED)
}

/// Hashes a byte slice in 8-byte chunks with the Fx mix. Deterministic
/// across processes and runs (unlike SipHash with its random key), so
/// anything derived from it — shard assignment, table layout — is
/// reproducible.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        hash = mix(hash, w);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut w = [0u8; 8];
        w[..rest.len()].copy_from_slice(rest);
        hash = mix(hash, u64::from_le_bytes(w));
        // Fold the length in so "ab" and "ab\0" differ.
        hash = mix(hash, rest.len() as u64);
    }
    hash
}

/// A [`Hasher`] over the Fx mix. Not keyed, not DoS-resistant — for
/// internal tables with trusted keys only.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
            self.hash = mix(self.hash, w);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.hash = mix(self.hash, u64::from_le_bytes(w));
            self.hash = mix(self.hash, rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = mix(self.hash, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`], usable as
/// `HashMap<K, V, FxBuildHasher>`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn byte_hash_is_deterministic_and_discriminating() {
        let a = fx_hash_bytes(b"hello world, this is a state key");
        let b = fx_hash_bytes(b"hello world, this is a state key");
        assert_eq!(a, b);
        assert_ne!(a, fx_hash_bytes(b"hello world, this is a state keY"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
        assert_ne!(fx_hash_bytes(b"ab"), fx_hash_bytes(b"ab\0"));
    }

    #[test]
    fn hasher_trait_matches_nothing_stateful() {
        let build = FxBuildHasher::default();
        let h1 = build.hash_one(42u64);
        let h2 = build.hash_one(42u64);
        assert_eq!(h1, h2);
        assert_ne!(build.hash_one(42u64), build.hash_one(43u64));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: std::collections::HashMap<Vec<u8>, usize, FxBuildHasher> =
            std::collections::HashMap::default();
        for i in 0..1000usize {
            m.insert(i.to_le_bytes().to_vec(), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(7usize.to_le_bytes().as_slice()), Some(&7));
    }

    #[test]
    fn low_collision_rate_on_state_like_keys() {
        // Keys shaped like state encodings (mostly-zero bytes with a few
        // varying positions) must spread: no more than a trivial number
        // of collisions among 10k keys.
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..10_000u32 {
            let mut key = vec![0u8; 40];
            key[3] = (i & 0xff) as u8;
            key[17] = ((i >> 8) & 0xff) as u8;
            key[31] = ((i >> 16) & 0xff) as u8;
            if !seen.insert(fx_hash_bytes(&key)) {
                collisions += 1;
            }
        }
        assert!(collisions <= 2, "{collisions} collisions in 10k keys");
    }
}
