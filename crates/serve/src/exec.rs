//! Runs one admitted request under its merged budget.
//!
//! Everything here is deterministic given the request: protocol
//! resolution is by built-in name or inline DSL only (the daemon never
//! opens files named by a client), and each workload is the same kernel
//! the CLI runs, handed the request's [`Budget`] — which carries the
//! admission deadline's [`CancelToken`](vnet_graph::CancelToken) and
//! the per-request memory cap.
//!
//! Determinism is also what makes results cacheable: [`store_key`]
//! derives the content address of an `analyze`/`mc` request from the
//! normalized DSL text of its spec (and, for `mc`, the resolved
//! [`McConfig`](vnet_mc::McConfig) fingerprint), and exact-provenance
//! results carry a [`StoreEntry`] the server writes through to the
//! durable result store. Only `provenance: "exact"` results are ever
//! stored — a degraded or cancelled result depends on the budget that
//! cut it, which is not part of the key.

use crate::json::Json;
use crate::proto::{Command, ProtocolRef, Request, VnChoice};
use std::path::{Path, PathBuf};
use vnet_core::{analyze, analyze_budgeted, VnOutcome};
use vnet_graph::{Budget, Provenance};
use vnet_mc::McConfig;
use vnet_protocol::{dsl, protocols, ProtocolSpec};
use vnet_store::{Key, RecordKind};

/// Why a request could not run, with a machine-readable `reason` for
/// the structured `error` response (`bad_request`, `spawn_failed`,
/// `worker_overrun`, ...).
#[derive(Debug)]
pub struct ExecError {
    pub reason: &'static str,
    pub detail: String,
}

impl ExecError {
    fn new(reason: &'static str, detail: impl Into<String>) -> Self {
        ExecError { reason, detail: detail.into() }
    }
}

impl From<String> for ExecError {
    fn from(detail: String) -> Self {
        ExecError::new("bad_request", detail)
    }
}

/// A result the server should write through to the durable store.
pub struct StoreEntry {
    pub key: Key,
    pub kind: RecordKind,
    /// The response fields as one rendered JSON object; replayed on a
    /// cache hit with `provenance: "cached"` substituted.
    pub body: String,
}

/// The payload of a finished request: result fields plus the kernel's
/// provenance (the worker turns a cancelled provenance into a
/// `cancelled` response, everything else into `ok`).
pub struct ExecResult {
    /// Response fields to merge into the JSON object.
    pub fields: Vec<(&'static str, Json)>,
    /// Exact, degraded, or cancelled.
    pub provenance: Provenance,
    /// Write-through payload, present only for exact results.
    pub store: Option<StoreEntry>,
}

impl ExecResult {
    fn new(fields: Vec<(&'static str, Json)>, provenance: Provenance) -> Self {
        ExecResult { fields, provenance, store: None }
    }

    fn with_store(mut self, key: Key, kind: RecordKind) -> Self {
        if self.provenance.is_exact() {
            self.store = Some(StoreEntry { key, kind, body: body_of(&self.fields) });
        }
        self
    }
}

/// Renders result fields as the canonical store body (a JSON object;
/// `Json::Obj` is a `BTreeMap`, so the rendering is deterministic).
fn body_of(fields: &[(&'static str, Json)]) -> String {
    Json::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()).render()
}

/// Resolves the request's protocol. Built-in lookup is exact; inline
/// DSL is parsed and validated fail-closed.
pub fn resolve_protocol(proto: &ProtocolRef) -> Result<ProtocolSpec, String> {
    match proto {
        ProtocolRef::None => Err("request needs a protocol".into()),
        ProtocolRef::Builtin(name) => protocols::extended()
            .into_iter()
            .find(|p| p.name() == name.as_str())
            .ok_or_else(|| format!("unknown protocol `{name}` (see `vnet list`)")),
        ProtocolRef::Inline(text) => {
            let spec = dsl::parse(text).map_err(|e| format!("bad spec: {e}"))?;
            spec.validate().map_err(|e| format!("bad spec: {e}"))?;
            Ok(spec)
        }
    }
}

/// The model-checking configuration an `mc` request resolves to: the
/// Figure-3 scenario under the requested VN mapping, or — with
/// `symmetry: true` — the general scenario under cache × address
/// symmetry reduction (the Figure-3 injection script names specific
/// caches and would break the symmetry). Shared by the runner and the
/// cache-key derivation so they can never disagree.
pub fn mc_config(spec: &ProtocolSpec, vns: VnChoice, symmetry: bool) -> Result<McConfig, String> {
    use vnet_mc::VnMap;
    let n_msgs = spec.messages().len();
    let vn_map = match vns {
        VnChoice::Single => VnMap::single(n_msgs),
        VnChoice::Unique => VnMap::one_per_message(n_msgs),
        VnChoice::Minimal => match analyze(spec).outcome() {
            VnOutcome::Assigned { assignment, .. } => VnMap::from_assignment(assignment, n_msgs),
            VnOutcome::Class2(_) => VnMap::one_per_message(n_msgs),
        },
    };
    if symmetry {
        McConfig::general(spec).with_vns(vn_map).with_symmetry()
    } else {
        Ok(McConfig::figure3(spec).with_vns(vn_map))
    }
}

/// Content address of an `analyze` result: the normalized DSL export
/// of the spec, nothing else (the analyzer has no other inputs).
pub fn analyze_store_key(spec: &ProtocolSpec) -> Key {
    Key::derive(&[b"analyze/1", dsl::to_text(spec).as_bytes()])
}

/// Content address of an `mc` result: normalized spec text plus every
/// [`McConfig`] field that shapes the reachable state space (the same
/// fingerprint bytes checkpoints are keyed by — the VN map is in
/// there, so each `vns` choice gets its own key). A `parameterized`
/// request carries extra flow-abstraction fields in its body, so it
/// addresses a distinct record — a cached plain result must never
/// replay with a parameterized claim (or the claim silently missing).
pub fn mc_store_key(spec: &ProtocolSpec, cfg: &McConfig, parameterized: bool) -> Key {
    let mut parts: Vec<&[u8]> = vec![b"mc/1"];
    let text = dsl::to_text(spec);
    parts.push(text.as_bytes());
    let fp = cfg.fingerprint_bytes();
    parts.push(&fp);
    if parameterized {
        parts.push(b"parameterized/1");
    }
    Key::derive(&parts)
}

/// The store key a request would be cached under, or `None` when the
/// request is not cacheable (sim, ping, batch, checkpointing mc, a
/// protocol that fails to resolve). Used by admission for inline
/// cache-hit answers, and kept in exact lockstep with the keys the
/// runners attach to their results.
pub fn store_key(req: &Request) -> Option<Key> {
    match &req.cmd {
        Command::Analyze => {
            let spec = resolve_protocol(&req.protocol).ok()?;
            Some(analyze_store_key(&spec))
        }
        // A checkpointing run's response names a server-side
        // checkpoint path; replaying that from cache would be a lie.
        Command::Mc { checkpoint: false, vns, symmetry, parameterized, .. } => {
            let spec = resolve_protocol(&req.protocol).ok()?;
            let cfg = mc_config(&spec, *vns, *symmetry).ok()?;
            Some(mc_store_key(&spec, &cfg, *parameterized))
        }
        _ => None,
    }
}

/// Executes `req` under `budget`. `Err` means the request could not run
/// at all (client error); `Ok` carries the result and its provenance.
/// `ckpt_path` is where an `mc` request with `checkpoint: true` flushes.
/// `on_level` observes BFS level boundaries of inline `mc` runs
/// (`(level, states so far)` — the server turns it into streaming
/// progress events).
pub fn execute(
    req: &Request,
    budget: &Budget,
    ckpt_path: Option<&Path>,
    on_level: &mut dyn FnMut(usize, usize),
) -> Result<ExecResult, ExecError> {
    match &req.cmd {
        Command::Ping => Ok(ExecResult::new(vec![], Provenance::Exact)),
        // Answered inline by the server; queued ones are no-ops.
        Command::Metrics | Command::Gc { .. } => Ok(ExecResult::new(vec![], Provenance::Exact)),
        // Batches are unpacked by the server's worker, never executed
        // whole; a stray one is a client error.
        Command::Batch { .. } => {
            Err(ExecError::new("bad_request", "batch cannot nest inside batch"))
        }
        Command::Panic => panic!("injected test fault (cmd=panic)"),
        Command::Analyze => run_analyze(req, budget),
        Command::Mc {
            vns,
            checkpoint,
            process,
            symmetry,
            parameterized,
            ..
        } => {
            let mode = McMode {
                vns: *vns,
                checkpoint: *checkpoint,
                symmetry: *symmetry,
                parameterized: *parameterized,
            };
            if *process {
                run_mc_process(req, budget, mode, ckpt_path)
            } else {
                run_mc(req, budget, mode, ckpt_path, on_level)
            }
        }
        Command::Sim {
            ops,
            seed,
            max_cycles,
            faults,
        } => run_sim(req, budget, *ops, *seed, *max_cycles, faults.as_deref()),
    }
}

fn run_analyze(req: &Request, budget: &Budget) -> Result<ExecResult, ExecError> {
    let spec = resolve_protocol(&req.protocol)?;
    let report = analyze_budgeted(&spec, budget);
    let provenance = report.outcome().provenance().clone();
    let mut fields = vec![("protocol", Json::str(spec.name()))];
    match report.outcome() {
        VnOutcome::Class2(_) => {
            fields.push(("class", Json::num(2)));
            fields.push(("min_vns", Json::Null));
        }
        VnOutcome::Assigned { assignment, .. } => {
            fields.push(("min_vns", Json::num(assignment.n_vns() as u64)));
            let map: Vec<Json> = (0..assignment.n_vns())
                .map(|vn| {
                    Json::Arr(
                        assignment
                            .messages_in(vn)
                            .map(|m| Json::str(spec.message_name(m)))
                            .collect(),
                    )
                })
                .collect();
            fields.push(("vns", Json::Arr(map)));
        }
    }
    fields.push((
        "textbook_vns",
        Json::num(vnet_core::textbook::textbook_vn_count(&spec) as u64),
    ));
    let key = analyze_store_key(&spec);
    Ok(ExecResult::new(fields, provenance).with_store(key, RecordKind::Analyze))
}

/// Response fields for a `parameterized: true` mc request: the
/// flow-abstraction verdict (see `vnet_mc::flows`), computed in the
/// daemon — it is a pure function of spec + config, so the explorer
/// (inline or child process) never needs to know. `parameterized` echoes
/// the request mode; the actual claim and its fail-closed provenance
/// ride in `param_verdict` / `param_provenance`.
fn param_fields(spec: &ProtocolSpec, cfg: &McConfig) -> Vec<(&'static str, Json)> {
    let fv = vnet_mc::check_parameterized(spec, cfg);
    vec![
        ("parameterized", Json::Bool(true)),
        ("param_verdict", Json::str(fv.verdict_token())),
        ("param_provenance", Json::str(fv.provenance_string())),
    ]
}

/// The mode knobs of one `mc` request, bundled so the runner
/// signatures stay readable as the flag set grows.
#[derive(Clone, Copy)]
struct McMode {
    vns: VnChoice,
    checkpoint: bool,
    symmetry: bool,
    parameterized: bool,
}

fn run_mc(
    req: &Request,
    budget: &Budget,
    mode: McMode,
    ckpt_path: Option<&Path>,
    on_level: &mut dyn FnMut(usize, usize),
) -> Result<ExecResult, ExecError> {
    use vnet_mc::{
        checkpoint::CheckpointPolicy, explore_budgeted_with, explore_checkpointed,
        CheckpointedRun, Verdict,
    };
    let spec = resolve_protocol(&req.protocol)?;
    let cfg =
        mc_config(&spec, mode.vns, mode.symmetry).map_err(|e| ExecError::new("bad_request", e))?;

    let mut ckpt_field: Option<PathBuf> = None;
    let run = match (mode.checkpoint, ckpt_path) {
        (true, Some(path)) => {
            ckpt_field = Some(path.to_path_buf());
            let policy = CheckpointPolicy::new(path.to_path_buf());
            explore_checkpointed(&spec, &cfg, budget, &policy, on_level)
                .map_err(|e| format!("checkpoint error: {e}"))?
        }
        _ => CheckpointedRun::Finished(explore_budgeted_with(&spec, &cfg, budget, on_level)),
    };

    let verdict = match run {
        CheckpointedRun::Finished(v) => v,
        // No stop file is configured on service policies, so this arm
        // is unreachable; answer truthfully anyway.
        CheckpointedRun::Interrupted { states, level, .. } => {
            return Ok(ExecResult::new(
                vec![
                    ("verdict", Json::str("interrupted")),
                    ("states", Json::num(states as u64)),
                    ("levels", Json::num(level as u64)),
                ],
                Provenance::Exact,
            ));
        }
    };

    let stats = verdict.stats().clone();
    let mut fields = vec![("protocol", Json::str(spec.name()))];
    match &verdict {
        Verdict::NoDeadlock(_) => fields.push(("verdict", Json::str("no_deadlock"))),
        Verdict::Deadlock { depth, .. } => {
            fields.push(("verdict", Json::str("deadlock")));
            fields.push(("depth", Json::num(*depth as u64)));
        }
        Verdict::ModelError { detail, .. } => {
            fields.push(("verdict", Json::str("model_error")));
            fields.push(("detail", Json::str(detail.clone())));
        }
        Verdict::InvariantViolation { detail, .. } => {
            fields.push(("verdict", Json::str("invariant_violation")));
            fields.push(("detail", Json::str(detail.clone())));
        }
    }
    fields.push(("states", Json::num(stats.states as u64)));
    fields.push(("levels", Json::num(stats.levels as u64)));
    fields.push(("complete", Json::Bool(stats.complete)));
    if mode.parameterized {
        fields.extend(param_fields(&spec, &cfg));
    }
    let mut result = ExecResult::new(fields, stats.provenance);
    match ckpt_field {
        Some(p) => {
            // A checkpointing response names a server-side path —
            // never cached (the path is not content).
            result.fields.push(("checkpoint", Json::str(p.display().to_string())));
        }
        None => {
            result = result
                .with_store(mc_store_key(&spec, &cfg, mode.parameterized), RecordKind::Mc);
        }
    }
    Ok(result)
}

/// Serial numbers for inline-spec scratch files: process id plus a
/// counter keeps concurrent workers (and respawned daemons) apart.
static SPEC_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Bounded attempts for a process-dispatched mc child that dies by
/// signal (OOM killer, crash): the first run plus two respawns.
const MAX_WORKER_ATTEMPTS: u32 = 3;
/// Base backoff between respawns; doubles per attempt (25, 50 ms).
const WORKER_BACKOFF_MS: u64 = 25;

/// The executable spawned for `dispatch: "process"` children. The env
/// override exists for tests (the test binary is not `vnet`) and for
/// the spawn-failure drill; production use never sets it.
fn worker_exe() -> Result<PathBuf, ExecError> {
    if let Ok(p) = std::env::var("VNET_SERVE_WORKER_EXE") {
        return Ok(PathBuf::from(p));
    }
    std::env::current_exe()
        .map_err(|e| ExecError::new("spawn_failed", format!("cannot find own executable: {e}")))
}

/// How long past its own deadline a child may run before the
/// supervisor's grace kill fires. Env-tunable so the unit test does
/// not wait 30 s.
fn worker_grace() -> std::time::Duration {
    let ms = std::env::var("VNET_SERVE_WORKER_GRACE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30_000);
    std::time::Duration::from_millis(ms)
}

/// How one supervised child ended.
enum ChildEnd {
    Exited(std::process::ExitStatus),
    Cancelled(vnet_graph::CancelReason),
    /// The grace kill fired: the child overran its deadline plus grace.
    Overrun,
}

/// Polls a child to completion, killing it on cooperative cancellation
/// or when `hard_deadline` (deadline + grace) passes.
fn supervise_child(
    child: &mut std::process::Child,
    budget: &Budget,
    hard_deadline: Option<std::time::Instant>,
) -> Result<ChildEnd, ExecError> {
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(ChildEnd::Exited(status)),
            Ok(None) => {
                let cancelled = budget.cancel.as_ref().is_some_and(|t| t.is_cancelled());
                let overrun =
                    hard_deadline.is_some_and(|d| std::time::Instant::now() >= d);
                if cancelled || overrun {
                    let _ = child.kill();
                    let _ = child.wait();
                    if cancelled {
                        let reason = budget
                            .cancel
                            .as_ref()
                            .and_then(|t| t.reason())
                            .unwrap_or(vnet_graph::CancelReason::Shutdown);
                        return Ok(ChildEnd::Cancelled(reason));
                    }
                    return Ok(ChildEnd::Overrun);
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(ExecError::new("worker_failed", format!("worker wait failed: {e}")));
            }
        }
    }
}

/// Cancel-aware backoff sleep between worker respawns. Returns the
/// cancel reason if cancellation fired mid-sleep.
fn backoff_sleep(budget: &Budget, dur: std::time::Duration) -> Option<vnet_graph::CancelReason> {
    let until = std::time::Instant::now() + dur;
    while std::time::Instant::now() < until {
        if let Some(t) = budget.cancel.as_ref() {
            if let Some(reason) = t.reason() {
                return Some(reason);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    None
}

/// Runs an `mc` request in a dedicated child process (`vnet mc
/// <protocol> --machine`), so memory blowups, OOM kills, and panics in
/// the explorer cost one child instead of the daemon. The child result
/// arrives on the same machine line the campaign supervisor parses.
///
/// Supervision policy, fail-closed at every step:
/// * the binary cannot be spawned → `error{spawn_failed}`, no retry
///   (a missing binary does not heal);
/// * the child is killed by a signal (OOM killer, crash) → respawn
///   with doubling backoff, at most [`MAX_WORKER_ATTEMPTS`] attempts,
///   then degrade as `Provenance::Degraded(WorkerLoss)` — an honest
///   "the work was lost", never a fabricated verdict;
/// * the child exits cleanly but prints no `mc-result` line → error,
///   no retry (the child is deterministic; it would fail identically);
/// * the child overruns its deadline plus grace → grace kill,
///   `error{worker_overrun}`.
fn run_mc_process(
    req: &Request,
    budget: &Budget,
    mode: McMode,
    ckpt_path: Option<&Path>,
) -> Result<ExecResult, ExecError> {
    use std::process::{Command as Proc, Stdio};
    use vnet_graph::DegradeReason;
    use vnet_mc::campaign::parse_machine_line;

    // The child re-resolves the protocol: built-ins by name, inline
    // DSL via a scratch file (validated here first, so a client error
    // never burns a process spawn).
    let spec = resolve_protocol(&req.protocol)?;
    let cfg =
        mc_config(&spec, mode.vns, mode.symmetry).map_err(|e| ExecError::new("bad_request", e))?;
    let mut scratch: Option<PathBuf> = None;
    let arg = match &req.protocol {
        ProtocolRef::Builtin(name) => name.clone(),
        ProtocolRef::Inline(text) => {
            let seq = SPEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("vnet-serve-spec-{}-{seq}.vnp", std::process::id()));
            std::fs::write(&path, text)
                .map_err(|e| ExecError::from(format!("cannot stage spec: {e}")))?;
            let arg = path.display().to_string();
            scratch = Some(path);
            arg
        }
        ProtocolRef::None => return Err(ExecError::from("request needs a protocol".to_string())),
    };
    // Tidy the scratch file on every exit path below.
    let cleanup = |r: Result<ExecResult, ExecError>| {
        if let Some(p) = &scratch {
            let _ = std::fs::remove_file(p);
        }
        r
    };

    let exe = match worker_exe() {
        Ok(p) => p,
        Err(e) => return cleanup(Err(e)),
    };

    let cancelled_result = |reason| {
        ExecResult::new(
            vec![("protocol", Json::str(spec.name()))],
            Provenance::Degraded {
                reason: DegradeReason::Cancelled { reason },
            },
        )
    };

    const LOSS_DETAIL: &str = "worker killed without a result (OOM killer or signal)";
    let mut restarts: u32 = 0;
    loop {
        let mut cmd = Proc::new(&exe);
        cmd.arg("mc").arg(&arg).arg("--machine");
        match mode.vns {
            VnChoice::Single => {
                cmd.arg("--single-vn");
            }
            VnChoice::Unique => {
                cmd.arg("--unique-vns");
            }
            VnChoice::Minimal => {}
        }
        if mode.symmetry {
            cmd.arg("--general").arg("--symmetry");
        }
        let mut clauses = Vec::new();
        if let Some(d) = budget.deadline {
            clauses.push(format!("{}ms", d.as_millis().max(1)));
        }
        if let Some(n) = budget.node_limit {
            clauses.push(format!("nodes={n}"));
        }
        if !clauses.is_empty() {
            cmd.arg("--budget").arg(clauses.join(","));
        }
        if let Some(b) = budget.mem_limit {
            cmd.arg("--mem-budget").arg(b.to_string());
        }
        if mode.checkpoint {
            if let Some(p) = ckpt_path {
                cmd.arg("--checkpoint").arg(p);
            }
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                // A binary that cannot be spawned is an operator
                // problem, not a crashed worker: structured error, no
                // retry, no `panicked` masquerade.
                return cleanup(Err(ExecError::new(
                    "spawn_failed",
                    format!("cannot spawn worker `{}`: {e}", exe.display()),
                )));
            }
        };

        // The child self-limits via the forwarded budget; the
        // supervisor only steps in for cooperative cancellation
        // (drain/shutdown) and for a child that overruns its own
        // deadline by the grace window.
        let hard_deadline = budget
            .deadline
            .map(|d| std::time::Instant::now() + d + worker_grace());
        let status = match supervise_child(&mut child, budget, hard_deadline) {
            Ok(ChildEnd::Exited(status)) => status,
            Ok(ChildEnd::Cancelled(reason)) => {
                return cleanup(Ok(cancelled_result(reason)));
            }
            Ok(ChildEnd::Overrun) => {
                return cleanup(Err(ExecError::new(
                    "worker_overrun",
                    "worker process overran its deadline and was grace-killed",
                )));
            }
            Err(e) => return cleanup(Err(e)),
        };

        let mut output = String::new();
        if let Some(mut out) = child.stdout.take() {
            use std::io::Read as _;
            let _ = out.read_to_string(&mut output);
        }

        let m = match parse_machine_line(&output) {
            Some(m) => m,
            None => match status.code() {
                // A clean exit without a result is deterministic
                // (bad flags, usage error): retrying reruns the same
                // failure, so report it straight away.
                Some(code) => {
                    return cleanup(Err(ExecError::new(
                        "worker_failed",
                        format!("worker exited with code {code} and no mc-result line"),
                    )));
                }
                // Killed by a signal (OOM killer, crash): this is the
                // retryable worker-loss case.
                None => {
                    restarts += 1;
                    vnet_obs::counter("serve.worker_retries_total").inc();
                    if restarts >= MAX_WORKER_ATTEMPTS {
                        vnet_obs::counter("serve.worker_loss_total").inc();
                        return cleanup(Ok(ExecResult::new(
                            vec![
                                ("protocol", Json::str(spec.name())),
                                ("worker_error", Json::str(LOSS_DETAIL)),
                            ],
                            Provenance::Degraded {
                                reason: DegradeReason::WorkerLoss {
                                    lost_states: 0,
                                    restarts,
                                },
                            },
                        )));
                    }
                    let backoff = std::time::Duration::from_millis(
                        WORKER_BACKOFF_MS << (restarts - 1).min(8),
                    );
                    if let Some(reason) = backoff_sleep(budget, backoff) {
                        return cleanup(Ok(cancelled_result(reason)));
                    }
                    continue;
                }
            },
        };

        // The machine line flattens provenance to a string; rebuild
        // the two cases the response schema distinguishes.
        let provenance = if m.provenance == "exact" {
            Provenance::Exact
        } else {
            Provenance::Degraded {
                reason: DegradeReason::Bound {
                    what: m
                        .provenance
                        .strip_prefix("degraded: ")
                        .unwrap_or(&m.provenance)
                        .to_string(),
                },
            }
        };
        let mut fields =
            mc_result_fields(spec.name(), &m.kind, m.depth, m.states, m.levels, m.complete);
        if mode.parameterized {
            // Computed in the daemon, not the child: the flow verdict
            // is a pure function of spec + config, so the child's
            // machine line stays unchanged across versions.
            fields.extend(param_fields(&spec, &cfg));
        }
        let mut result = ExecResult::new(fields, provenance);
        if mode.checkpoint {
            if let Some(p) = ckpt_path {
                result.fields.push(("checkpoint", Json::str(p.display().to_string())));
            }
        } else {
            // Same key derivation as the inline path: a process-run
            // result and an inline result of the same request are the
            // same record.
            result = result
                .with_store(mc_store_key(&spec, &cfg, mode.parameterized), RecordKind::Mc);
        }
        return cleanup(Ok(result));
    }
}

/// Result fields for an mc verdict reported on a machine line. Shared
/// by the process-dispatch path and the campaign write-through, so a
/// campaign-written store record is byte-identical to a daemon-written
/// one and either replays as the same cache hit.
pub fn mc_result_fields(
    protocol: &str,
    kind: &str,
    depth: usize,
    states: usize,
    levels: usize,
    complete: bool,
) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("protocol", Json::str(protocol)),
        (
            "verdict",
            Json::str(match kind {
                "no-deadlock" => "no_deadlock".to_string(),
                "deadlock" => "deadlock".to_string(),
                "model-error" => "model_error".to_string(),
                other => other.replace('-', "_"),
            }),
        ),
    ];
    if kind == "deadlock" {
        fields.push(("depth", Json::num(depth as u64)));
    }
    fields.push(("states", Json::num(states as u64)));
    fields.push(("levels", Json::num(levels as u64)));
    fields.push(("complete", Json::Bool(complete)));
    fields
}

/// The canonical store body for an mc machine-line verdict.
pub fn mc_result_body(
    protocol: &str,
    kind: &str,
    depth: usize,
    states: usize,
    levels: usize,
    complete: bool,
) -> String {
    body_of(&mc_result_fields(protocol, kind, depth, states, levels, complete))
}

fn run_sim(
    req: &Request,
    budget: &Budget,
    ops: usize,
    seed: u64,
    max_cycles: u64,
    faults: Option<&str>,
) -> Result<ExecResult, ExecError> {
    use vnet_mc::VnMap;
    use vnet_sim::{FaultPlan, SimConfig, Simulator, Topology, Workload};
    let spec = resolve_protocol(&req.protocol)?;
    let plan = match faults {
        Some(text) => FaultPlan::parse(text).map_err(|e| ExecError::from(e.to_string()))?,
        None => FaultPlan::none(),
    };
    let topology = Topology::Mesh(2, 3);
    let n_dirs = 2;
    let n_msgs = spec.messages().len();
    let vns = match vnet_sim::sim::minimal_vn_map(&spec) {
        Some(m) => m,
        None => VnMap::one_per_message(n_msgs),
    };
    let mut cfg = SimConfig::new(&spec, topology, 2, n_dirs).with_vns(vns);
    if !plan.is_empty() {
        cfg = cfg.with_faults(plan, seed);
    }
    let workload = Workload::uniform_random(cfg.n_caches(), 2, ops, seed);
    let (r, provenance) = Simulator::new(spec, cfg).run_budgeted(workload, max_cycles, budget);
    if let Some(detail) = &r.model_error {
        return Err(ExecError::from(format!(
            "specification bug under simulation: {detail}"
        )));
    }
    let fields = vec![
        ("cycles", Json::num(r.cycles)),
        ("n_vns", Json::num(r.n_vns as u64)),
        ("completed", Json::num(r.completed_transactions as u64)),
        ("unfinished", Json::num(r.unfinished_ops as u64)),
        ("deadlocked", Json::Bool(r.deadlocked)),
    ];
    Ok(ExecResult::new(fields, provenance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cmd: Command, protocol: &str) -> Request {
        Request {
            id: Some("t".into()),
            cmd,
            protocol: ProtocolRef::Builtin(protocol.into()),
            budget: Budget::unlimited(),
        }
    }

    fn run(r: &Request, budget: &Budget) -> Result<ExecResult, ExecError> {
        execute(r, budget, None, &mut |_, _| {})
    }

    fn mc_cmd(vns: VnChoice, process: bool) -> Command {
        Command::Mc {
            vns,
            checkpoint: false,
            process,
            progress: false,
            symmetry: false,
            parameterized: false,
        }
    }

    fn mc_sym_cmd(vns: VnChoice) -> Command {
        Command::Mc {
            vns,
            checkpoint: false,
            process: false,
            progress: false,
            symmetry: true,
            parameterized: false,
        }
    }

    fn mc_param_cmd(vns: VnChoice, symmetry: bool) -> Command {
        Command::Mc {
            vns,
            checkpoint: false,
            process: false,
            progress: false,
            symmetry,
            parameterized: true,
        }
    }

    #[test]
    fn symmetry_mc_runs_and_addresses_its_own_store_record() {
        let plain = req(mc_cmd(VnChoice::Unique, false), "MSI-nonblocking-cache");
        let sym = req(mc_sym_cmd(VnChoice::Unique), "MSI-nonblocking-cache");
        // Symmetry selects the general scenario: a distinct state
        // space, hence a distinct content address.
        assert_ne!(store_key(&plain).unwrap(), store_key(&sym).unwrap());
        let budget = Budget::unlimited().with_node_limit(20_000);
        let out = run(&sym, &budget).unwrap();
        assert!(out
            .fields
            .iter()
            .any(|(k, v)| *k == "verdict" && v.as_str() == Some("no_deadlock")));
    }

    #[test]
    fn parameterized_mc_addresses_its_own_record_and_reports_the_flow_verdict() {
        let plain = req(mc_cmd(VnChoice::Minimal, false), "MSI-nonblocking-cache");
        let par = req(mc_param_cmd(VnChoice::Minimal, false), "MSI-nonblocking-cache");
        // The parameterized body carries extra claim fields, so it must
        // address its own record; the plain key derivation is untouched.
        assert_ne!(store_key(&plain).unwrap(), store_key(&par).unwrap());

        // Figure-3 names specific caches — the abstraction is
        // inapplicable and must degrade fail-closed, not claim more.
        let out = run(&par, &Budget::unlimited()).unwrap();
        let field = |k: &str| {
            out.fields
                .iter()
                .find(|(f, _)| *f == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("parameterized").and_then(|v| v.as_bool()), Some(true));
        assert!(
            matches!(field("param_verdict"), Some(v) if v.as_str() == Some("inapplicable")),
            "{:?}",
            out.fields
        );
        assert!(
            matches!(field("param_provenance"), Some(v)
                if v.as_str().is_some_and(|s| s.starts_with("bounded-only"))),
            "{:?}",
            out.fields
        );
        let entry = out.store.expect("exact parameterized mc results are cacheable");
        assert_eq!(entry.key, store_key(&par).unwrap());
        assert!(entry.body.contains("param_verdict"), "{}", entry.body);

        // The general scenario under the analyzer's minimal map is
        // where the abstraction applies: certified for all N.
        let sym = req(mc_param_cmd(VnChoice::Minimal, true), "MSI-nonblocking-cache");
        let budget = Budget::unlimited().with_node_limit(20_000);
        let out = run(&sym, &budget).unwrap();
        let field = |k: &str| {
            out.fields
                .iter()
                .find(|(f, _)| *f == k)
                .map(|(_, v)| v.clone())
        };
        assert!(
            matches!(field("param_verdict"), Some(v) if v.as_str() == Some("free-all-n")),
            "{:?}",
            out.fields
        );
        assert!(
            matches!(field("param_provenance"), Some(v) if v.as_str() == Some("parameterized")),
            "{:?}",
            out.fields
        );
    }

    #[test]
    fn analyze_chi_says_two_vns_and_carries_a_store_entry() {
        let r = req(Command::Analyze, "CHI");
        let out = run(&r, &Budget::unlimited()).unwrap();
        assert!(out.provenance.is_exact());
        assert!(out
            .fields
            .iter()
            .any(|(k, v)| *k == "min_vns" && v.as_u64() == Some(2)));
        let entry = out.store.expect("exact analyze results are cacheable");
        assert_eq!(entry.kind, RecordKind::Analyze);
        assert_eq!(entry.key, store_key(&r).expect("analyze requests have keys"));
        let body = crate::json::parse(&entry.body).expect("store body is valid JSON");
        assert_eq!(
            body.get("min_vns").and_then(Json::as_u64),
            Some(2),
            "{body:?}"
        );
    }

    #[test]
    fn unknown_protocol_is_a_client_error() {
        let r = req(Command::Analyze, "NOPE");
        match run(&r, &Budget::unlimited()) {
            Err(e) => {
                assert_eq!(e.reason, "bad_request");
                assert!(e.detail.contains("unknown protocol"), "{}", e.detail);
            }
            Ok(_) => panic!("unknown protocol should not resolve"),
        }
    }

    #[test]
    fn cancelled_budget_reports_cancelled_provenance() {
        use vnet_graph::{CancelReason, CancelToken, DegradeReason};
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let budget = Budget::unlimited().with_cancel(token);
        let r = req(mc_cmd(VnChoice::Single, false), "MESI-nonblocking-cache");
        let out = run(&r, &budget).unwrap();
        assert!(matches!(
            out.provenance,
            Provenance::Degraded {
                reason: DegradeReason::Cancelled {
                    reason: CancelReason::Shutdown
                }
            }
        ));
        assert!(out.store.is_none(), "non-exact results must not be stored");
    }

    #[test]
    fn mem_budget_degrades_the_explorer() {
        use vnet_graph::DegradeReason;
        let budget = Budget::unlimited().with_mem_limit(10_000);
        let r = req(mc_cmd(VnChoice::Unique, false), "MESI-nonblocking-cache");
        let out = run(&r, &budget).unwrap();
        assert!(matches!(
            out.provenance,
            Provenance::Degraded {
                reason: DegradeReason::MemLimit { .. }
            }
        ));
        assert!(out.store.is_none(), "non-exact results must not be stored");
    }

    #[test]
    fn exact_mc_attaches_the_same_key_the_admission_lookup_derives() {
        let r = req(mc_cmd(VnChoice::Unique, false), "MSI-nonblocking-cache");
        let out = run(&r, &Budget::unlimited()).unwrap();
        assert!(out.provenance.is_exact());
        let entry = out.store.expect("exact mc results are cacheable");
        assert_eq!(entry.kind, RecordKind::Mc);
        assert_eq!(entry.key, store_key(&r).expect("mc requests have keys"));
        // Different VN choices address different records.
        let other = req(mc_cmd(VnChoice::Single, false), "MSI-nonblocking-cache");
        assert_ne!(store_key(&other).unwrap(), entry.key);
    }

    #[test]
    fn progress_callback_observes_level_boundaries() {
        let mut levels = Vec::new();
        let r = req(mc_cmd(VnChoice::Unique, false), "MSI-nonblocking-cache");
        let mut hook = |level: usize, states: usize| levels.push((level, states));
        let out = execute(&r, &Budget::unlimited(), None, &mut hook).unwrap();
        assert!(out.provenance.is_exact());
        assert!(!levels.is_empty(), "inline mc must report level boundaries");
        assert!(
            levels.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "levels and states must be monotone: {levels:?}"
        );
    }

    #[cfg(unix)]
    #[test]
    fn spawn_failure_is_a_structured_error_not_a_panic() {
        let r = req(mc_cmd(VnChoice::Unique, true), "MSI-nonblocking-cache");
        // Serialized env mutation: worker-exe tests share the process.
        let _guard = env_lock().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("VNET_SERVE_WORKER_EXE", "/nonexistent/vnet-binary");
        let out = run(&r, &Budget::unlimited());
        std::env::remove_var("VNET_SERVE_WORKER_EXE");
        match out {
            Err(e) => {
                assert_eq!(e.reason, "spawn_failed", "{}", e.detail);
                assert!(e.detail.contains("/nonexistent/vnet-binary"), "{}", e.detail);
            }
            Ok(_) => panic!("spawning a nonexistent binary must fail"),
        }
    }

    #[cfg(unix)]
    fn env_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
    }

    #[cfg(unix)]
    fn fake_worker(tag: &str, script_body: &str) -> PathBuf {
        use std::os::unix::fs::PermissionsExt as _;
        let path = std::env::temp_dir().join(format!(
            "vnet-serve-fake-worker-{tag}-{}.sh",
            std::process::id()
        ));
        std::fs::write(&path, format!("#!/bin/sh\n{script_body}\n")).unwrap();
        let mut perms = std::fs::metadata(&path).unwrap().permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&path, perms).unwrap();
        path
    }

    #[cfg(unix)]
    #[test]
    fn grace_kill_fires_on_a_child_that_overruns_its_deadline() {
        // A worker that ignores its budget and sleeps forever: the
        // supervisor must grace-kill it at deadline + grace, not hang.
        let script = fake_worker("overrun", "sleep 30");
        let _guard = env_lock().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("VNET_SERVE_WORKER_EXE", &script);
        std::env::set_var("VNET_SERVE_WORKER_GRACE_MS", "100");
        let budget = Budget::unlimited().with_deadline(std::time::Duration::from_millis(50));
        let r = req(mc_cmd(VnChoice::Unique, true), "MSI-nonblocking-cache");
        let started = std::time::Instant::now();
        let out = run(&r, &budget);
        let elapsed = started.elapsed();
        std::env::remove_var("VNET_SERVE_WORKER_EXE");
        std::env::remove_var("VNET_SERVE_WORKER_GRACE_MS");
        let _ = std::fs::remove_file(&script);
        match out {
            Err(e) => {
                assert_eq!(e.reason, "worker_overrun", "{}", e.detail);
                assert!(e.detail.contains("grace-killed"), "{}", e.detail);
            }
            Ok(_) => panic!("an overrunning child must not produce a result"),
        }
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "grace kill must fire promptly, took {elapsed:?}"
        );
    }

    #[cfg(unix)]
    #[test]
    fn signal_killed_children_retry_then_degrade_as_worker_loss() {
        use vnet_graph::DegradeReason;
        // A worker that SIGKILLs itself on every attempt: bounded
        // respawns, then an honest WorkerLoss degradation.
        let script = fake_worker("selfkill", "kill -9 $$");
        let _guard = env_lock().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("VNET_SERVE_WORKER_EXE", &script);
        let r = req(mc_cmd(VnChoice::Unique, true), "MSI-nonblocking-cache");
        let out = run(&r, &Budget::unlimited());
        std::env::remove_var("VNET_SERVE_WORKER_EXE");
        let _ = std::fs::remove_file(&script);
        let out = out.expect("worker loss degrades, it does not error");
        match out.provenance {
            Provenance::Degraded {
                reason: DegradeReason::WorkerLoss { restarts, .. },
            } => assert_eq!(restarts, MAX_WORKER_ATTEMPTS),
            other => panic!("expected WorkerLoss, got {other:?}"),
        }
        assert!(out.store.is_none(), "degraded results must not be stored");
    }

    #[cfg(unix)]
    #[test]
    fn clean_exit_without_result_is_an_error_not_a_retry() {
        let script = fake_worker("usage", "exit 3");
        let _guard = env_lock().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("VNET_SERVE_WORKER_EXE", &script);
        let started = std::time::Instant::now();
        let r = req(mc_cmd(VnChoice::Unique, true), "MSI-nonblocking-cache");
        let out = run(&r, &Budget::unlimited());
        std::env::remove_var("VNET_SERVE_WORKER_EXE");
        let _ = std::fs::remove_file(&script);
        match out {
            Err(e) => {
                assert_eq!(e.reason, "worker_failed", "{}", e.detail);
                assert!(e.detail.contains("code 3"), "{}", e.detail);
            }
            Ok(_) => panic!("a clean exit without a result is an error"),
        }
        // No backoff loop for deterministic failures.
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
    }
}
