//! Reproducible explorer timing harness: measures states/second, peak
//! accounted bytes, and wall time for the `table1_mc` and
//! `mc_depth_series` workloads, and emits `BENCH_vnet.json` so every PR
//! leaves a perf trajectory behind.
//!
//! ```text
//! bench_explorer [--out FILE] [--only SUBSTR] [--repeat N]
//!                [--check BASELINE.json] [--max-regress PCT]
//!                [--mem-budget BYTES]
//! ```
//!
//! * `--out` — where to write the JSON report (default `BENCH_vnet.json`).
//! * `--only` — run only workloads whose name contains SUBSTR (the CI
//!   smoke job uses `--only MSI-blocking` to stay fast).
//! * `--repeat` — timed repetitions per workload; the median is
//!   reported (default 3).
//! * `--check` — compare states/sec against a previously committed
//!   report and exit non-zero if any shared workload regressed by more
//!   than `--max-regress` percent (default 30).
//! * `--mem-budget` — run every selected workload out-of-core under the
//!   given byte budget (spill threshold at 4/5 of it, mirroring
//!   `vnet mc --mem-budget`); the report then measures spill-tier
//!   throughput instead of in-RAM throughput.
//!
//! Independent of `--mem-budget`, the suite always includes one
//! spill-path workload (`CHI@derived-fig3+spill`, group
//! `table1_mc_spill`) so the committed report tracks out-of-core
//! throughput alongside the in-RAM entries.
//!
//! The workloads are the paper's §VII verification subjects: the
//! Table I deadlock confirmations (Figure-3 scenario) and the bounded
//! depth-series sweeps. All runs are serial and deterministic, so
//! states and levels are bit-stable; only wall time varies.

use std::path::PathBuf;
use std::time::Instant;
use vnet_core::minimize_vns;
use vnet_mc::{explore_budgeted, InjectionBudget, McConfig, SpillConfig, Verdict, VnMap};
use vnet_protocol::{protocols, ProtocolSpec};

/// One named (spec, config) pair to measure.
struct Workload {
    name: String,
    group: &'static str,
    spec: ProtocolSpec,
    cfg: McConfig,
}

/// One measured result.
struct Measurement {
    name: String,
    group: &'static str,
    verdict: &'static str,
    states: usize,
    levels: usize,
    wall_ms: f64,
    states_per_sec: f64,
    peak_bytes: u64,
    spill_bytes: u64,
}

/// Scratch root for spill shards; removed at the end of the run.
fn spill_dir() -> PathBuf {
    std::env::temp_dir().join(format!("vnet-bench-spill-{}", std::process::id()))
}

fn derived_vns(spec: &ProtocolSpec) -> VnMap {
    let outcome = minimize_vns(spec);
    match outcome.assignment() {
        Some(a) => VnMap::from_assignment(a, spec.messages().len()),
        None => VnMap::one_per_message(spec.messages().len()),
    }
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    // table1_mc: the Figure-3 directed scenario per Table I protocol.
    for spec in [
        protocols::msi_blocking_cache(),
        protocols::mesi_blocking_cache(),
        protocols::mosi_blocking_cache(),
        protocols::moesi_blocking_cache(),
    ] {
        let cfg =
            McConfig::figure3(&spec).with_vns(VnMap::one_per_message(spec.messages().len()));
        out.push(Workload {
            name: format!("{}@unique-fig3", spec.name()),
            group: "table1_mc",
            spec,
            cfg,
        });
    }
    for spec in [
        protocols::msi_nonblocking_cache(),
        protocols::mesi_nonblocking_cache(),
        protocols::chi(),
    ] {
        let vns = derived_vns(&spec);
        let cfg = McConfig::figure3(&spec).with_vns(vns);
        out.push(Workload {
            name: format!("{}@derived-fig3", spec.name()),
            group: "table1_mc",
            spec,
            cfg,
        });
    }
    // table1_mc_spill: one Figure-3 subject forced out-of-core, so the
    // committed report tracks spill-tier throughput over time. The
    // threshold sits well under the workload's ~37 MB in-RAM peak.
    {
        let spec = protocols::chi();
        let vns = derived_vns(&spec);
        let cfg = McConfig::figure3(&spec)
            .with_vns(vns)
            .with_spill(SpillConfig::new(spill_dir().join("chi-fig3"), 16 << 20));
        out.push(Workload {
            name: format!("{}@derived-fig3+spill", spec.name()),
            group: "table1_mc_spill",
            spec,
            cfg,
        });
    }
    // table1_mc_sym: the symmetry-reduced Table I sweep. A complete
    // 3-cache/2-address/1-directory general space (symmetry group
    // 3!·2! = 12) folded to canonical representatives — this row gates
    // the key-only canonicalizer's cost: a regression here means
    // symmetry mode stopped paying for itself. Always on, so the
    // committed report tracks folded throughput over time.
    {
        let spec = protocols::msi_blocking_cache();
        let vns = derived_vns(&spec);
        let mut cfg = McConfig::general(&spec)
            .with_vns(vns)
            .with_budget(InjectionBudget::PerCache(1));
        cfg.n_dirs = 1;
        let cfg = cfg
            .with_symmetry()
            .expect("the general scenario satisfies the symmetry preconditions");
        out.push(Workload {
            name: "MSI@table1+sym".to_string(),
            group: "table1_mc_sym",
            spec,
            cfg,
        });
    }
    // The 4-cache follow-up row: symmetry (group order 4!·2! = 48) is
    // what makes the 4-cache general sweep tractable at all, so this
    // row keeps the deeper fold's throughput under the same regression
    // gate as the 3-cache one.
    {
        let spec = protocols::msi_blocking_cache();
        let vns = derived_vns(&spec);
        let mut cfg = McConfig::general(&spec)
            .with_vns(vns)
            .with_budget(InjectionBudget::PerCache(1));
        cfg.n_dirs = 1;
        cfg.n_caches = 4;
        let cfg = cfg
            .with_symmetry()
            .expect("the general scenario satisfies the symmetry preconditions");
        out.push(Workload {
            name: "MSI@table1-4c+sym".to_string(),
            group: "table1_mc_sym",
            spec,
            cfg,
        });
    }
    // mc_depth_series: the bounded general sweeps (the big ones).
    for spec in [
        protocols::msi_nonblocking_cache(),
        protocols::mesi_nonblocking_cache(),
        protocols::chi(),
    ] {
        let vns = derived_vns(&spec);
        let cfg = McConfig::general(&spec)
            .with_vns(vns)
            .with_budget(InjectionBudget::PerCache(1))
            .with_limits(120_000, Some(40));
        out.push(Workload {
            name: format!("{}@derived-general", spec.name()),
            group: "mc_depth_series",
            spec,
            cfg,
        });
    }
    out
}

fn measure(w: &Workload, repeat: usize, budget: &vnet_graph::Budget) -> Measurement {
    let mut walls: Vec<f64> = Vec::with_capacity(repeat);
    let mut verdict = "unknown";
    let mut states = 0usize;
    let mut levels = 0usize;
    let mut peak_bytes = 0u64;
    let mut spill_bytes = 0u64;
    for _ in 0..repeat {
        let t = Instant::now();
        let v = explore_budgeted(&w.spec, &w.cfg, budget);
        walls.push(t.elapsed().as_secs_f64() * 1e3);
        let stats = v.stats();
        states = stats.states;
        levels = stats.levels;
        peak_bytes = stats.peak_bytes;
        spill_bytes = stats.spill_bytes;
        verdict = match v {
            Verdict::Deadlock { .. } => "deadlock",
            Verdict::NoDeadlock(_) => "no_deadlock",
            Verdict::ModelError { .. } => "model_error",
            Verdict::InvariantViolation { .. } => "invariant_violation",
        };
    }
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let wall_ms = walls[walls.len() / 2];
    Measurement {
        name: w.name.clone(),
        group: w.group,
        verdict,
        states,
        levels,
        wall_ms,
        states_per_sec: if wall_ms > 0.0 {
            states as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        peak_bytes,
        spill_bytes,
    }
}

fn to_json(results: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"bench\": \"bench_explorer\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"group\": \"{}\", \"verdict\": \"{}\", \
             \"states\": {}, \"levels\": {}, \"wall_ms\": {:.2}, \
             \"states_per_sec\": {:.0}, \"peak_bytes\": {}, \"spill_bytes\": {}}}{}",
            m.name,
            m.group,
            m.verdict,
            m.states,
            m.levels,
            m.wall_ms,
            m.states_per_sec,
            m.peak_bytes,
            m.spill_bytes,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    let total: f64 = results.iter().map(|m| m.states as f64).sum();
    let wall: f64 = results.iter().map(|m| m.wall_ms).sum();
    let _ = writeln!(
        out,
        "  \"aggregate\": {{\"states\": {:.0}, \"wall_ms\": {:.2}, \"states_per_sec\": {:.0}}}",
        total,
        wall,
        if wall > 0.0 { total / (wall / 1e3) } else { 0.0 }
    );
    out.push_str("}\n");
    out
}

/// Pulls `"name": "<w>" ... "states_per_sec": <num>` pairs out of a
/// previously committed report. Deliberately minimal: it parses only
/// the format `to_json` writes.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(sps_at) = line.find("\"states_per_sec\": ") else {
            continue;
        };
        let tail = &line[sps_at + 18..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_vnet.json".to_string());
    let only = flag(&args, "--only");
    // Fail closed on `--repeat 0` (an empty sample has no median) and
    // on unparseable values — silently falling back to the default
    // would hide the typo from the caller.
    let repeat: usize = match flag(&args, "--repeat") {
        None => 3,
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bench_explorer: --repeat needs a positive repetition count, got `{v}`");
                std::process::exit(1);
            }
        },
    };
    let check = flag(&args, "--check");
    let max_regress: f64 = flag(&args, "--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);
    let mem_budget: Option<u64> = match flag(&args, "--mem-budget") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("bench_explorer: --mem-budget needs a positive byte count, got `{v}`");
                std::process::exit(1);
            }
        },
    };

    let mut selected: Vec<Workload> = workloads()
        .into_iter()
        .filter(|w| only.as_ref().is_none_or(|o| w.name.contains(o.as_str())))
        .collect();
    if selected.is_empty() {
        eprintln!("bench_explorer: no workload matches the --only filter");
        std::process::exit(1);
    }
    // Out-of-core mode: same budget → spill-threshold split the CLI
    // uses, so bench numbers transfer to `vnet mc --mem-budget` runs.
    let mut budget = vnet_graph::Budget::unlimited();
    if let Some(b) = mem_budget {
        budget = budget.with_mem_limit(b);
        for (i, w) in selected.iter_mut().enumerate() {
            let dir = spill_dir().join(format!("w{i}"));
            w.cfg = w.cfg.clone().with_spill(SpillConfig::new(dir, b.saturating_mul(4) / 5));
        }
    }

    println!("bench_explorer: {} workload(s), repeat={repeat}", selected.len());
    let mut results = Vec::with_capacity(selected.len());
    for w in &selected {
        let m = measure(w, repeat, &budget);
        println!(
            "  {:<44} {:>9} states  {:>8.1} ms  {:>10.0} states/s  peak {} B  spilled {} B  [{}]",
            m.name, m.states, m.wall_ms, m.states_per_sec, m.peak_bytes, m.spill_bytes, m.verdict
        );
        results.push(m);
    }
    let _ = std::fs::remove_dir_all(spill_dir());

    let json = to_json(&results);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_explorer: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_explorer: cannot read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline = parse_baseline(&text);
        let mut failed = false;
        let mut compared = 0;
        for m in &results {
            let Some((_, base_sps)) = baseline.iter().find(|(n, _)| *n == m.name) else {
                continue;
            };
            compared += 1;
            let floor = base_sps * (1.0 - max_regress / 100.0);
            let status = if m.states_per_sec < floor { "REGRESSED" } else { "ok" };
            println!(
                "  check {:<40} {:>10.0} vs baseline {:>10.0} (floor {:>10.0}) {status}",
                m.name, m.states_per_sec, base_sps, floor
            );
            if m.states_per_sec < floor {
                failed = true;
            }
        }
        if compared == 0 {
            eprintln!("bench_explorer: baseline shares no workload with this run");
            std::process::exit(1);
        }
        if failed {
            eprintln!(
                "bench_explorer: states/sec regressed more than {max_regress}% on at least \
                 one workload"
            );
            std::process::exit(2);
        }
        println!("no regression beyond {max_regress}% on {compared} shared workload(s)");
    }
}
