//! End-to-end tests for the process-sharded explorer (`vnet mc
//! --shard-procs`), driven through the CLI: the supervisor re-invokes
//! the `vnet` binary for each shard worker, so these tests exercise the
//! same spawn path production uses. The properties under test are the
//! module's contract: verdict parity with the serial explorer,
//! shard-count invariance, bit-identical recovery from a worker killed
//! mid-round, directory-level supervisor resume, and a merged v2
//! checkpoint that the plain serial explorer can resume.

use std::path::PathBuf;
use std::process::Command;

fn vnet_bin() -> &'static str {
    env!("CARGO_BIN_EXE_vnet")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vnet-procshard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    let _ = std::fs::create_dir_all(&d);
    d
}

/// Runs `vnet mc` with `args`, returning (exit code, stdout).
fn run_mc(args: &[&str]) -> (i32, String) {
    let out = Command::new(vnet_bin())
        .arg("mc")
        .args(args)
        .output()
        .expect("vnet mc should spawn");
    let code = out.status.code().unwrap_or(-1);
    (code, String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The `mc-result` machine line of an output, or a panic with context.
fn machine_line(stdout: &str) -> String {
    stdout
        .lines()
        .find(|l| l.starts_with("mc-result "))
        .unwrap_or_else(|| panic!("no mc-result line in:\n{stdout}"))
        .to_string()
}

/// A complete (exhaustive) run must agree with the serial explorer on
/// everything the machine line carries: verdict kind, depth, distinct
/// state count, and exact provenance.
#[test]
fn complete_run_matches_the_serial_explorer() {
    let (serial_code, serial_out) = run_mc(&["CHI", "--machine"]);
    assert_eq!(serial_code, 0, "serial run failed:\n{serial_out}");

    let dir = tmpdir("complete");
    let dir_s = dir.display().to_string();
    let (code, out) = run_mc(&[
        "CHI",
        "--machine",
        "--shard-procs",
        "2",
        "--shard-dir",
        &dir_s,
    ]);
    assert_eq!(code, 0, "procshard run failed:\n{out}");
    assert_eq!(
        machine_line(&out),
        machine_line(&serial_out),
        "procshard diverged from serial"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shard count is a performance knob, not a semantic one: the same
/// workload under different fan-outs produces identical machine lines
/// — including the deadlock witness depth and the state count.
#[test]
fn deadlock_verdict_is_shard_count_invariant() {
    let mut lines = Vec::new();
    for n in ["2", "3"] {
        let dir = tmpdir(&format!("inv{n}"));
        let dir_s = dir.display().to_string();
        let (code, out) = run_mc(&[
            "CHI",
            "--single-vn",
            "--machine",
            "--verify-witness",
            "--shard-procs",
            n,
            "--shard-dir",
            &dir_s,
        ]);
        assert_eq!(code, 2, "single-VN CHI must exit 2 (deadlock):\n{out}");
        assert!(
            out.contains("witness verified"),
            "witness must replay cleanly:\n{out}"
        );
        lines.push(machine_line(&out));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(lines[0], lines[1], "verdict depends on shard count");
}

/// The acceptance scenario: a worker process dies mid-round — after
/// committing its section, before its outboxes and result record — and
/// the supervisor respawns it. The CLI output must be bit-identical to
/// an undisturbed run, stdout bytes included.
#[test]
fn killed_shard_mid_round_reproduces_bit_identical_output() {
    let dir = tmpdir("clean");
    let dir_s = dir.display().to_string();
    let (code, clean) = run_mc(&[
        "CHI",
        "--single-vn",
        "--machine",
        "--verify-witness",
        "--shard-procs",
        "2",
        "--shard-dir",
        &dir_s,
    ]);
    assert_eq!(code, 2, "clean run failed:\n{clean}");
    assert!(
        clean.contains("witness verified"),
        "witness must replay cleanly:\n{clean}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let dir = tmpdir("killed");
    let dir_s = dir.display().to_string();
    let (code, killed) = run_mc(&[
        "CHI",
        "--single-vn",
        "--machine",
        "--verify-witness",
        "--shard-procs",
        "2",
        "--shard-dir",
        &dir_s,
        "--inject-shard-kill",
        "7:1",
    ]);
    assert_eq!(code, 2, "kill-injected run failed:\n{killed}");
    assert_eq!(
        clean, killed,
        "a killed-and-respawned shard changed the output"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dead *supervisor* is recovered by re-running the same command on
/// the same directory: the interrupted leg leaves committed rounds
/// behind (exactly what a SIGKILL leaves), and the second leg finishes
/// the search with the same machine line a fresh run produces.
#[test]
fn supervisor_resumes_a_partially_explored_directory() {
    let (_, fresh) = run_mc(&["CHI", "--single-vn", "--machine", "--verify-witness"]);
    let fresh_line = machine_line(&fresh);

    let dir = tmpdir("resume");
    let dir_s = dir.display().to_string();
    // Leg 1: a node budget stops the supervisor at a round boundary
    // (exit 3, degraded) — the directory now holds committed rounds.
    let (code, leg1) = run_mc(&[
        "CHI",
        "--single-vn",
        "--machine",
        "--shard-procs",
        "2",
        "--shard-dir",
        &dir_s,
        "--budget",
        "nodes=40000",
    ]);
    assert_eq!(code, 3, "budgeted leg should degrade:\n{leg1}");
    assert!(
        machine_line(&leg1).contains("degraded"),
        "leg 1 should be degraded:\n{leg1}"
    );

    // Leg 2: same command, no budget — picks up from the committed
    // round and must land on the fresh run's exact verdict.
    let (code, leg2) = run_mc(&[
        "CHI",
        "--single-vn",
        "--machine",
        "--verify-witness",
        "--shard-procs",
        "2",
        "--shard-dir",
        &dir_s,
    ]);
    assert_eq!(code, 2, "resumed leg should find the deadlock:\n{leg2}");
    assert!(
        leg2.contains("witness verified"),
        "resumed witness must replay cleanly:\n{leg2}"
    );
    assert_eq!(
        machine_line(&leg2),
        fresh_line,
        "resumed directory diverged from a fresh run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An interrupted procshard run with `--checkpoint` merges its shard
/// sections into one standard v2 checkpoint; the *serial* explorer must
/// be able to resume it and finish with its own exact verdict.
#[test]
fn merged_checkpoint_resumes_under_the_serial_explorer() {
    let (_, fresh) = run_mc(&["CHI", "--machine"]);
    let fresh_line = machine_line(&fresh);

    let dir = tmpdir("merge");
    let dir_s = dir.display().to_string();
    let ckpt = dir.join("merged.ckpt");
    let ckpt_s = ckpt.display().to_string();
    let (code, leg1) = run_mc(&[
        "CHI",
        "--machine",
        "--shard-procs",
        "2",
        "--shard-dir",
        &dir_s,
        "--budget",
        "nodes=60000",
        "--checkpoint",
        &ckpt_s,
    ]);
    assert_eq!(code, 3, "budgeted leg should degrade:\n{leg1}");
    assert!(ckpt.exists(), "degraded leg must flush a merged checkpoint");

    let (code, resumed) = run_mc(&["CHI", "--machine", "--resume", &ckpt_s]);
    assert_eq!(code, 0, "serial resume failed:\n{resumed}");
    assert_eq!(
        machine_line(&resumed),
        fresh_line,
        "serial resume of the merged checkpoint diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flag validation: the process-shard and out-of-core flags fail closed
/// on the combinations the explorers cannot honor.
#[test]
fn conflicting_flags_are_rejected_before_anything_runs() {
    let cases: &[&[&str]] = &[
        &["CHI", "--shard-procs", "2"],                      // no --shard-dir
        &["CHI", "--shard-dir", "/tmp/x"],                   // no --shard-procs
        &["CHI", "--shard-procs", "0", "--shard-dir", "/tmp/x"], // zero shards
        &["CHI", "--shard-procs", "2", "--shard-dir", "/tmp/x", "--parallel", "2"],
        &["CHI", "--shard-procs", "2", "--shard-dir", "/tmp/x", "--resume", "/tmp/y"],
        &["CHI", "--spill-dir", "/tmp/x"],                   // no --mem-budget
        &["CHI", "--mem-budget", "0"],                       // zero budget
        &["CHI", "--mem-budget", "1000000", "--spill-dir", "/tmp/x", "--parallel", "2"],
        &["CHI", "--inject-shard-kill", "1:0"],              // no --shard-procs
    ];
    for args in cases {
        let (code, out) = run_mc(args);
        assert_eq!(code, 1, "{args:?} should be a usage error, got:\n{out}");
    }
}
