//! Version-interchange corpus for the checkpoint format: the
//! thread-parallel explorer still writes version-1 files, the serial
//! explorer flushes version-2 (the shard-section format the
//! process-shard explorer shares), and every reader accepts both. For
//! a corpus of interrupted runs across protocols this suite checks
//! that a checkpoint round-trips v1 → v2 → v1 without losing a state,
//! and that resuming from any encoding of the same snapshot produces
//! the identical verdict.

use std::path::PathBuf;
use vnet::core::Budget;
use vnet::mc::{
    explore_checkpointed, explore_parallel_supervised, resume, Checkpoint, CheckpointPolicy,
    CheckpointedRun, McConfig, ParallelOpts, Verdict, VnMap,
};
use vnet::protocol::{protocols, ProtocolSpec};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vnet-v1v2-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&d);
    d.join(format!("{tag}.ckpt"))
}

/// The observable identity of a verdict for equivalence checks.
fn signature(v: &Verdict) -> (String, usize, usize, Vec<String>) {
    let stats = v.stats();
    let (kind, depth, steps) = match v {
        Verdict::NoDeadlock(s) => ("no-deadlock".to_string(), s.levels, Vec::new()),
        Verdict::Deadlock { depth, trace, .. } => {
            ("deadlock".to_string(), *depth, trace.steps.clone())
        }
        Verdict::ModelError { trace, .. } => {
            ("model-error".to_string(), stats.levels, trace.steps.clone())
        }
        Verdict::InvariantViolation { trace, .. } => (
            "invariant-violation".to_string(),
            stats.levels,
            trace.steps.clone(),
        ),
    };
    (kind, depth, stats.states, steps)
}

/// The corpus: a protocol, its config, and a node budget that
/// interrupts exploration partway so the flushed checkpoint carries a
/// non-trivial visited set and frontier.
fn corpus() -> Vec<(&'static str, ProtocolSpec, usize, u64)> {
    vec![
        ("msi-b", protocols::msi_blocking_cache(), 3_000, 900),
        ("mesi-nb", protocols::mesi_nonblocking_cache(), 4_000, 1_500),
        ("chi", protocols::chi(), 5_000, 2_000),
    ]
}

fn config_for(spec: &ProtocolSpec, max_states: usize) -> McConfig {
    McConfig::figure3(spec)
        .with_vns(VnMap::one_per_message(spec.messages().len()))
        .with_limits(max_states, Some(7))
}

/// Serial resume must reach the same verdict from the same snapshot no
/// matter which version encodes it — including after a v1 → v2 → v1
/// round-trip through the conversion path.
#[test]
fn every_encoding_of_a_snapshot_resumes_identically() {
    for (name, spec, max_states, seg) in corpus() {
        let cfg = config_for(&spec, max_states);

        // Reference: the uninterrupted checkpointed run.
        let ref_path = tmp(&format!("{name}-ref"));
        let _ = std::fs::remove_file(&ref_path);
        let ref_policy = CheckpointPolicy::new(&ref_path).every_states(1_000_000);
        let baseline = match explore_checkpointed(
            &spec,
            &cfg,
            &Budget::unlimited(),
            &ref_policy,
            |_, _| {},
        ) {
            Ok(CheckpointedRun::Finished(v)) => signature(&v),
            other => panic!("{name}: reference run did not finish: {other:?}"),
        };
        let _ = std::fs::remove_file(&ref_path);

        // Interrupted snapshot, flushed by the *serial* explorer (v2).
        let v2_path = tmp(&format!("{name}-v2"));
        let _ = std::fs::remove_file(&v2_path);
        let policy = CheckpointPolicy::new(&v2_path).every_states(1);
        match explore_checkpointed(
            &spec,
            &cfg,
            &Budget::unlimited().with_node_limit(seg),
            &policy,
            |_, _| {},
        ) {
            Ok(CheckpointedRun::Finished(v)) => assert!(
                !v.stats().provenance.is_exact(),
                "{name}: node budget too generous; snapshot is not mid-run"
            ),
            other => panic!("{name}: snapshot leg failed: {other:?}"),
        }

        // Re-encode the same snapshot in every supported version.
        let loaded = Checkpoint::load(&v2_path, &spec, &cfg)
            .unwrap_or_else(|e| panic!("{name}: cannot load v2 snapshot: {e}"));
        let v1_path = tmp(&format!("{name}-v1"));
        loaded
            .write_to(&v1_path)
            .unwrap_or_else(|e| panic!("{name}: cannot write v1: {e}"));
        let rt_path = tmp(&format!("{name}-v1v2"));
        let reloaded = Checkpoint::load(&v1_path, &spec, &cfg)
            .unwrap_or_else(|e| panic!("{name}: cannot reload v1: {e}"));
        reloaded
            .write_to_v2(&rt_path)
            .unwrap_or_else(|e| panic!("{name}: cannot rewrite v2: {e}"));

        for (enc, path) in [("v2", &v2_path), ("v1", &v1_path), ("v1->v2", &rt_path)] {
            let run = resume(path, &spec, &cfg, &Budget::unlimited(), None, |_, _| {})
                .unwrap_or_else(|e| panic!("{name}/{enc}: resume failed: {e}"));
            let v = match run {
                CheckpointedRun::Finished(v) => v,
                other => panic!("{name}/{enc}: resume did not finish: {other:?}"),
            };
            assert_eq!(
                signature(&v),
                baseline,
                "{name}: resuming the {enc} encoding diverged"
            );
        }
        for p in [&v2_path, &v1_path, &rt_path] {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Cross-explorer interchange: a v1 checkpoint flushed by the
/// *thread-parallel* explorer resumes under the serial explorer (the
/// v1 → v2 conversion production actually exercises), and its verdict
/// matches the uninterrupted serial run.
#[test]
fn parallel_v1_checkpoint_resumes_under_the_serial_explorer() {
    let spec = protocols::msi_blocking_cache();
    let cfg = config_for(&spec, 3_000);

    let ref_path = tmp("cross-ref");
    let _ = std::fs::remove_file(&ref_path);
    let ref_policy = CheckpointPolicy::new(&ref_path).every_states(1_000_000);
    let baseline = match explore_checkpointed(
        &spec,
        &cfg,
        &Budget::unlimited(),
        &ref_policy,
        |_, _| {},
    ) {
        Ok(CheckpointedRun::Finished(v)) => signature(&v),
        other => panic!("reference run did not finish: {other:?}"),
    };
    let _ = std::fs::remove_file(&ref_path);

    let path = tmp("cross-v1");
    let _ = std::fs::remove_file(&path);
    let opts = ParallelOpts::new()
        .with_threads(2)
        .with_budget(Budget::unlimited().with_node_limit(900))
        .with_policy(CheckpointPolicy::new(&path).every_states(1));
    match explore_parallel_supervised(&spec, &cfg, &opts) {
        Ok(CheckpointedRun::Finished(v)) => assert!(
            !v.stats().provenance.is_exact(),
            "node budget too generous; checkpoint is not mid-run"
        ),
        other => panic!("parallel snapshot leg failed: {other:?}"),
    }
    assert!(path.exists(), "parallel leg never flushed");

    let run = resume(&path, &spec, &cfg, &Budget::unlimited(), None, |_, _| {})
        .unwrap_or_else(|e| panic!("serial resume of parallel v1 failed: {e}"));
    let v = match run {
        CheckpointedRun::Finished(v) => v,
        other => panic!("resume did not finish: {other:?}"),
    };
    assert_eq!(
        signature(&v),
        baseline,
        "serial resume of a parallel v1 checkpoint diverged"
    );
    let _ = std::fs::remove_file(&path);
}

/// Damaged v2 files fail closed with a structured error — bit flips in
/// the manifest, the section bytes, and the envelope checksum must all
/// be caught, never panic or resume silently wrong.
#[test]
fn corrupted_v2_checkpoints_are_rejected() {
    let spec = protocols::msi_blocking_cache();
    let cfg = config_for(&spec, 3_000);
    let path = tmp("corrupt-src");
    let _ = std::fs::remove_file(&path);
    let policy = CheckpointPolicy::new(&path).every_states(1);
    let _ = explore_checkpointed(
        &spec,
        &cfg,
        &Budget::unlimited().with_node_limit(900),
        &policy,
        |_, _| {},
    );
    let bytes = std::fs::read(&path).expect("snapshot must exist");
    assert!(bytes.len() > 100, "snapshot suspiciously small");

    // Flip one byte at a spread of offsets covering header, payload,
    // and trailing checksum.
    for frac in [13usize, 40, 60, 85, 99] {
        let at = bytes.len() * frac / 100;
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        let victim = tmp(&format!("corrupt-{frac}"));
        std::fs::write(&victim, &bad).expect("write corrupted copy");
        match Checkpoint::load(&victim, &spec, &cfg) {
            Err(_) => {}
            Ok(_) => {
                // A flip that lands in slack the checksum still covers
                // cannot be Ok: the envelope checksum spans everything.
                panic!("byte flip at {at}/{} was accepted", bytes.len());
            }
        }
        let _ = std::fs::remove_file(&victim);
    }
    let _ = std::fs::remove_file(&path);
}
