//! Simulation statistics and the final report.

use crate::faults::{DeadlockReport, FaultStats};

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Transactions that completed (cache returned to a stable state).
    pub completed_transactions: usize,
    /// Operations that never issued or never completed.
    pub unfinished_ops: usize,
    /// `true` if the run wedged: in-flight work with no progress for the
    /// watchdog window.
    pub deadlocked: bool,
    /// A controller received a message its table does not define — a
    /// specification/modeling error, reported separately from deadlock.
    pub model_error: Option<String>,
    /// Mean transaction latency in cycles (completed transactions only).
    pub avg_latency: f64,
    /// 99th-percentile transaction latency.
    pub p99_latency: u64,
    /// Maximum observed total buffer occupancy (messages).
    pub peak_occupancy: usize,
    /// Mean buffer occupancy, sampled each cycle.
    pub avg_occupancy: f64,
    /// Number of VNs in the configuration.
    pub n_vns: usize,
    /// The buffer cost proxy: directed links × VNs × buffer depth —
    /// the quantity the paper's PPA argument (§VI-C3) is about.
    pub buffer_cost: usize,
    /// Counters of injected faults (`None` when the run had no fault
    /// plan, so fault-free reports stay bit-identical to the baseline).
    pub faults: Option<FaultStats>,
    /// The watchdog's post-mortem when the run wedged.
    pub deadlock: Option<DeadlockReport>,
}

/// Running accumulator used by the simulator.
#[derive(Debug, Default)]
pub struct StatsAccum {
    pub(crate) latencies: Vec<u64>,
    pub(crate) occupancy_sum: u128,
    pub(crate) occupancy_samples: u64,
    pub(crate) peak_occupancy: usize,
}

impl StatsAccum {
    pub(crate) fn sample_occupancy(&mut self, occupancy: usize) {
        self.occupancy_sum += occupancy as u128;
        self.occupancy_samples += 1;
        self.peak_occupancy = self.peak_occupancy.max(occupancy);
    }

    pub(crate) fn record_latency(&mut self, cycles: u64) {
        self.latencies.push(cycles);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        mut self,
        cycles: u64,
        unfinished_ops: usize,
        deadlocked: bool,
        model_error: Option<String>,
        n_vns: usize,
        buffer_cost: usize,
        faults: Option<FaultStats>,
        deadlock: Option<DeadlockReport>,
    ) -> SimReport {
        self.latencies.sort_unstable();
        let completed = self.latencies.len();
        let avg = if completed == 0 {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / completed as f64
        };
        let p99 = if completed == 0 {
            0
        } else {
            self.latencies[(completed - 1).min(completed * 99 / 100)]
        };
        SimReport {
            cycles,
            completed_transactions: completed,
            unfinished_ops,
            deadlocked,
            model_error,
            avg_latency: avg,
            p99_latency: p99,
            peak_occupancy: self.peak_occupancy,
            avg_occupancy: if self.occupancy_samples == 0 {
                0.0
            } else {
                self.occupancy_sum as f64 / self.occupancy_samples as f64
            },
            n_vns,
            buffer_cost,
            faults,
            deadlock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_averages() {
        let mut acc = StatsAccum::default();
        for l in [10u64, 20, 30, 40] {
            acc.record_latency(l);
        }
        acc.sample_occupancy(3);
        acc.sample_occupancy(5);
        let r = acc.finish(100, 0, false, None, 2, 48, None, None);
        assert_eq!(r.completed_transactions, 4);
        assert!((r.avg_latency - 25.0).abs() < 1e-9);
        assert_eq!(r.p99_latency, 40);
        assert_eq!(r.peak_occupancy, 5);
        assert!((r.avg_occupancy - 4.0).abs() < 1e-9);
        assert_eq!(r.buffer_cost, 48);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let acc = StatsAccum::default();
        let r = acc.finish(0, 3, true, None, 1, 8, None, None);
        assert_eq!(r.completed_transactions, 0);
        assert_eq!(r.avg_latency, 0.0);
        assert_eq!(r.p99_latency, 0);
        assert!(r.deadlocked);
        assert_eq!(r.unfinished_ops, 3);
    }
}
