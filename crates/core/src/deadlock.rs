//! The deadlock-condition graph (paper Eq. 4/5) and its acyclicity check.
//!
//! * Eq. 4 (sufficient condition): the protocol cannot deadlock if
//!   `waits ; (waits ∪ queues)*` is acyclic. Equivalently: no cycle of
//!   the union digraph `waits ∪ queues` contains a `waits` edge — which
//!   is what [`find_eq4_cycle`] checks via strongly connected components.
//! * Eq. 5 (graph construction): the graph `G` whose edges are exactly
//!   that composed relation, built here with the **witness bookkeeping**
//!   the algorithm needs: for every edge, the set `qs(e)` of `queues`
//!   steps on its *minimal* witness paths. Breaking an edge is only
//!   possible by separating one of those `queues` pairs onto different
//!   VNs — an edge with empty `qs` is unbreakable (pure-`waits`), which
//!   is how Class 2 manifests inside the algorithm (§VI-A(b)).

use crate::relation::Relation;
use std::collections::BTreeSet;
use vnet_graph::paths::{all_shortest_paths, bfs_distances};
use vnet_graph::{DiGraph, NodeId};
use vnet_protocol::MsgId;

/// The kind of a step in the union digraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// A `waits` edge.
    Waits,
    /// A `queues` edge.
    Queues,
}

/// Witness data attached to each condition-graph edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWitness {
    /// The `queues` pairs appearing on minimal witness paths. Empty for
    /// pure-`waits` edges (which no VN assignment can break).
    pub qs: BTreeSet<(MsgId, MsgId)>,
    /// Length (in relation steps) of the minimal witness paths.
    pub path_len: usize,
}

/// The deadlock-condition graph `G` of Eq. 5.
#[derive(Debug)]
pub struct ConditionGraph {
    /// Nodes are message ids; edges carry their witnesses.
    pub graph: DiGraph<MsgId, EdgeWitness>,
}

impl ConditionGraph {
    /// The Eq. 6 weight of an edge: 1 if breakable, `2^|V| + 1`
    /// (saturating) otherwise.
    pub fn weight(&self, witness: &EdgeWitness) -> u128 {
        if witness.qs.is_empty() {
            let v = self.graph.node_count() as u32;
            if v >= 127 {
                u128::MAX
            } else {
                (1u128 << v) + 1
            }
        } else {
            1
        }
    }
}

/// Builds the union digraph `waits ∪ queues` with labeled (possibly
/// parallel) edges.
pub fn union_digraph(waits: &Relation, queues: &Relation) -> DiGraph<MsgId, StepKind> {
    assert_eq!(waits.universe(), queues.universe(), "universe mismatch");
    let n = waits.universe();
    let mut g = DiGraph::with_capacity(n, waits.len() + queues.len());
    for i in 0..n {
        g.add_node(MsgId(i));
    }
    for (a, b) in waits.iter() {
        g.add_edge(NodeId(a.0), NodeId(b.0), StepKind::Waits);
    }
    for (a, b) in queues.iter() {
        g.add_edge(NodeId(a.0), NodeId(b.0), StepKind::Queues);
    }
    g
}

/// Checks Eq. 4: returns a message cycle containing at least one `waits`
/// edge if one exists, or `None` if the condition holds (no deadlock).
pub fn find_eq4_cycle(waits: &Relation, queues: &Relation) -> Option<Vec<MsgId>> {
    let u = union_digraph(waits, queues);
    let sccs = vnet_graph::scc::tarjan(&u);
    for (eid, s, d) in u.edges() {
        if *u.edge(eid) != StepKind::Waits {
            continue;
        }
        if s == d {
            return Some(vec![MsgId(s.index())]);
        }
        if sccs.same_component(s, d) {
            // Reconstruct: the waits edge s→d plus a path d→s inside the
            // union digraph (it exists since they share an SCC).
            let path = vnet_graph::paths::shortest_path(&u, d, s)
                .expect("same SCC implies a path back");
            let mut cycle = vec![MsgId(s.index()), MsgId(d.index())];
            for e in path {
                let (_, to) = u.endpoints(e);
                if to != s {
                    cycle.push(MsgId(to.index()));
                }
            }
            return Some(cycle);
        }
    }
    None
}

/// Like [`find_eq4_cycle`] but returns the cycle's *edges* with their
/// step kinds, so callers can extract the `queues` pairs that must be
/// separated to break it.
pub fn find_eq4_cycle_edges(
    waits: &Relation,
    queues: &Relation,
) -> Option<Vec<(MsgId, MsgId, StepKind)>> {
    let u = union_digraph(waits, queues);
    let sccs = vnet_graph::scc::tarjan(&u);
    for (eid, s, d) in u.edges() {
        if *u.edge(eid) != StepKind::Waits {
            continue;
        }
        if s == d {
            return Some(vec![(MsgId(s.index()), MsgId(d.index()), StepKind::Waits)]);
        }
        if sccs.same_component(s, d) {
            let mut edges = vec![(MsgId(s.index()), MsgId(d.index()), StepKind::Waits)];
            let path = vnet_graph::paths::shortest_path(&u, d, s)
                .expect("same SCC implies a path back");
            for e in path {
                let (from, to) = u.endpoints(e);
                edges.push((MsgId(from.index()), MsgId(to.index()), *u.edge(e)));
            }
            return Some(edges);
        }
    }
    None
}

/// Bound on how many minimal witness paths are enumerated per edge.
/// Minimal paths in these graphs are short (length ≤ 2 under the
/// single-VN start), so this is a safety valve, not a precision knob.
const PATH_CAP: usize = 10_000;

/// Builds the condition graph `G` (Eq. 5) from `waits` and `queues`,
/// remembering `qs(e)` for every edge.
///
/// An edge `a → b` exists iff some path starts with a `waits` step at
/// `a` and reaches `b` through `waits`/`queues` steps (zero or more).
/// `qs(e)` is the union of the `queues` pairs over all minimal-length
/// such paths.
pub fn build_condition_graph(waits: &Relation, queues: &Relation) -> ConditionGraph {
    let n = waits.universe();
    let u = union_digraph(waits, queues);
    let mut g: DiGraph<MsgId, EdgeWitness> = DiGraph::with_capacity(n, 0);
    for i in 0..n {
        g.add_node(MsgId(i));
    }

    // Distances in the union digraph from every node.
    let dist: Vec<Vec<usize>> = (0..n)
        .map(|v| bfs_distances(&u, NodeId(v)))
        .collect();

    for a in 0..n {
        let wsucc: Vec<usize> = waits.image(MsgId(a)).map(|m| m.0).collect();
        if wsucc.is_empty() {
            continue;
        }
        #[allow(clippy::needless_range_loop)]
        for b in 0..n {
            // Minimal total length over waits-successors x: 1 + dist(x, b),
            // with dist 0 when x == b.
            let mut minlen = usize::MAX;
            for &x in &wsucc {
                let d = if x == b { 0 } else { dist[x][b] };
                if d != usize::MAX {
                    minlen = minlen.min(1 + d);
                }
            }
            if minlen == usize::MAX {
                continue;
            }
            let mut qs: BTreeSet<(MsgId, MsgId)> = BTreeSet::new();
            for &x in &wsucc {
                let d = if x == b { 0 } else { dist[x][b] };
                if d == usize::MAX || 1 + d != minlen {
                    continue;
                }
                for path in all_shortest_paths(&u, NodeId(x), NodeId(b), PATH_CAP) {
                    for e in path {
                        if *u.edge(e) == StepKind::Queues {
                            let (s, t) = u.endpoints(e);
                            qs.insert((MsgId(s.index()), MsgId(t.index())));
                        }
                    }
                }
            }
            g.add_edge(NodeId(a), NodeId(b), EdgeWitness { qs, path_len: minlen });
        }
    }
    ConditionGraph { graph: g }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: usize, pairs: &[(usize, usize)]) -> Relation {
        let mut r = Relation::new(n);
        for &(a, b) in pairs {
            r.insert(MsgId(a), MsgId(b));
        }
        r
    }

    #[test]
    fn eq4_holds_without_stalls() {
        let waits = Relation::new(3);
        let queues = rel(3, &[(0, 1), (2, 1)]);
        assert!(find_eq4_cycle(&waits, &queues).is_none());
    }

    #[test]
    fn eq4_detects_waits_queues_cycle() {
        // The §V-B example: GetM(0) —waits→ Data(1) —queues→ GetM(0).
        let waits = rel(2, &[(0, 1)]);
        let queues = rel(2, &[(1, 0)]);
        let cycle = find_eq4_cycle(&waits, &queues).unwrap();
        assert!(cycle.contains(&MsgId(0)));
        assert!(cycle.contains(&MsgId(1)));
    }

    #[test]
    fn eq4_ignores_queues_only_cycles() {
        // A queues-only cycle has no stall to seed a deadlock.
        let waits = Relation::new(2);
        let queues = rel(2, &[(0, 1), (1, 0)]);
        assert!(find_eq4_cycle(&waits, &queues).is_none());
    }

    #[test]
    fn eq4_waits_self_loop_is_a_cycle() {
        let waits = rel(1, &[(0, 0)]);
        let queues = Relation::new(1);
        assert_eq!(find_eq4_cycle(&waits, &queues), Some(vec![MsgId(0)]));
    }

    #[test]
    fn condition_graph_direct_waits_edge_has_empty_qs() {
        let waits = rel(3, &[(0, 1)]);
        let queues = rel(3, &[(2, 1)]);
        let cg = build_condition_graph(&waits, &queues);
        let e = cg.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let w = cg.graph.edge(e);
        assert!(w.qs.is_empty());
        assert_eq!(w.path_len, 1);
    }

    #[test]
    fn condition_graph_records_queues_witness() {
        // 0 —waits→ 1 —queues→ 2 gives edge (0,2) with qs {(1,2)}.
        let waits = rel(3, &[(0, 1)]);
        let queues = rel(3, &[(1, 2)]);
        let cg = build_condition_graph(&waits, &queues);
        let e = cg.graph.find_edge(NodeId(0), NodeId(2)).unwrap();
        let w = cg.graph.edge(e);
        assert_eq!(w.path_len, 2);
        assert_eq!(w.qs, [(MsgId(1), MsgId(2))].into());
    }

    #[test]
    fn minimal_paths_shadow_longer_ones() {
        // Direct waits (0,2) exists alongside 0→1→2; only the length-1
        // witness is minimal, so qs is empty.
        let waits = rel(3, &[(0, 1), (0, 2)]);
        let queues = rel(3, &[(1, 2)]);
        let cg = build_condition_graph(&waits, &queues);
        let e = cg.graph.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert!(cg.graph.edge(e).qs.is_empty());
    }

    #[test]
    fn multiple_minimal_paths_union_their_qs() {
        // 0 —waits→ 1 —queues→ 3 and 0 —waits→ 2 —queues→ 3: both minimal.
        let waits = rel(4, &[(0, 1), (0, 2)]);
        let queues = rel(4, &[(1, 3), (2, 3)]);
        let cg = build_condition_graph(&waits, &queues);
        let e = cg.graph.find_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(
            cg.graph.edge(e).qs,
            [(MsgId(1), MsgId(3)), (MsgId(2), MsgId(3))].into()
        );
    }

    #[test]
    fn self_edge_via_queues_return() {
        // 0 —waits→ 1 —queues→ 0: self edge (0,0) with the queues pair.
        let waits = rel(2, &[(0, 1)]);
        let queues = rel(2, &[(1, 0)]);
        let cg = build_condition_graph(&waits, &queues);
        let e = cg.graph.find_edge(NodeId(0), NodeId(0)).unwrap();
        assert_eq!(cg.graph.edge(e).qs, [(MsgId(1), MsgId(0))].into());
    }

    #[test]
    fn weights_follow_eq6() {
        let waits = rel(3, &[(0, 1)]);
        let queues = rel(3, &[(1, 2)]);
        let cg = build_condition_graph(&waits, &queues);
        let direct = cg.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let via_q = cg.graph.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(cg.weight(cg.graph.edge(via_q)), 1);
        assert_eq!(cg.weight(cg.graph.edge(direct)), (1 << 3) + 1);
    }

    #[test]
    fn no_edges_without_waits() {
        let waits = Relation::new(4);
        let queues = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        let cg = build_condition_graph(&waits, &queues);
        assert_eq!(cg.graph.edge_count(), 0);
    }
}
