//! Workload generation.

use vnet_graph::Rng64;
use vnet_protocol::CoreOp;

/// One core operation to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Earliest cycle at which the op may issue.
    pub at: u64,
    /// Which cache issues it.
    pub cache: usize,
    /// Target address.
    pub addr: usize,
    /// The operation.
    pub op: CoreOp,
}

/// A per-cache sequence of operations (each cache issues in order, one
/// outstanding transaction per address at a time).
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// `queues[c]` — cache `c`'s pending ops, front first.
    pub queues: Vec<Vec<Op>>,
}

impl Workload {
    /// An explicit script.
    pub fn script(n_caches: usize, ops: impl IntoIterator<Item = Op>) -> Self {
        let mut queues = vec![Vec::new(); n_caches];
        for op in ops {
            queues[op.cache].push(op);
        }
        for q in &mut queues {
            q.sort_by_key(|o| o.at);
        }
        Workload { queues }
    }

    /// Uniform random mix: `ops_per_cache` operations per cache over
    /// `n_addrs` addresses — 50% loads, 40% stores, 10% evictions,
    /// issued back-to-back (`at = 0`, pacing left to the protocol).
    pub fn uniform_random(n_caches: usize, n_addrs: usize, ops_per_cache: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut queues = vec![Vec::new(); n_caches];
        for (c, q) in queues.iter_mut().enumerate() {
            for _ in 0..ops_per_cache {
                let op = match rng.gen_range(0, 10) {
                    0..=4 => CoreOp::Load,
                    5..=8 => CoreOp::Store,
                    _ => CoreOp::Evict,
                };
                q.push(Op {
                    at: 0,
                    cache: c,
                    addr: rng.gen_range(0, n_addrs),
                    op,
                });
            }
        }
        Workload { queues }
    }

    /// A write-heavy contention storm on few addresses — the workload
    /// shape that manifests VN deadlocks fastest (everyone upgrading the
    /// same lines).
    pub fn write_storm(n_caches: usize, n_addrs: usize, ops_per_cache: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut queues = vec![Vec::new(); n_caches];
        for (c, q) in queues.iter_mut().enumerate() {
            for _ in 0..ops_per_cache {
                q.push(Op {
                    at: 0,
                    cache: c,
                    addr: rng.gen_range(0, n_addrs),
                    op: CoreOp::Store,
                });
            }
        }
        Workload { queues }
    }

    /// Total operations across all caches.
    pub fn total_ops(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workload_is_seed_deterministic() {
        let a = Workload::uniform_random(3, 2, 10, 1);
        let b = Workload::uniform_random(3, 2, 10, 1);
        assert_eq!(a.queues, b.queues);
        assert_eq!(a.total_ops(), 30);
    }

    #[test]
    fn script_routes_ops_to_caches() {
        let w = Workload::script(
            2,
            [
                Op { at: 5, cache: 1, addr: 0, op: CoreOp::Store },
                Op { at: 0, cache: 1, addr: 1, op: CoreOp::Load },
            ],
        );
        assert!(w.queues[0].is_empty());
        assert_eq!(w.queues[1].len(), 2);
        // Sorted by time.
        assert_eq!(w.queues[1][0].at, 0);
    }

    #[test]
    fn write_storm_is_all_stores() {
        let w = Workload::write_storm(2, 1, 5, 9);
        assert!(w
            .queues
            .iter()
            .flatten()
            .all(|o| o.op == CoreOp::Store && o.addr == 0));
    }
}
