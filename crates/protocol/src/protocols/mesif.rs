//! The MESIF directory protocol — an **extension beyond the paper's
//! evaluated set**, completing the MOESIF family the paper's system
//! model covers (§II).
//!
//! F(orward) designates one *clean* sharer as the data supplier: a GetS
//! that finds a forwarder is served cache-to-cache without touching
//! memory, and the F role migrates to the newest sharer (the Intel
//! scheme). Because the forwarded line is clean, the directory needs no
//! writeback-wait state for F-serving — it only blocks in the MESI-style
//! `S_D` when a *dirty* owner (E/M) is snooped.
//!
//! Classification (verified in tests): with the textbook blocking cache
//! it is **Class 2** like its siblings; with the deferring cache it
//! lands with MSI/MESI in the 2-VN cell — the directory still sometimes
//! blocks.

use super::CacheDiscipline;
use crate::builder::{acts, ProtocolBuilder};
use crate::event::{CoreOp, Guard};
use crate::message::MsgType;
use crate::spec::ProtocolSpec;
use crate::Target;

/// MESIF with the textbook blocking cache — Class 2.
pub fn mesif_blocking_cache() -> ProtocolSpec {
    build("MESIF-blocking-cache", CacheDiscipline::Blocking)
}

/// MESIF with a deferring cache — 2 VNs.
pub fn mesif_nonblocking_cache() -> ProtocolSpec {
    build("MESIF-nonblocking-cache", CacheDiscipline::NonBlocking)
}

fn build(name: &str, disc: CacheDiscipline) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new(name);

    b.msg("GetS", MsgType::Request)
        .msg("GetM", MsgType::Request)
        .msg("PutS", MsgType::Request)
        .msg("PutE", MsgType::Request)
        .msg("PutF", MsgType::Request)
        .msg("PutM", MsgType::Request)
        .msg("Fwd-GetS", MsgType::FwdRequest)
        .msg("Fwd-GetM", MsgType::FwdRequest)
        .msg("Inv", MsgType::FwdRequest)
        .msg("Put-Ack", MsgType::CtrlResponse)
        .msg("Inv-Ack", MsgType::CtrlResponse)
        .msg("Data", MsgType::DataResponse)
        .msg("DataE", MsgType::DataResponse)
        .msg("DataF", MsgType::DataResponse);

    cache_table(&mut b, disc);
    directory_table(&mut b);
    b.build()
}

fn stall_core(b: &mut ProtocolBuilder, state: &str) {
    b.cache_stall_core(state, CoreOp::Load);
    b.cache_stall_core(state, CoreOp::Store);
    b.cache_stall_core(state, CoreOp::Evict);
}

fn cache_table(b: &mut ProtocolBuilder, disc: CacheDiscipline) {
    b.cache_stable(&["I", "S", "F", "E", "M"]);
    b.cache_transient(&[
        "IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "FM_AD", "FM_A", "MI_A", "EI_A", "FI_A",
        "SI_A", "II_A",
    ]);
    if disc == CacheDiscipline::NonBlocking {
        b.cache_transient(&[
            "IS_D_I", "IS_D_FS", "IS_D_FM", "IM_AD_FS", "IM_AD_FM", "IM_A_FS", "IM_A_FM",
            "SM_AD_FS", "SM_AD_FM", "SM_A_FS", "SM_A_FM", "FM_AD_FM", "FM_A_FM",
        ]);
    }
    b.cache_initial("I");

    // --- I ---
    b.cache_on_core("I", CoreOp::Load, acts().send("GetS", Target::Dir).goto("IS_D"));
    b.cache_on_core("I", CoreOp::Store, acts().send("GetM", Target::Dir).goto("IM_AD"));
    b.cache_on_msg("I", "Inv", acts().send("Inv-Ack", Target::Req));

    // --- IS_D --- (Data→S, DataE→E, DataF→F; the exclusive grant makes
    // us an owner before the data arrives, as in MESI)
    stall_core(b, "IS_D");
    b.cache_on_msg_if("IS_D", "Data", Guard::AckZero, acts().goto("S"));
    b.cache_on_msg_if("IS_D", "DataE", Guard::AckZero, acts().goto("E"));
    b.cache_on_msg_if("IS_D", "DataF", Guard::AckZero, acts().goto("F"));
    match disc {
        CacheDiscipline::Blocking => {
            b.cache_stall_msg("IS_D", "Inv");
            b.cache_stall_msg("IS_D", "Fwd-GetS");
            b.cache_stall_msg("IS_D", "Fwd-GetM");
        }
        CacheDiscipline::NonBlocking => {
            b.cache_on_msg("IS_D", "Inv", acts().send("Inv-Ack", Target::Req).goto("IS_D_I"));
            stall_core(b, "IS_D_I");
            b.cache_on_msg_if("IS_D_I", "Data", Guard::AckZero, acts().goto("I"));
            // An F-grant can race an Inv exactly like a shared grant: a
            // later writer invalidates us while DataF is in flight.
            b.cache_on_msg_if("IS_D_I", "DataF", Guard::AckZero, acts().goto("I"));
            b.cache_on_msg("IS_D", "Fwd-GetS", acts().record_reader().goto("IS_D_FS"));
            b.cache_on_msg("IS_D", "Fwd-GetM", acts().record_writer().goto("IS_D_FM"));
            stall_core(b, "IS_D_FS");
            stall_core(b, "IS_D_FM");
            // Only the exclusive grant can be pending when a forward
            // races us (dirty-owner forwards come from dir state M, which
            // only we-as-owner reach through DataE).
            b.cache_on_msg_if(
                "IS_D_FS",
                "DataE",
                Guard::AckZero,
                acts()
                    .send_data("Data", Target::Readers)
                    .send_data("Data", Target::Dir)
                    .goto("S"),
            );
            b.cache_on_msg_if(
                "IS_D_FM",
                "DataE",
                Guard::AckZero,
                acts().send_data_acks_stored("Data", Target::Writer).goto("I"),
            );
        }
    }

    // --- Writes in flight ---
    write_in_flight(b, disc, "IM", WriteFrom::I);
    write_in_flight(b, disc, "SM", WriteFrom::S);
    write_in_flight(b, disc, "FM", WriteFrom::F);

    // --- S ---
    b.cache_on_core("S", CoreOp::Load, acts());
    b.cache_on_core("S", CoreOp::Store, acts().send("GetM", Target::Dir).goto("SM_AD"));
    b.cache_on_core("S", CoreOp::Evict, acts().send("PutS", Target::Dir).goto("SI_A"));
    b.cache_on_msg("S", "Inv", acts().send("Inv-Ack", Target::Req).goto("I"));

    // --- F --- (clean forwarder: serves reads, F migrates to the reader)
    b.cache_on_core("F", CoreOp::Load, acts());
    b.cache_on_core("F", CoreOp::Store, acts().send("GetM", Target::Dir).goto("FM_AD"));
    b.cache_on_core("F", CoreOp::Evict, acts().send("PutF", Target::Dir).goto("FI_A"));
    b.cache_on_msg("F", "Fwd-GetS", acts().send_data("DataF", Target::Req).goto("S"));
    b.cache_on_msg("F", "Inv", acts().send("Inv-Ack", Target::Req).goto("I"));

    // --- E --- (exclusive clean, silent upgrade; dirty-path snoops)
    b.cache_on_core("E", CoreOp::Load, acts());
    b.cache_on_core("E", CoreOp::Store, acts().goto("M"));
    b.cache_on_core("E", CoreOp::Evict, acts().send("PutE", Target::Dir).goto("EI_A"));
    b.cache_on_msg(
        "E",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("S"),
    );
    b.cache_on_msg("E", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("I"));

    // --- M ---
    b.cache_on_core("M", CoreOp::Load, acts());
    b.cache_on_core("M", CoreOp::Store, acts());
    b.cache_on_core("M", CoreOp::Evict, acts().send_data("PutM", Target::Dir).goto("MI_A"));
    b.cache_on_msg(
        "M",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("S"),
    );
    b.cache_on_msg("M", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("I"));

    // --- Evictions in flight ---
    stall_core(b, "MI_A");
    b.cache_on_msg(
        "MI_A",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("SI_A"),
    );
    b.cache_on_msg("MI_A", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("II_A"));
    b.cache_on_msg("MI_A", "Put-Ack", acts().goto("I"));

    stall_core(b, "EI_A");
    b.cache_on_msg(
        "EI_A",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("SI_A"),
    );
    b.cache_on_msg("EI_A", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("II_A"));
    b.cache_on_msg("EI_A", "Put-Ack", acts().goto("I"));

    // FI_A: evicting forwarder still serves one last read (F migrates),
    // and can be invalidated by a racing write.
    stall_core(b, "FI_A");
    b.cache_on_msg("FI_A", "Fwd-GetS", acts().send_data("DataF", Target::Req).goto("SI_A"));
    b.cache_on_msg("FI_A", "Inv", acts().send("Inv-Ack", Target::Req).goto("II_A"));
    b.cache_on_msg("FI_A", "Put-Ack", acts().goto("I"));

    stall_core(b, "SI_A");
    b.cache_on_msg("SI_A", "Inv", acts().send("Inv-Ack", Target::Req).goto("II_A"));
    b.cache_on_msg("SI_A", "Put-Ack", acts().goto("I"));

    stall_core(b, "II_A");
    b.cache_on_msg("II_A", "Put-Ack", acts().goto("I"));
}

#[derive(PartialEq, Clone, Copy)]
enum WriteFrom {
    I,
    S,
    F,
}

fn write_in_flight(b: &mut ProtocolBuilder, disc: CacheDiscipline, fam: &str, from: WriteFrom) {
    let ad = format!("{fam}_AD");
    let a = format!("{fam}_A");

    if from == WriteFrom::I {
        b.cache_stall_core(&ad, CoreOp::Load);
        b.cache_stall_core(&a, CoreOp::Load);
    } else {
        b.cache_on_core(&ad, CoreOp::Load, acts());
        b.cache_on_core(&a, CoreOp::Load, acts());
    }
    for s in [&ad, &a] {
        b.cache_stall_core(s, CoreOp::Store);
        b.cache_stall_core(s, CoreOp::Evict);
    }

    b.cache_on_msg_if(&ad, "Data", Guard::AckZero, acts().add_acks_from_msg().goto("M"));
    b.cache_on_msg_if(&ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(&a));
    b.cache_on_msg(&ad, "Inv-Ack", acts().dec_needed_acks());
    b.cache_on_msg_if(&a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
    b.cache_on_msg_if(&a, "Inv-Ack", Guard::LastAck, acts().dec_needed_acks().goto("M"));

    if from != WriteFrom::I {
        b.cache_on_msg(&ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD"));
    }

    match disc {
        CacheDiscipline::Blocking => {
            for s in [&ad, &a] {
                b.cache_stall_msg(s, "Fwd-GetM");
                // Only the F-holder can be asked to forward clean data
                // mid-upgrade; dirty forwards can't reach S/I-originated
                // writes.
                if from == WriteFrom::F {
                    b.cache_stall_msg(s, "Fwd-GetS");
                }
            }
        }
        CacheDiscipline::NonBlocking => {
            if from == WriteFrom::F {
                // Serve reads from the still-clean copy without stalling;
                // the directory has already re-pointed F at the reader.
                b.cache_on_msg(&ad, "Fwd-GetS", acts().send_data("DataF", Target::Req));
                b.cache_on_msg(&a, "Fwd-GetS", acts().send_data("DataF", Target::Req));
            }
            let fm_ad = format!("{ad}_FM");
            let fm_a = format!("{a}_FM");
            if from != WriteFrom::F {
                let fs_ad = format!("{ad}_FS");
                let fs_a = format!("{a}_FS");
                b.cache_on_msg(&ad, "Fwd-GetS", acts().record_reader().goto(&fs_ad));
                b.cache_on_msg(&a, "Fwd-GetS", acts().record_reader().goto(&fs_a));
                for st in [&fs_ad, &fs_a] {
                    stall_core(b, st);
                }
                b.cache_on_msg_if(
                    &fs_ad,
                    "Data",
                    Guard::AckZero,
                    acts()
                        .add_acks_from_msg()
                        .send_data("Data", Target::Readers)
                        .send_data("Data", Target::Dir)
                        .goto("S"),
                );
                b.cache_on_msg_if(
                    &fs_ad,
                    "Data",
                    Guard::AckPositive,
                    acts().add_acks_from_msg().goto(&fs_a),
                );
                b.cache_on_msg(&fs_ad, "Inv-Ack", acts().dec_needed_acks());
                b.cache_on_msg_if(&fs_a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
                b.cache_on_msg_if(
                    &fs_a,
                    "Inv-Ack",
                    Guard::LastAck,
                    acts()
                        .dec_needed_acks()
                        .send_data("Data", Target::Readers)
                        .send_data("Data", Target::Dir)
                        .goto("S"),
                );
                if from == WriteFrom::S {
                    b.cache_on_msg(&fs_ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD_FS"));
                }
            }
            b.cache_on_msg(&ad, "Fwd-GetM", acts().record_writer().goto(&fm_ad));
            b.cache_on_msg(&a, "Fwd-GetM", acts().record_writer().goto(&fm_a));
            for st in [&fm_ad, &fm_a] {
                stall_core(b, st);
            }
            b.cache_on_msg_if(
                &fm_ad,
                "Data",
                Guard::AckZero,
                acts().add_acks_from_msg().send_data("Data", Target::Writer).goto("I"),
            );
            b.cache_on_msg_if(
                &fm_ad,
                "Data",
                Guard::AckPositive,
                acts().add_acks_from_msg().goto(&fm_a),
            );
            b.cache_on_msg(&fm_ad, "Inv-Ack", acts().dec_needed_acks());
            b.cache_on_msg_if(&fm_a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
            b.cache_on_msg_if(
                &fm_a,
                "Inv-Ack",
                Guard::LastAck,
                acts().dec_needed_acks().send_data("Data", Target::Writer).goto("I"),
            );
            if from == WriteFrom::S {
                b.cache_on_msg(&fm_ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD_FM"));
            }
        }
    }
}

fn directory_table(b: &mut ProtocolBuilder) {
    b.dir_stable(&["I", "S", "F", "M"]);
    b.dir_transient(&["S_D"]);
    b.dir_initial("I");

    // --- I --- (exclusive grant)
    b.dir_on_msg(
        "I",
        "GetS",
        acts().send_data("DataE", Target::Req).set_owner_to_req().goto("M"),
    );
    b.dir_on_msg(
        "I",
        "GetM",
        acts().send_data_acks("Data", Target::Req).set_owner_to_req().goto("M"),
    );
    for put in ["PutS", "PutF"] {
        b.dir_on_msg("I", put, acts().send("Put-Ack", Target::Req));
    }
    b.dir_on_msg_if("I", "PutE", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if("I", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S --- (sharers, no forwarder: memory supplies; the reader
    // becomes the new forwarder)
    b.dir_on_msg(
        "S",
        "GetS",
        acts()
            .send_data("DataF", Target::Req)
            .add_req_to_sharers()
            .set_owner_to_req()
            .goto("F"),
    );
    b.dir_on_msg(
        "S",
        "GetM",
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .set_owner_to_req()
            .goto("M"),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::NotLastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::LastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req).goto("I"),
    );
    for put in ["PutE", "PutM"] {
        b.dir_on_msg_if(
            "S",
            put,
            Guard::NotFromOwner,
            acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
        );
    }
    b.dir_on_msg(
        "S",
        "PutF",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );

    // --- F --- (forwarder recorded as owner AND kept in the sharer set,
    // so ack counts and invalidations include it automatically)
    b.dir_on_msg(
        "F",
        "GetS",
        acts()
            .send("Fwd-GetS", Target::Owner)
            .add_req_to_sharers()
            .set_owner_to_req(),
    );
    b.dir_on_msg_if(
        "F",
        "GetM",
        Guard::ReqIsOwner,
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .goto("M"),
    );
    b.dir_on_msg_if(
        "F",
        "GetM",
        Guard::ReqNotOwner,
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .set_owner_to_req()
            .goto("M"),
    );
    // The forwarder evicting clean data demotes the line to plain S.
    b.dir_on_msg_if(
        "F",
        "PutF",
        Guard::FromOwner,
        acts().remove_req_from_sharers().clear_owner().send("Put-Ack", Target::Req).goto("S"),
    );
    b.dir_on_msg_if(
        "F",
        "PutF",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg(
        "F",
        "PutS",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    for put in ["PutE", "PutM"] {
        b.dir_on_msg_if(
            "F",
            put,
            Guard::NotFromOwner,
            acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
        );
    }

    // --- M --- (dirty exclusive; MESI shape)
    b.dir_on_msg(
        "M",
        "GetS",
        acts()
            .send("Fwd-GetS", Target::Owner)
            .add_req_to_sharers()
            .add_owner_to_sharers()
            .clear_owner()
            .goto("S_D"),
    );
    b.dir_on_msg(
        "M",
        "GetM",
        acts().send("Fwd-GetM", Target::Owner).set_owner_to_req(),
    );
    for put in ["PutS", "PutF"] {
        b.dir_on_msg("M", put, acts().send("Put-Ack", Target::Req));
    }
    b.dir_on_msg_if(
        "M",
        "PutE",
        Guard::FromOwner,
        acts().clear_owner().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "PutE", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if(
        "M",
        "PutM",
        Guard::FromOwner,
        acts().copy_to_mem().clear_owner().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S_D --- (dirty-owner read in flight; the blocking state)
    b.dir_stall_msg("S_D", "GetS");
    b.dir_stall_msg("S_D", "GetM");
    b.dir_on_msg(
        "S_D",
        "PutS",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg(
        "S_D",
        "PutF",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    for put in ["PutE", "PutM"] {
        b.dir_on_msg_if(
            "S_D",
            put,
            Guard::NotFromOwner,
            acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
        );
    }
    b.dir_on_msg("S_D", "Data", acts().copy_to_mem().goto("S"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trigger;

    #[test]
    fn both_variants_validate() {
        mesif_blocking_cache().validate().unwrap();
        mesif_nonblocking_cache().validate().unwrap();
    }

    #[test]
    fn forwarder_serves_and_migrates_f() {
        let p = mesif_blocking_cache();
        let f = p.cache().state_by_name("F").unwrap();
        let s = p.cache().state_by_name("S").unwrap();
        let fwd = p.message_by_name("Fwd-GetS").unwrap();
        let dataf = p.message_by_name("DataF").unwrap();
        let cell = p.cache().cell(f, Trigger::msg(fwd)).unwrap();
        let entry = cell.entry().unwrap();
        assert_eq!(entry.next, Some(s));
        assert!(entry.sends().any(|(m, _)| m == dataf));
    }

    #[test]
    fn clean_forwarding_never_blocks_the_directory() {
        // Dir state F has no stall cells — only the dirty path (S_D)
        // blocks.
        let p = mesif_blocking_cache();
        let f = p.directory().state_by_name("F").unwrap();
        let stalls: Vec<_> = p
            .directory()
            .message_stalls()
            .filter(|(s, _)| *s == f)
            .collect();
        assert!(stalls.is_empty());
        let sd = p.directory().state_by_name("S_D").unwrap();
        assert_eq!(
            p.directory().message_stalls().filter(|(s, _)| *s == sd).count(),
            2
        );
    }

    #[test]
    fn nonblocking_variant_has_no_cache_stalls() {
        let p = mesif_nonblocking_cache();
        assert_eq!(p.cache().message_stalls().count(), 0);
    }

    #[test]
    fn getm_in_f_is_served_from_memory() {
        // The F line is clean, so the directory answers writes itself —
        // no forward to the F-holder, just invalidations.
        let p = mesif_blocking_cache();
        let f = p.directory().state_by_name("F").unwrap();
        let getm = p.message_by_name("GetM").unwrap();
        let cell = p
            .directory()
            .cell(f, Trigger::msg_if(getm, Guard::ReqNotOwner))
            .unwrap();
        let data = p.message_by_name("Data").unwrap();
        let sends: Vec<_> = cell.entry().unwrap().sends().collect();
        assert!(sends.iter().any(|(m, _)| *m == data));
        assert!(!sends
            .iter()
            .any(|(m, _)| p.message_name(*m).starts_with("Fwd")));
    }
}
