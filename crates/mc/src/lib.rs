//! # vnet-mc
//!
//! An explicit-state model checker for the protocol specifications of
//! `vnet-protocol`, reproducing the paper's §VII verification setup:
//!
//! * **The Figure-4 ICN model.** Each virtual network is modeled by a
//!   pair of *global* FIFO buffers plus one input FIFO per endpoint.
//!   Without point-to-point ordering, a sender nondeterministically picks
//!   either global buffer, which lets the checker manifest every possible
//!   queueing/reordering an arbitrary topology could produce. With
//!   point-to-point ordering, each (source, destination) pair is pinned
//!   to one buffer by a static mapping, and different mappings are
//!   checked as separate runs.
//! * **System sizes that manifest the bugs.** The paper observes that
//!   the multi-directory deadlocks need ≥ 3 caches, 2 addresses, and 2
//!   directories; [`McConfig`] defaults match that.
//! * **Bounded BFS with level reporting.** Complete exploration when the
//!   space fits, otherwise a bounded verdict with the reached level —
//!   the same methodology (and the same kind of output) as the paper's
//!   Murphi runs.
//!
//! The checker finds three kinds of outcomes: a [`Verdict::Deadlock`]
//! with a shortest counterexample trace, a clean [`Verdict::NoDeadlock`]
//! (complete or bounded), or a [`Verdict::ModelError`] when a controller
//! receives a message its table does not define (a specification bug).
//!
//! ## Example
//!
//! ```
//! use vnet_mc::{explore, McConfig};
//! use vnet_protocol::protocols;
//!
//! // Textbook MSI with the textbook 3-VN mapping deadlocks with
//! // multiple directories (Table I experiment (6)).
//! let spec = protocols::msi_blocking_cache();
//! let cfg = McConfig::figure3(&spec);
//! let verdict = explore(&spec, &cfg);
//! assert!(verdict.is_deadlock());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod exec;
pub mod explore;
pub mod flows;
pub mod intern;
pub mod invariant;
pub mod murphi;
pub mod parallel;
pub mod procshard;
pub mod rules;
pub mod spill;
pub mod state;
pub mod symmetry;
pub mod trace;

pub use campaign::{
    run_campaign, table1_config, CampaignConfig, CampaignEntry, CampaignReport, Isolation,
    RunReport,
};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
pub use config::{IcnOrder, InjectionBudget, McConfig, VnMap};
pub use flows::{
    check_parameterized, check_vn_map, extract_flows, flows_canonical, Flow, FlowProvenance,
    FlowVerdict,
};
pub use intern::{InternError, LabelTable, StateArena, StateId};
pub use invariant::Swmr;
pub use explore::{
    explore, explore_budgeted, explore_budgeted_with, explore_checkpointed, explore_with, resume,
    CheckpointedRun, ExploreStats, Verdict,
};
pub use parallel::{
    explore_parallel, explore_parallel_supervised, resume_parallel, PanicInjection, ParallelOpts,
};
pub use procshard::{explore_procshard, run_worker, ProcOpts, WorkerOpts};
pub use spill::{SpillArena, SpillConfig, SpillStats};
pub use state::{GlobalState, Msg, Node};
pub use trace::Trace;
