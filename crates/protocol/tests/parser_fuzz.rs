//! Robustness: the DSL parser must reject garbage gracefully (error,
//! never panic), and must never produce a spec that fails validation's
//! structural guarantees silently.
//!
//! Seeded random fuzzing via the in-repo [`Rng64`] generator (no
//! crates.io access, so no `proptest`); the case count is high enough
//! to cover the grammar productions many times over.

use vnet_graph::Rng64;
use vnet_protocol::dsl;

/// Arbitrary text — random printable/unicode/control characters —
/// never panics the parser.
#[test]
fn arbitrary_text_never_panics() {
    let mut rng = Rng64::seed_from_u64(0xF422);
    // A pool biased toward characters the grammar reacts to.
    let pool: Vec<char> = ('\u{20}'..='\u{7e}')
        .chain(['\n', '\t', '\u{0}', '\u{7f}', 'é', 'λ', '→', '\u{1F600}'])
        .collect();
    for _ in 0..256 {
        let len = rng.gen_range(0, 400);
        let s: String = (0..len)
            .map(|_| pool[rng.gen_range(0, pool.len())])
            .collect();
        let _ = dsl::parse(&s);
    }
}

/// Line-shaped garbage built from the grammar's own keywords never
/// panics and, when it parses, round-trips.
#[test]
fn keyword_soup_never_panics() {
    let lines = [
        "protocol p",
        "message Get req",
        "message Dat data",
        "message Fwd fwd",
        "cache-states stable: I V",
        "cache-states transient: IV",
        "dir-states stable: I",
        "cache-initial I",
        "dir-initial I",
        "cache I Load = send Get Dir; -> IV",
        "cache IV Dat[ack=0] = -> V",
        "cache IV Get = stall",
        "dir I Get = send Dat Req data",
        "dir I Dat = stall",
        "cache I Load = bogus action",
        "cache Z Load = send Get Dir",
        "dir I Nope = stall",
        "# comment",
        "",
    ];
    let mut rng = Rng64::seed_from_u64(0x50FF);
    for _ in 0..256 {
        let n = rng.gen_range(0, 20);
        let text = (0..n)
            .map(|_| lines[rng.gen_range(0, lines.len())])
            .collect::<Vec<_>>()
            .join("\n");
        if let Ok(spec) = dsl::parse(&text) {
            // Anything that parses must re-serialize and re-parse to the
            // same structure.
            let round = dsl::to_text(&spec);
            let again = dsl::parse(&round).expect("round trip of parsed spec");
            assert_eq!(dsl::to_text(&again), round);
        }
    }
}

/// Mutating a valid spec's text (deleting one line) never panics.
#[test]
fn line_deletion_never_panics() {
    let base = dsl::to_text(&vnet_protocol::protocols::msi_blocking_cache());
    let lines: Vec<&str> = base.lines().collect();
    for idx in 0..lines.len() {
        let mutated: Vec<&str> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, l)| *l)
            .collect();
        let _ = dsl::parse(&mutated.join("\n"));
    }
}

#[test]
fn truncated_specs_error_not_panic() {
    let base = dsl::to_text(&vnet_protocol::protocols::chi());
    for cut in (0..base.len()).step_by(97) {
        // Cut at a char boundary.
        let mut end = cut;
        while !base.is_char_boundary(end) {
            end += 1;
        }
        let _ = dsl::parse(&base[..end]);
    }
}
