//! Executable actions: the contents of a table cell.
//!
//! Actions are interpreted concretely by the model checker (`vnet-mc`) and
//! the NoC simulator (`vnet-sim`); the static analysis (`vnet-core`) only
//! inspects [`Action::sends`] to derive the `causes` relation.

use crate::message::MsgId;
use std::fmt;

/// Destination of a [`Action::Send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The requestor associated with the message being processed: for a
    /// request arriving at a directory this is the sender; for a forwarded
    /// request arriving at a cache it is the *original* requestor carried
    /// in the message.
    Req,
    /// The home directory of the block's address.
    Dir,
    /// The owner cache recorded at the directory.
    Owner,
    /// Every requestor recorded by [`Action::RecordReader`] (a multicast;
    /// the reader set is cleared after the send). Used by nonblocking
    /// caches completing deferred Fwd-GetS forwards.
    Readers,
    /// The requestor recorded by [`Action::RecordWriter`] (cleared after
    /// the send). Used by nonblocking caches completing a deferred
    /// Fwd-GetM forward.
    Writer,
}

impl Target {
    /// `true` if the target is resolved to a cache controller,
    /// `false` if to a directory.
    pub fn is_cache(self) -> bool {
        !matches!(self, Target::Dir)
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Req => f.write_str("Req"),
            Target::Dir => f.write_str("Dir"),
            Target::Owner => f.write_str("Owner"),
            Target::Readers => f.write_str("Readers"),
            Target::Writer => f.write_str("Writer"),
        }
    }
}

/// What a sent message carries (beyond its name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Payload {
    /// Control-only.
    #[default]
    None,
    /// The cache line.
    Data,
    /// The cache line plus an ack count equal to the number of sharers
    /// other than the requestor at send time (directory → requestor on
    /// GetM from state S).
    DataAckFromSharers,
    /// An ack count only, computed like [`Payload::DataAckFromSharers`]
    /// but without data (directory → owner on Fwd-GetM in MOSI/MOESI, or
    /// directory → upgrading owner as an AckCount message).
    AckFromSharers,
    /// The cache line plus the ack count copied from the message being
    /// processed (owner → requestor when serving a Fwd-GetM that carried
    /// the count).
    DataAckFromMsg,
    /// The cache line plus the ack count recorded by
    /// [`Action::RecordWriter`] (nonblocking caches completing a deferred
    /// Fwd-GetM).
    DataAckStored,
}

/// One primitive step of a table entry.
///
/// The directory-bookkeeping actions (owner/sharer manipulation, pending
/// counters) are no-ops when executed at a cache, and vice versa — the
/// validator rejects misplaced actions instead of relying on that.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Send `msg` to `to` carrying `payload`.
    Send {
        /// The message name to send.
        msg: MsgId,
        /// The destination.
        to: Target,
        /// The payload.
        payload: Payload,
    },
    /// Directory: send `msg` to every current sharer except the requestor.
    SendToSharersExceptReq {
        /// The message name to send (an invalidation, typically).
        msg: MsgId,
    },
    /// Directory: record the requestor as the new owner.
    SetOwnerToReq,
    /// Directory: clear the recorded owner.
    ClearOwner,
    /// Directory: add the requestor to the sharer set.
    AddReqToSharers,
    /// Directory: add the current owner to the sharer set.
    AddOwnerToSharers,
    /// Directory: remove the requestor from the sharer set.
    RemoveReqFromSharers,
    /// Directory: clear the sharer set.
    ClearSharers,
    /// Directory: write the message's data back to memory (a no-op for
    /// deadlock analysis; kept for fidelity to the textbook tables).
    CopyDataToMem,
    /// Cache: add the requestor of the message being processed to the
    /// deferred-reader set, for a later [`Target::Readers`] multicast.
    RecordReader,
    /// Cache: remember the requestor *and ack count* of the message being
    /// processed, for a later [`Target::Writer`] send (optionally with
    /// [`Payload::DataAckStored`]).
    RecordWriter,
    /// Directory: set the pending-ack counter to the number of sharers
    /// other than the requestor (used with [`Action::SendToSharersExceptReq`]).
    SetPendingToOtherSharers,
    /// Directory: decrement the pending-ack counter.
    DecPending,
    /// Cache: add the received message's ack count to the needed-acks
    /// counter (reception of Data with ack>0).
    AddAcksFromMsg,
    /// Cache: decrement the needed-acks counter (reception of Inv-Ack).
    DecNeededAcks,
}

impl Action {
    /// If this action sends a message, the `(message, target)` pair.
    /// [`Action::SendToSharersExceptReq`] reports target [`Target::Req`]'s
    /// complement — i.e. it is a cache-bound multicast, reported with a
    /// synthetic [`Target::Owner`]-like cache destination: the static
    /// analysis only needs the destination controller *kind*, which for
    /// sharers is always a cache.
    pub fn sends(&self) -> Option<(MsgId, Target)> {
        match self {
            Action::Send { msg, to, .. } => Some((*msg, *to)),
            // Sharers are caches; `Owner` stands in as "some cache".
            Action::SendToSharersExceptReq { msg } => Some((*msg, Target::Owner)),
            _ => None,
        }
    }

    /// `true` for directory-only bookkeeping actions.
    pub fn is_directory_only(&self) -> bool {
        matches!(
            self,
            Action::SendToSharersExceptReq { .. }
                | Action::SetOwnerToReq
                | Action::ClearOwner
                | Action::AddReqToSharers
                | Action::AddOwnerToSharers
                | Action::RemoveReqFromSharers
                | Action::ClearSharers
                | Action::CopyDataToMem
                | Action::SetPendingToOtherSharers
                | Action::DecPending
        )
    }

    /// `true` for cache-only bookkeeping actions.
    pub fn is_cache_only(&self) -> bool {
        matches!(
            self,
            Action::AddAcksFromMsg
                | Action::DecNeededAcks
                | Action::RecordReader
                | Action::RecordWriter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_extraction() {
        let a = Action::Send {
            msg: MsgId(1),
            to: Target::Dir,
            payload: Payload::Data,
        };
        assert_eq!(a.sends(), Some((MsgId(1), Target::Dir)));
        assert_eq!(Action::SetOwnerToReq.sends(), None);
        let m = Action::SendToSharersExceptReq { msg: MsgId(2) };
        let (msg, to) = m.sends().unwrap();
        assert_eq!(msg, MsgId(2));
        assert!(to.is_cache());
    }

    #[test]
    fn target_kind() {
        assert!(Target::Req.is_cache());
        assert!(Target::Owner.is_cache());
        assert!(Target::Readers.is_cache());
        assert!(Target::Writer.is_cache());
        assert!(!Target::Dir.is_cache());
    }

    #[test]
    fn side_classification() {
        assert!(Action::ClearSharers.is_directory_only());
        assert!(Action::DecNeededAcks.is_cache_only());
        assert!(Action::RecordReader.is_cache_only());
        assert!(Action::RecordWriter.is_cache_only());
        assert!(!Action::CopyDataToMem.is_cache_only());
    }
}
