//! Property-based tests for the graph kernels, checked against naive
//! oracles.

use proptest::prelude::*;
use std::collections::BTreeSet;
use vnet_graph::coloring::{dsatur_coloring, exact_coloring};
use vnet_graph::cycles::elementary_cycles;
use vnet_graph::fas::{heuristic_feedback_arc_set, is_acyclic_without, minimum_feedback_arc_set};
use vnet_graph::scc::tarjan;
use vnet_graph::{BitSet, DiGraph, NodeId, UnGraph};

fn digraph(n: usize, edges: &[(usize, usize)]) -> DiGraph<(), u128> {
    let mut g = DiGraph::new();
    let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for &(a, b) in edges {
        g.add_edge(ns[a % n], ns[b % n], 1);
    }
    g
}

/// Naive reachability for the SCC oracle.
fn reaches(g: &DiGraph<(), u128>, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if std::mem::replace(&mut seen[v.index()], true) {
            continue;
        }
        stack.extend(g.successors(v));
    }
    // `from == to` needs a nonempty path; restart from successors.
    false
}

fn strictly_reaches(g: &DiGraph<(), u128>, from: NodeId, to: NodeId) -> bool {
    g.successors(from).any(|s| s == to || reaches(g, s, to))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tarjan_matches_mutual_reachability(
        n in 1usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
    ) {
        let g = digraph(n, &edges);
        let sccs = tarjan(&g);
        for a in 0..n {
            for b in 0..n {
                let (na, nb) = (NodeId(a), NodeId(b));
                let same = sccs.same_component(na, nb);
                let oracle = a == b
                    || (strictly_reaches(&g, na, nb) && strictly_reaches(&g, nb, na));
                prop_assert_eq!(same, oracle, "nodes {} {}", a, b);
            }
        }
    }

    #[test]
    fn exact_fas_is_sound_and_never_worse(
        n in 2usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..16),
    ) {
        let g = digraph(n, &edges);
        let exact = minimum_feedback_arc_set(&g, |&w| w);
        let heur = heuristic_feedback_arc_set(&g, |&w| w);
        prop_assert!(is_acyclic_without(&g, &exact.edges));
        prop_assert!(is_acyclic_without(&g, &heur.edges));
        prop_assert!(exact.weight <= heur.weight);
        // Minimality against brute force for small edge counts.
        if g.edge_count() <= 10 {
            let m = g.edge_count();
            let mut best = u128::MAX;
            for mask in 0u32..(1 << m) {
                let removed: Vec<vnet_graph::EdgeId> = (0..m)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(vnet_graph::EdgeId)
                    .collect();
                if is_acyclic_without(&g, &removed) {
                    best = best.min(removed.len() as u128);
                }
            }
            prop_assert_eq!(exact.weight, best, "brute force disagrees");
        }
    }

    #[test]
    fn exact_coloring_is_proper_and_minimal(
        n in 1usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..14),
    ) {
        let mut g: UnGraph<()> = UnGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in &edges {
            if a % n != b % n {
                g.add_edge(ns[a % n], ns[b % n]);
            }
        }
        let exact = exact_coloring(&g);
        let ds = dsatur_coloring(&g);
        prop_assert!(exact.is_proper(&g));
        prop_assert!(ds.is_proper(&g));
        prop_assert!(exact.num_colors <= ds.num_colors);
        // Brute-force chromatic number for tiny graphs.
        if n <= 5 {
            let mut best = n;
            'k: for k in 1..=n {
                let mut assign = vec![0usize; n];
                loop {
                    let proper = g.edges().all(|(a, b)| assign[a.index()] != assign[b.index()]);
                    if proper {
                        best = k;
                        break 'k;
                    }
                    // increment base-k counter
                    let mut i = 0;
                    loop {
                        if i == n {
                            break;
                        }
                        assign[i] += 1;
                        if assign[i] < k {
                            break;
                        }
                        assign[i] = 0;
                        i += 1;
                    }
                    if i == n {
                        break;
                    }
                }
            }
            if g.edge_count() == 0 {
                prop_assert_eq!(exact.num_colors, usize::from(n > 0));
            } else {
                prop_assert_eq!(exact.num_colors, best);
            }
        }
    }

    #[test]
    fn johnson_cycles_are_genuine_and_distinct(
        n in 1usize..6,
        edges in proptest::collection::vec((0usize..6, 0usize..6), 0..14),
    ) {
        let g = digraph(n, &edges);
        let cycles = elementary_cycles(&g, 10_000);
        let mut seen = BTreeSet::new();
        for c in &cycles {
            // Edge chain closes.
            let nodes = c.nodes(&g);
            for (i, &e) in c.edges.iter().enumerate() {
                let (s, d) = g.endpoints(e);
                prop_assert_eq!(s, nodes[i]);
                let next = nodes[(i + 1) % nodes.len()];
                prop_assert_eq!(d, next);
            }
            // Elementary: node-distinct.
            let set: BTreeSet<_> = nodes.iter().collect();
            prop_assert_eq!(set.len(), nodes.len());
            prop_assert!(seen.insert(c.edges.clone()), "duplicate cycle");
        }
        // Consistency with cycle detection.
        prop_assert_eq!(cycles.is_empty(), !vnet_graph::scc::has_cycle(&g));
    }

    #[test]
    fn bitset_behaves_like_btreeset(
        ops in proptest::collection::vec((0usize..3, 0usize..64), 1..60),
    ) {
        let mut bs = BitSet::with_capacity(64);
        let mut model = BTreeSet::new();
        for (op, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(v), model.insert(v));
                }
                1 => {
                    prop_assert_eq!(bs.remove(v), model.remove(&v));
                }
                _ => {
                    prop_assert_eq!(bs.contains(v), model.contains(&v));
                }
            }
        }
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn closure_is_transitive_and_supports_edges(
        n in 1usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..16),
    ) {
        let g = digraph(n, &edges);
        let tc = vnet_graph::closure::transitive_closure(&g);
        // Contains every edge.
        for (_, s, d) in g.edges() {
            prop_assert!(tc.reachable(s, d));
        }
        // Transitive.
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if tc.reachable(NodeId(a), NodeId(b)) && tc.reachable(NodeId(b), NodeId(c)) {
                        prop_assert!(tc.reachable(NodeId(a), NodeId(c)));
                    }
                }
            }
        }
        // Sound: agrees with naive reachability.
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    tc.reachable(NodeId(a), NodeId(b)),
                    strictly_reaches(&g, NodeId(a), NodeId(b))
                );
            }
        }
    }
}
