//! The MSI directory protocol of Nagarajan et al. (Figures 1–2 of the
//! paper), in both cache disciplines.
//!
//! The *blocking-cache* variant is the verbatim textbook protocol: caches
//! stall forwarded requests (Fwd-GetS/Fwd-GetM) and invalidations received
//! in transient states. As the paper shows (§III-A), with multiple
//! directories this protocol has a `waits` cycle
//! `Fwd-GetM —waits→ Fwd-GetM` and is therefore **Class 2**: it deadlocks
//! no matter how messages are mapped to VNs.
//!
//! The *nonblocking-cache* variant defers forwarded requests instead:
//! each `IM/SM`-family transient state gets `…_FS` / `…_FM` companions
//! that remember the forward's requestor and serve it when the in-flight
//! write completes. The directory is unchanged (it still blocks in `S_D`),
//! so the protocol lands in Table I cell (5): **2 VNs** suffice, with
//! requests on one VN and everything else on the other.

use super::CacheDiscipline;
use crate::builder::{acts, ProtocolBuilder};
use crate::event::{CoreOp, Guard};
use crate::message::MsgType;
use crate::spec::ProtocolSpec;
use crate::Target;

/// Textbook MSI (paper Figures 1–2): blocking cache, sometimes-blocking
/// directory. Table I experiment (6) — Class 2.
pub fn msi_blocking_cache() -> ProtocolSpec {
    build("MSI-blocking-cache", CacheDiscipline::Blocking)
}

/// MSI with a deferring (never-stalling) cache and the textbook
/// sometimes-blocking directory. Table I experiment (5) — 2 VNs.
pub fn msi_nonblocking_cache() -> ProtocolSpec {
    build("MSI-nonblocking-cache", CacheDiscipline::NonBlocking)
}

fn build(name: &str, cache: CacheDiscipline) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new(name);

    // Message vocabulary (Figure 1/2 column headers).
    b.msg("GetS", MsgType::Request)
        .msg("GetM", MsgType::Request)
        .msg("PutS", MsgType::Request)
        .msg("PutM", MsgType::Request)
        .msg("Fwd-GetS", MsgType::FwdRequest)
        .msg("Fwd-GetM", MsgType::FwdRequest)
        .msg("Inv", MsgType::FwdRequest)
        .msg("Put-Ack", MsgType::CtrlResponse)
        .msg("Inv-Ack", MsgType::CtrlResponse)
        .msg("Data", MsgType::DataResponse);

    cache_table(&mut b, cache);
    directory_table(&mut b);
    b.build()
}

/// The cache controller (Figure 1), with the stall cells replaced by
/// deferred-forward states in the nonblocking discipline.
fn cache_table(b: &mut ProtocolBuilder, disc: CacheDiscipline) {
    b.cache_stable(&["I", "S", "M"]);
    b.cache_transient(&[
        "IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "MI_A", "SI_A", "II_A",
    ]);
    if disc == CacheDiscipline::NonBlocking {
        // Deferred-forward companions: _FS = pending Fwd-GetS, _FM =
        // pending Fwd-GetM; IS_D_I = invalidation acknowledged while the
        // read's data is still in flight.
        b.cache_transient(&[
            "IS_D_I", "IM_AD_FS", "IM_AD_FM", "IM_A_FS", "IM_A_FM", "SM_AD_FS", "SM_AD_FM",
            "SM_A_FS", "SM_A_FM",
        ]);
    }
    b.cache_initial("I");

    // --- I ---
    b.cache_on_core("I", CoreOp::Load, acts().send("GetS", Target::Dir).goto("IS_D"));
    b.cache_on_core("I", CoreOp::Store, acts().send("GetM", Target::Dir).goto("IM_AD"));
    // A stale Inv can reach a cache in I: the cache was invalidated (or
    // evicted) while the Inv was in flight — e.g. Put-Ack overtaking Inv
    // on another VN ends the eviction before the Inv lands. Acking from
    // I is always safe (nothing is held) and the requestor needs the ack.
    b.cache_on_msg("I", "Inv", acts().send("Inv-Ack", Target::Req));

    // --- IS_D ---
    stall_core(b, "IS_D");
    b.cache_on_msg_if("IS_D", "Data", Guard::AckZero, acts().goto("S"));
    match disc {
        CacheDiscipline::Blocking => {
            b.cache_stall_msg("IS_D", "Inv");
        }
        CacheDiscipline::NonBlocking => {
            b.cache_on_msg("IS_D", "Inv", acts().send("Inv-Ack", Target::Req).goto("IS_D_I"));
            stall_core(b, "IS_D_I");
            // Use the data once for the pending load, then invalidate.
            b.cache_on_msg_if("IS_D_I", "Data", Guard::AckZero, acts().goto("I"));
        }
    }

    // --- IM_AD / IM_A (write in flight from I) ---
    write_in_flight(b, disc, "IM_AD", "IM_A", WriteFlavor::FromI);

    // --- S ---
    b.cache_on_core("S", CoreOp::Load, acts());
    b.cache_on_core("S", CoreOp::Store, acts().send("GetM", Target::Dir).goto("SM_AD"));
    b.cache_on_core("S", CoreOp::Evict, acts().send("PutS", Target::Dir).goto("SI_A"));
    b.cache_on_msg("S", "Inv", acts().send("Inv-Ack", Target::Req).goto("I"));

    // --- SM_AD / SM_A (write in flight from S) ---
    write_in_flight(b, disc, "SM_AD", "SM_A", WriteFlavor::FromS);

    // --- M ---
    b.cache_on_core("M", CoreOp::Load, acts());
    b.cache_on_core("M", CoreOp::Store, acts());
    b.cache_on_core("M", CoreOp::Evict, acts().send_data("PutM", Target::Dir).goto("MI_A"));
    b.cache_on_msg(
        "M",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("S"),
    );
    b.cache_on_msg("M", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("I"));

    // --- MI_A ---
    stall_core(b, "MI_A");
    b.cache_on_msg(
        "MI_A",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("SI_A"),
    );
    b.cache_on_msg("MI_A", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("II_A"));
    b.cache_on_msg("MI_A", "Put-Ack", acts().goto("I"));

    // --- SI_A ---
    stall_core(b, "SI_A");
    b.cache_on_msg("SI_A", "Inv", acts().send("Inv-Ack", Target::Req).goto("II_A"));
    b.cache_on_msg("SI_A", "Put-Ack", acts().goto("I"));

    // --- II_A ---
    stall_core(b, "II_A");
    b.cache_on_msg("II_A", "Put-Ack", acts().goto("I"));
}

#[derive(PartialEq, Clone, Copy)]
enum WriteFlavor {
    /// From I: the cache is not a sharer, so no Inv can target it in the
    /// AD state... except when demoted from SM_AD (handled there).
    FromI,
    /// From S: the cache is still a sharer; an Inv demotes the write to
    /// the from-I flavor and loads still hit.
    FromS,
}

/// Emits the `*_AD` / `*_A` pair (and, for the nonblocking discipline,
/// their `_FS`/`_FM` companions) for a write in flight.
fn write_in_flight(b: &mut ProtocolBuilder, disc: CacheDiscipline, ad: &str, a: &str, flavor: WriteFlavor) {
    // Core-event columns.
    match flavor {
        WriteFlavor::FromI => {
            b.cache_stall_core(ad, CoreOp::Load);
            b.cache_stall_core(a, CoreOp::Load);
        }
        WriteFlavor::FromS => {
            b.cache_on_core(ad, CoreOp::Load, acts());
            b.cache_on_core(a, CoreOp::Load, acts());
        }
    }
    for s in [ad, a] {
        b.cache_stall_core(s, CoreOp::Store);
        b.cache_stall_core(s, CoreOp::Evict);
    }

    // Ack bookkeeping (identical in both disciplines).
    b.cache_on_msg_if(ad, "Data", Guard::AckZero, acts().add_acks_from_msg().goto("M"));
    b.cache_on_msg_if(ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(a));
    b.cache_on_msg(ad, "Inv-Ack", acts().dec_needed_acks());
    b.cache_on_msg_if(a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
    b.cache_on_msg_if(a, "Inv-Ack", Guard::LastAck, acts().dec_needed_acks().goto("M"));

    // Inv (only when the write started from S: the cache is a sharer).
    if flavor == WriteFlavor::FromS {
        let demoted_ad = "IM_AD";
        let demoted_a = "IM_A";
        b.cache_on_msg(ad, "Inv", acts().send("Inv-Ack", Target::Req).goto(demoted_ad));
        // Inv cannot reach the A state in MSI: the directory sent our data
        // with the ack count at the same time it sent the Invs, and it has
        // recorded us as owner since — nothing re-adds us to sharers.
        let _ = demoted_a;
    }

    // Forwarded requests.
    match disc {
        CacheDiscipline::Blocking => {
            for s in [ad, a] {
                b.cache_stall_msg(s, "Fwd-GetS");
                b.cache_stall_msg(s, "Fwd-GetM");
            }
        }
        CacheDiscipline::NonBlocking => {
            let fs_ad = format!("{ad}_FS");
            let fm_ad = format!("{ad}_FM");
            let fs_a = format!("{a}_FS");
            let fm_a = format!("{a}_FM");
            b.cache_on_msg(ad, "Fwd-GetS", acts().record_reader().goto(&fs_ad));
            b.cache_on_msg(ad, "Fwd-GetM", acts().record_writer().goto(&fm_ad));
            b.cache_on_msg(a, "Fwd-GetS", acts().record_reader().goto(&fs_a));
            b.cache_on_msg(a, "Fwd-GetM", acts().record_writer().goto(&fm_a));

            for s in [&fs_ad, &fm_ad, &fs_a, &fm_a] {
                stall_core(b, s);
            }

            // Pending Fwd-GetS: complete the write, then serve the read —
            // data to the stored requestor and to the directory (which is
            // blocked in S_D waiting for it), ending in S.
            let serve_s = || {
                acts()
                    .add_acks_from_msg()
                    .send_data("Data", Target::Readers)
                    .send_data("Data", Target::Dir)
                    .goto("S")
            };
            b.cache_on_msg_if(&fs_ad, "Data", Guard::AckZero, serve_s());
            b.cache_on_msg_if(&fs_ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(&fs_a));
            b.cache_on_msg(&fs_ad, "Inv-Ack", acts().dec_needed_acks());
            b.cache_on_msg_if(&fs_a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
            b.cache_on_msg_if(
                &fs_a,
                "Inv-Ack",
                Guard::LastAck,
                acts()
                    .dec_needed_acks()
                    .send_data("Data", Target::Readers)
                    .send_data("Data", Target::Dir)
                    .goto("S"),
            );

            // Pending Fwd-GetM: complete the write, then hand the line to
            // the stored requestor, ending in I.
            b.cache_on_msg_if(
                &fm_ad,
                "Data",
                Guard::AckZero,
                acts()
                    .add_acks_from_msg()
                    .send_data("Data", Target::Writer)
                    .goto("I"),
            );
            b.cache_on_msg_if(&fm_ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(&fm_a));
            b.cache_on_msg(&fm_ad, "Inv-Ack", acts().dec_needed_acks());
            b.cache_on_msg_if(&fm_a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
            b.cache_on_msg_if(
                &fm_a,
                "Inv-Ack",
                Guard::LastAck,
                acts()
                    .dec_needed_acks()
                    .send_data("Data", Target::Writer)
                    .goto("I"),
            );

            // A sharer-originated write that was demoted by an Inv while a
            // forward is pending keeps the pending forward.
            if flavor == WriteFlavor::FromS {
                b.cache_on_msg(&fs_ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD_FS"));
                b.cache_on_msg(&fm_ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD_FM"));
            }
        }
    }
}

fn stall_core(b: &mut ProtocolBuilder, state: &str) {
    b.cache_stall_core(state, CoreOp::Load);
    b.cache_stall_core(state, CoreOp::Store);
    b.cache_stall_core(state, CoreOp::Evict);
}

/// The directory controller (Figure 2) — identical in both disciplines.
fn directory_table(b: &mut ProtocolBuilder) {
    b.dir_stable(&["I", "S", "M"]);
    b.dir_transient(&["S_D"]);
    b.dir_initial("I");

    // --- I ---
    b.dir_on_msg(
        "I",
        "GetS",
        acts().send_data("Data", Target::Req).add_req_to_sharers().goto("S"),
    );
    b.dir_on_msg(
        "I",
        "GetM",
        acts().send_data_acks("Data", Target::Req).set_owner_to_req().goto("M"),
    );
    b.dir_on_msg("I", "PutS", acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if("I", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S ---
    b.dir_on_msg(
        "S",
        "GetS",
        acts().send_data("Data", Target::Req).add_req_to_sharers(),
    );
    b.dir_on_msg(
        "S",
        "GetM",
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .set_owner_to_req()
            .goto("M"),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::NotLastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::LastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if(
        "S",
        "PutM",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );

    // --- M ---
    b.dir_on_msg(
        "M",
        "GetS",
        acts()
            .send("Fwd-GetS", Target::Owner)
            .add_req_to_sharers()
            .add_owner_to_sharers()
            .clear_owner()
            .goto("S_D"),
    );
    b.dir_on_msg(
        "M",
        "GetM",
        acts().send("Fwd-GetM", Target::Owner).set_owner_to_req(),
    );
    b.dir_on_msg("M", "PutS", acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if(
        "M",
        "PutM",
        Guard::FromOwner,
        acts().copy_to_mem().clear_owner().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S_D --- (the sometimes-blocking state)
    b.dir_stall_msg("S_D", "GetS");
    b.dir_stall_msg("S_D", "GetM");
    b.dir_on_msg(
        "S_D",
        "PutS",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S_D",
        "PutM",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg("S_D", "Data", acts().copy_to_mem().goto("S"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Trigger;
    use crate::spec::ControllerKind;

    #[test]
    fn blocking_variant_matches_figure_1_stalls() {
        let p = msi_blocking_cache();
        let fwd_getm = p.message_by_name("Fwd-GetM").unwrap();
        let im_ad = p.cache().state_by_name("IM_AD").unwrap();
        assert!(p
            .cache()
            .cell(im_ad, Trigger::msg(fwd_getm))
            .unwrap()
            .is_stall());
        let is_d = p.cache().state_by_name("IS_D").unwrap();
        let inv = p.message_by_name("Inv").unwrap();
        assert!(p.cache().cell(is_d, Trigger::msg(inv)).unwrap().is_stall());
    }

    #[test]
    fn nonblocking_variant_never_stalls_cache_messages() {
        let p = msi_nonblocking_cache();
        assert_eq!(p.cache().message_stalls().count(), 0);
        // ... but the directory still blocks in S_D.
        assert_eq!(p.directory().message_stalls().count(), 2);
    }

    #[test]
    fn directory_blocks_gets_and_getm_in_sd() {
        let p = msi_blocking_cache();
        let sd = p.directory().state_by_name("S_D").unwrap();
        let stalled: Vec<String> = p
            .directory()
            .message_stalls()
            .filter(|(s, _)| *s == sd)
            .map(|(_, m)| p.message_name(m).to_string())
            .collect();
        assert_eq!(stalled, vec!["GetS".to_string(), "GetM".to_string()]);
    }

    #[test]
    fn both_variants_validate() {
        msi_blocking_cache().validate().unwrap();
        msi_nonblocking_cache().validate().unwrap();
    }

    #[test]
    fn nonblocking_adds_deferred_states() {
        let p = msi_nonblocking_cache();
        for s in ["IM_AD_FS", "IM_AD_FM", "SM_A_FM", "IS_D_I"] {
            assert!(p.cache().state_by_name(s).is_some(), "missing {s}");
        }
        let pb = msi_blocking_cache();
        assert!(pb.cache().state_by_name("IM_AD_FS").is_none());
    }

    #[test]
    fn message_types_match_primer() {
        let p = msi_blocking_cache();
        for (name, ty) in [
            ("GetS", MsgType::Request),
            ("PutM", MsgType::Request),
            ("Fwd-GetS", MsgType::FwdRequest),
            ("Inv", MsgType::FwdRequest),
            ("Data", MsgType::DataResponse),
            ("Inv-Ack", MsgType::CtrlResponse),
        ] {
            let m = p.message_by_name(name).unwrap();
            assert_eq!(p.message(m).mtype, ty, "{name}");
        }
    }

    #[test]
    fn data_received_by_both_controller_kinds() {
        let p = msi_blocking_cache();
        let data = p.message_by_name("Data").unwrap();
        let r = p.receivers_of(data);
        assert!(r.contains(&ControllerKind::Cache));
        assert!(r.contains(&ControllerKind::Directory));
    }

    #[test]
    fn fwd_gets_in_m_sends_data_twice() {
        let p = msi_blocking_cache();
        let m = p.cache().state_by_name("M").unwrap();
        let fwd = p.message_by_name("Fwd-GetS").unwrap();
        let cell = p.cache().cell(m, Trigger::msg(fwd)).unwrap();
        assert_eq!(cell.entry().unwrap().sends().count(), 2);
    }
}
