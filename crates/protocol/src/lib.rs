//! # vnet-protocol
//!
//! Machine-analyzable **coherence protocol specifications** in the tabular
//! style of Nagarajan et al.'s *Primer on Memory Consistency and Cache
//! Coherence* (the format reproduced as Figures 1–2 of the paper).
//!
//! A [`ProtocolSpec`] consists of:
//!
//! * a set of **message names** ([`MessageDef`]), each classified by
//!   [`MsgType`] (request, forwarded request, data response, control
//!   response) — §II-C of the paper;
//! * two **controller tables** ([`ControllerSpec`]): one for caches, one
//!   for directories. Rows are states (stable or transient), columns are
//!   triggers (core events or message receptions, possibly refined by a
//!   [`Guard`] such as `ack=0` vs `ack>0`), and cells are either an
//!   executable [`Entry`] (actions + next state) or a **stall**.
//!
//! The same specification serves two consumers:
//!
//! * `vnet-core` *statically* derives the `causes`/`stalls`/`waits`
//!   relations from the table structure (paper §IV);
//! * `vnet-mc` *executes* the tables as guarded-command rules inside an
//!   explicit-state model checker (paper §VII).
//!
//! The [`protocols`] module ships the seven protocols evaluated in the
//! paper's Table I: MSI and MESI (blocking- and nonblocking-cache
//! variants), MOSI and MOESI (nonblocking directories, both cache
//! variants), and a CHI-style protocol with an always-blocking directory
//! and per-transaction completion messages.
//!
//! ## Example
//!
//! ```
//! use vnet_protocol::protocols;
//!
//! let msi = protocols::msi_blocking_cache();
//! assert_eq!(msi.name(), "MSI-blocking-cache");
//! assert!(msi.messages().len() >= 8);
//! msi.validate().expect("textbook protocol is well-formed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod builder;
pub mod diff;
pub mod dsl;
pub mod event;
pub mod message;
pub mod protocols;
pub mod spec;
pub mod state;
pub mod table;
pub mod validate;

pub use action::{Action, Payload, Target};
pub use builder::{acts, ProtocolBuilder};
pub use event::{CoreOp, Event, Guard, Trigger};
pub use message::{MessageDef, MsgId, MsgType};
pub use spec::{ControllerKind, ProtocolSpec};
pub use state::{StateDef, StateId, StateKind};
pub use table::{Cell, ControllerSpec, Entry};
pub use validate::ValidationError;
