//! Bring your own protocol: author a spec with the builder, validate
//! it, analyze it, certify a mapping, and round-trip it through the text
//! DSL — the full designer workflow on a protocol that is *not* one of
//! the built-ins.
//!
//! The protocol is a deliberately simple **single-reader token** design:
//! one cache at a time may hold the value; the directory recalls it
//! before re-granting and blocks new requests while the recall is in
//! flight — so the analyzer must find that two VNs are needed.
//!
//! ```sh
//! cargo run --example custom_protocol
//! ```

use vnet::core::assignment::{certify, VnAssignment};
use vnet::core::analyze;
use vnet::protocol::{acts, dsl, CoreOp, Guard, MsgType, ProtocolBuilder, Target};

fn main() {
    // --- author ---
    let mut b = ProtocolBuilder::new("single-reader");
    b.msg("Get", MsgType::Request)
        .msg("Recall", MsgType::FwdRequest)
        .msg("Val", MsgType::DataResponse)
        .msg("Yield", MsgType::DataResponse);

    b.cache_stable(&["I", "V"]).cache_transient(&["IV"]);
    b.cache_initial("I");
    b.dir_stable(&["I", "V"]).dir_transient(&["B"]);
    b.dir_initial("I");

    // Cache: request the value; hold it; surrender it on recall.
    b.cache_on_core("I", CoreOp::Load, acts().send("Get", Target::Dir).goto("IV"));
    b.cache_on_msg_if("IV", "Val", Guard::AckZero, acts().goto("V"));
    b.cache_on_core("V", CoreOp::Load, acts());
    b.cache_on_msg("V", "Recall", acts().send_data("Yield", Target::Dir).goto("I"));

    // Directory: grant to one reader at a time; recall before
    // re-granting; block new requests while the recall is in flight.
    b.dir_on_msg(
        "I",
        "Get",
        acts().send_data("Val", Target::Req).set_owner_to_req().goto("V"),
    );
    b.dir_on_msg(
        "V",
        "Get",
        acts().send("Recall", Target::Owner).set_owner_to_req().goto("B"),
    );
    b.dir_stall_msg("B", "Get");
    b.dir_on_msg("B", "Yield", acts().send_data("Val", Target::Owner).goto("V"));

    let spec = b.build();

    // --- validate + analyze ---
    spec.validate().expect("well-formed");
    let report = analyze(&spec);
    println!("{}", vnet::core::report::full_report(&report));

    // The directory blocks (state B), so one VN cannot be certified; the
    // analyzer proves two suffice and produces the split.
    assert_eq!(report.outcome().min_vns(), Some(2));
    assert!(!certify(
        &spec,
        report.waits(),
        &VnAssignment::single(spec.messages().len())
    ));

    // --- certify a hand-written alternative mapping ---
    let hand = VnAssignment::from_vns(
        spec.message_ids()
            .map(|m| usize::from(spec.message(m).mtype != MsgType::Request))
            .collect(),
    );
    assert!(certify(&spec, report.waits(), &hand));
    println!(
        "hand-written req/rest mapping certified too:\n{}",
        hand.display(&spec)
    );

    // --- round-trip through the text DSL ---
    let text = dsl::to_text(&spec);
    let reparsed = dsl::parse(&text).expect("round trip");
    assert_eq!(analyze(&reparsed).outcome(), report.outcome());
    println!("DSL round trip preserves the verdict. Spec:\n\n{text}");
}
