//! The `stalls` relation (paper §IV-C/D).
//!
//! `m0 —stalls→ m1` iff some controller, having started a transaction
//! with message `m0` (received it, or sent it on a core event) and
//! transitioned into a transient state, stalls an incoming `m1` there.
//!
//! For each stall cell `(T, m1)` we compute the set `Init(T)` of
//! initiating messages by walking backwards from `T` to the stable
//! states: a transition out of a stable state contributes its triggering
//! message (directory case — e.g. `S_D` is entered from `M` on GetS) or
//! the request messages it sends (cache case — e.g. `IM_AD` is entered
//! from `I` on a Store that sends GetM).

use crate::relation::Relation;
use std::collections::BTreeSet;
use vnet_protocol::{ControllerKind, Event, MsgId, ProtocolSpec, StateId, StateKind};

/// One stall site, for diagnostics and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSite {
    /// Which controller stalls.
    pub kind: ControllerKind,
    /// The transient state in which the stall happens.
    pub state: String,
    /// The stalled message.
    pub stalled: MsgId,
    /// The initiating messages `Init(T)`.
    pub initiators: Vec<MsgId>,
}

/// Computes the `stalls` relation, plus the per-site breakdown.
///
/// # Example
///
/// ```
/// use vnet_core::stalls::compute_stalls;
/// use vnet_protocol::protocols;
///
/// let msi = protocols::msi_blocking_cache();
/// let (stalls, _sites) = compute_stalls(&msi);
/// let gets = msi.message_by_name("GetS").unwrap();
/// let getm = msi.message_by_name("GetM").unwrap();
/// // §II-E: an in-flight GetS transaction stalls a GetM at the directory.
/// assert!(stalls.contains(gets, getm));
/// ```
pub fn compute_stalls(spec: &ProtocolSpec) -> (Relation, Vec<StallSite>) {
    let n = spec.messages().len();
    let mut rel = Relation::new(n);
    let mut sites = Vec::new();

    for kind in [ControllerKind::Cache, ControllerKind::Directory] {
        let ctrl = spec.controller(kind);
        for (state, stalled) in ctrl.message_stalls() {
            let inits = initiators(spec, kind, state);
            for &m0 in &inits {
                rel.insert(m0, stalled);
            }
            sites.push(StallSite {
                kind,
                state: ctrl.state(state).name.clone(),
                stalled,
                initiators: inits.into_iter().collect(),
            });
        }
    }
    (rel, sites)
}

/// The messages that can initiate the transaction a controller is in
/// while sitting in transient state `t` — the `Init(T)` set.
pub fn initiators(spec: &ProtocolSpec, kind: ControllerKind, t: StateId) -> BTreeSet<MsgId> {
    let ctrl = spec.controller(kind);
    let mut init = BTreeSet::new();
    let mut visited: BTreeSet<StateId> = [t].into();
    let mut stack = vec![t];

    while let Some(s) = stack.pop() {
        for (src, trigger) in ctrl.transitions_into(s) {
            match ctrl.state(src).kind {
                StateKind::Stable => match trigger.event {
                    // Directory-style entry: the received request starts
                    // the transaction.
                    Event::Msg(m) => {
                        init.insert(m);
                    }
                    // Cache-style entry: the request sent by the core
                    // event starts the transaction.
                    Event::Core(_) => {
                        if let Some(cell) = ctrl.cell(src, *trigger) {
                            if let Some(entry) = cell.entry() {
                                for (m, _) in entry.sends() {
                                    init.insert(m);
                                }
                            }
                        }
                    }
                },
                StateKind::Transient => {
                    if visited.insert(src) {
                        stack.push(src);
                    }
                }
            }
        }
    }
    init
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_protocol::protocols;

    #[test]
    fn directory_sd_initiated_by_gets() {
        let p = protocols::msi_blocking_cache();
        let sd = p.directory().state_by_name("S_D").unwrap();
        let init = initiators(&p, ControllerKind::Directory, sd);
        let gets = p.message_by_name("GetS").unwrap();
        assert_eq!(init, [gets].into());
    }

    #[test]
    fn cache_im_ad_initiated_by_getm() {
        let p = protocols::msi_blocking_cache();
        let im_ad = p.cache().state_by_name("IM_AD").unwrap();
        let init = initiators(&p, ControllerKind::Cache, im_ad);
        let getm = p.message_by_name("GetM").unwrap();
        assert_eq!(init, [getm].into());
    }

    #[test]
    fn backward_walk_crosses_transient_chains() {
        // IM_A is only reachable through IM_AD (and SM demotions); its
        // initiator is still GetM.
        let p = protocols::msi_blocking_cache();
        let im_a = p.cache().state_by_name("IM_A").unwrap();
        let init = initiators(&p, ControllerKind::Cache, im_a);
        let getm = p.message_by_name("GetM").unwrap();
        assert_eq!(init, [getm].into());
    }

    #[test]
    fn blocking_msi_stall_relation() {
        let p = protocols::msi_blocking_cache();
        let (stalls, sites) = compute_stalls(&p);
        let gets = p.message_by_name("GetS").unwrap();
        let getm = p.message_by_name("GetM").unwrap();
        let fwds = p.message_by_name("Fwd-GetS").unwrap();
        let fwdm = p.message_by_name("Fwd-GetM").unwrap();
        let inv = p.message_by_name("Inv").unwrap();
        // Directory: GetS-initiated S_D stalls both request types.
        assert!(stalls.contains(gets, gets));
        assert!(stalls.contains(gets, getm));
        // Cache: GetM-initiated transients stall forwards; GetS-initiated
        // IS_D stalls Inv.
        assert!(stalls.contains(getm, fwds));
        assert!(stalls.contains(getm, fwdm));
        assert!(stalls.contains(gets, inv));
        assert!(!sites.is_empty());
    }

    #[test]
    fn nonblocking_msi_only_directory_stalls() {
        let p = protocols::msi_nonblocking_cache();
        let (stalls, sites) = compute_stalls(&p);
        assert!(sites.iter().all(|s| s.kind == ControllerKind::Directory));
        let gets = p.message_by_name("GetS").unwrap();
        let getm = p.message_by_name("GetM").unwrap();
        let pairs: Vec<_> = stalls.iter().collect();
        assert_eq!(pairs, vec![(gets, gets), (gets, getm)]);
    }

    #[test]
    fn mosi_nonblocking_has_empty_stalls() {
        let p = protocols::mosi_nonblocking_cache();
        let (stalls, sites) = compute_stalls(&p);
        assert!(stalls.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn chi_busy_states_initiated_by_requests_only() {
        let p = protocols::chi();
        let (stalls, _) = compute_stalls(&p);
        for (m0, _) in stalls.iter() {
            assert_eq!(
                p.message(m0).mtype,
                vnet_protocol::MsgType::Request,
                "{} initiates a stall",
                p.message_name(m0)
            );
        }
        // Every request can be stalled by an in-flight ReadUnique.
        let ru = p.message_by_name("ReadUnique").unwrap();
        for r in p.messages_of_type(vnet_protocol::MsgType::Request) {
            assert!(stalls.contains(ru, r));
        }
    }

    #[test]
    fn only_transient_states_appear_as_sites() {
        for p in protocols::all() {
            let (_, sites) = compute_stalls(&p);
            for s in &sites {
                let ctrl = p.controller(s.kind);
                let sid = ctrl.state_by_name(&s.state).unwrap();
                assert!(ctrl.state(sid).is_transient());
                assert!(!s.initiators.is_empty(), "{}: {} has no initiator", p.name(), s.state);
            }
        }
    }
}
