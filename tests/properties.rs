//! Property-based tests over the algorithm's invariants, using random
//! relation instances and the striped synthetic protocols.

use proptest::prelude::*;
use vnet::core::deadlock::{build_condition_graph, find_eq4_cycle_edges};
use vnet::core::synthetic::{random_waits_queues, striped_protocol};
use vnet::core::{analyze, minimize_vns, ProtocolClass, Relation};
use vnet::graph::fas::{is_acyclic_without, minimum_feedback_arc_set};
use vnet::protocol::MsgId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact FAS always leaves the condition graph acyclic, and its
    /// weight never exceeds the heuristic's.
    #[test]
    fn fas_is_sound_and_minimal_vs_heuristic(
        n in 4usize..14,
        wd in 20u64..200,
        qd in 20u64..300,
        seed in 0u64..u64::MAX,
    ) {
        let (waits, queues) = random_waits_queues(n, wd, qd, seed);
        let cg = build_condition_graph(&waits, &queues);
        let weight_of = |w: &vnet::core::deadlock::EdgeWitness| -> u128 {
            if w.qs.is_empty() { (1u128 << n) + 1 } else { 1 }
        };
        let exact = minimum_feedback_arc_set(&cg.graph, weight_of);
        prop_assert!(is_acyclic_without(&cg.graph, &exact.edges));
        let heur = vnet::graph::fas::heuristic_feedback_arc_set(&cg.graph, weight_of);
        prop_assert!(is_acyclic_without(&cg.graph, &heur.edges));
        prop_assert!(exact.weight <= heur.weight);
    }

    /// Eq. 4 equivalence: the union digraph has a waits-containing cycle
    /// iff the condition graph (Eq. 5) has any cycle.
    #[test]
    fn eq4_and_eq5_agree(
        n in 3usize..12,
        wd in 20u64..250,
        qd in 20u64..350,
        seed in 0u64..u64::MAX,
    ) {
        let (waits, queues) = random_waits_queues(n, wd, qd, seed);
        let cond = build_condition_graph(&waits, &queues);
        let eq5_cyclic = vnet::graph::scc::has_cycle(&cond.graph);
        let eq4_cyclic = find_eq4_cycle_edges(&waits, &queues).is_some();
        prop_assert_eq!(eq5_cyclic, eq4_cyclic);
    }

    /// Relation algebra: composition is associative and the closure is
    /// idempotent.
    #[test]
    fn relation_algebra_laws(
        n in 2usize..10,
        pairs1 in proptest::collection::vec((0usize..10, 0usize..10), 0..20),
        pairs2 in proptest::collection::vec((0usize..10, 0usize..10), 0..20),
        pairs3 in proptest::collection::vec((0usize..10, 0usize..10), 0..20),
    ) {
        let rel = |ps: &[(usize, usize)]| {
            let mut r = Relation::new(n);
            for &(a, b) in ps {
                if a < n && b < n {
                    r.insert(MsgId(a), MsgId(b));
                }
            }
            r
        };
        let (r, s, t) = (rel(&pairs1), rel(&pairs2), rel(&pairs3));
        prop_assert_eq!(r.compose(&s).compose(&t), r.compose(&s.compose(&t)));
        let tc = r.transitive_closure();
        prop_assert_eq!(tc.transitive_closure(), tc.clone());
        // R⁺ contains R; (R⁻¹)⁻¹ = R.
        for (a, b) in r.iter() {
            prop_assert!(tc.contains(a, b));
        }
        prop_assert_eq!(r.inverse().inverse(), r);
    }

    /// The striped synthetic protocol is Class 3 with exactly two VNs at
    /// every width, and its assignment certifies.
    #[test]
    fn striped_protocols_always_two_vns(k in 1usize..6) {
        let spec = striped_protocol(k);
        spec.validate().unwrap();
        let report = analyze(&spec);
        prop_assert_eq!(report.class(), ProtocolClass::Class3 { min_vns: 2 });
        let a = report.outcome().assignment().unwrap();
        prop_assert!(vnet::core::assignment::certify(&spec, report.waits(), a));
    }
}

/// Monotonicity of certification under refinement, on real protocols:
/// any merge of the derived VNs into one must fail Eq. 4, and any split
/// of them must pass.
#[test]
fn certification_is_monotone_under_refinement() {
    use vnet::core::assignment::{certify, VnAssignment};
    use vnet::protocol::protocols;
    for spec in [
        protocols::chi(),
        protocols::msi_nonblocking_cache(),
        protocols::mesi_nonblocking_cache(),
    ] {
        let report = analyze(&spec);
        let n = spec.messages().len();
        let a = report.outcome().assignment().unwrap();
        // Split: give every message its own VN — must still certify.
        assert!(certify(&spec, report.waits(), &VnAssignment::one_per_message(n)));
        // Merge: single VN — must fail.
        assert!(!certify(&spec, report.waits(), &VnAssignment::single(n)));
        // A finer-but-derived-compatible split: separate data responses
        // from control responses within the non-request VN.
        let finer: Vec<usize> = spec
            .message_ids()
            .map(|m| {
                let base = a.vn_of(m);
                if spec.message(m).mtype == vnet::protocol::MsgType::DataResponse {
                    base + 2
                } else {
                    base
                }
            })
            .collect();
        assert!(certify(&spec, report.waits(), &VnAssignment::from_vns(finer)));
    }
}

/// Class-2 evidence is a genuine waits cycle: every consecutive pair is
/// in the waits relation.
#[test]
fn class2_evidence_is_a_real_cycle() {
    use vnet::core::assignment::VnOutcome;
    use vnet::protocol::protocols;
    for spec in [
        protocols::msi_blocking_cache(),
        protocols::mesi_blocking_cache(),
        protocols::mosi_blocking_cache(),
        protocols::moesi_blocking_cache(),
    ] {
        let outcome = minimize_vns(&spec);
        let VnOutcome::Class2(ev) = outcome else {
            panic!("{} should be Class 2", spec.name());
        };
        let waits = vnet::core::waits::compute_waits(&spec);
        let cyc = &ev.waits_cycle;
        for i in 0..cyc.len() {
            let a = cyc[i];
            let b = cyc[(i + 1) % cyc.len()];
            assert!(
                waits.contains(a, b),
                "{}: {} does not wait for {}",
                spec.name(),
                spec.message_name(a),
                spec.message_name(b)
            );
        }
    }
}
