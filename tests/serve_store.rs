//! The durable result store through the real binary: a warm-store soak
//! (hit ratio and hit latency under sustained load, with counter
//! reconciliation at the end), cache survival across a daemon restart,
//! and the batch/progress streaming surfaces.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use vnet::serve::json;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vnet-servestore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("creating the test scratch dir");
    d
}

fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_vnet"))
        .args(["serve", "--listen", "127.0.0.1:0", "--drain-grace", "1s"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning vnet serve");
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("reading the listening banner");
    assert!(banner.contains("listening on"), "bad banner: {banner}");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("banner ends with the address")
        .to_string();
    (child, addr)
}

fn connect(addr: &str) -> (impl Write, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connecting to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("setting a read timeout");
    stream.set_nodelay(true).expect("setting TCP_NODELAY");
    let w = stream.try_clone().expect("cloning the stream");
    (w, BufReader::new(stream))
}

fn roundtrip(w: &mut impl Write, r: &mut BufReader<TcpStream>, line: &str) -> json::Json {
    writeln!(w, "{line}").expect("sending a request");
    w.flush().expect("flushing a request");
    let mut resp = String::new();
    let n = r.read_line(&mut resp).expect("reading a response");
    assert!(n > 0, "daemon hung up on: {line}");
    json::parse(resp.trim()).unwrap_or_else(|e| panic!("unparseable response {resp:?}: {e}"))
}

fn shutdown(child: Child) {
    let ok = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("running kill")
        .success();
    assert!(ok, "kill -TERM failed");
    let code = wait_exit(child, 60);
    assert_eq!(code, 0, "drain must exit 0");
}

fn wait_exit(mut child: Child, secs: u64) -> i32 {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return st.code().expect("exit code");
        }
        assert!(Instant::now() < deadline, "daemon did not exit in {secs}s");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn provenance(v: &json::Json) -> Option<&str> {
    v.get("provenance").and_then(json::Json::as_str)
}

/// The warm-store soak of the acceptance checklist: 10k analyze
/// requests cycling a handful of protocols against a stored daemon.
/// All but the first occurrence of each protocol must come back
/// `provenance:"cached"`, cache hits must answer in single-digit
/// milliseconds at p99 even in a debug build, and the server's own
/// counters must reconcile with the client tally afterwards.
#[test]
fn soak_10k_requests_against_a_warm_store() {
    const TOTAL: usize = 10_000;
    const PROTOCOLS: [&str; 7] = [
        "CHI",
        "MSI-blocking-cache",
        "MESI-blocking-cache",
        "MOSI-nonblocking-cache",
        "MOESI-nonblocking-cache",
        "MESIF-blocking-cache",
        "CHI-DCT",
    ];
    let dir = tmp_dir("soak");
    let (child, addr) = spawn_serve(&["--store-dir", dir.to_str().expect("utf-8 path")]);
    let (mut w, mut r) = connect(&addr);

    let mut hits = 0usize;
    let mut hit_wall = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let proto = PROTOCOLS[i % PROTOCOLS.len()];
        let line = format!(r#"{{"id":"s{i}","cmd":"analyze","protocol":"{proto}"}}"#);
        let t0 = Instant::now();
        let v = roundtrip(&mut w, &mut r, &line);
        let wall = t0.elapsed();
        assert_eq!(
            v.get("status").and_then(json::Json::as_str),
            Some("ok"),
            "request {i} failed: {v:?}"
        );
        if provenance(&v) == Some("cached") {
            hits += 1;
            hit_wall.push(wall);
        }
    }

    let ratio = hits as f64 / TOTAL as f64;
    assert!(
        ratio > 0.9,
        "hit ratio {ratio:.4} ({hits}/{TOTAL}) is below the 90% floor"
    );
    hit_wall.sort();
    let p99 = hit_wall[hit_wall.len() * 99 / 100];
    assert!(
        p99 < Duration::from_millis(5),
        "p99 cache-hit latency {p99:?} breaches the 5ms budget"
    );

    // Reconcile: the daemon's counters must agree with what the client
    // saw — every request completed, every status counted exactly once,
    // and the store counters partition the requests into hits + misses.
    let m = roundtrip(&mut w, &mut r, r#"{"id":"m","cmd":"metrics"}"#);
    let counter = |key: &str| {
        m.get("counters")
            .and_then(|c| c.get(key))
            .and_then(json::Json::as_u64)
            .unwrap_or_else(|| panic!("counters.{key} missing: {m:?}"))
    };
    assert_eq!(counter("completed"), TOTAL as u64);
    assert_eq!(
        counter("submitted"),
        counter("completed")
            + counter("errors")
            + counter("rejected")
            + counter("cancelled")
            + counter("panicked"),
        "status taxonomy does not partition the submitted total"
    );
    let reg_counter = |key: &str| {
        m.get("registry")
            .and_then(|r| r.get("counters"))
            .and_then(|c| c.get(key))
            .and_then(json::Json::as_u64)
            .unwrap_or(0)
    };
    assert_eq!(reg_counter("serve.cache_hits_total"), hits as u64);
    assert_eq!(
        reg_counter("serve.cache_hits_total") + reg_counter("serve.cache_misses_total"),
        TOTAL as u64,
        "hits + misses must cover every cacheable request"
    );
    // The server's own latency histogram agrees: with >99% of requests
    // answered from the store, at least 99% of `serve.request_wall_ms`
    // samples must sit in the <=5ms buckets.
    let wall = m
        .get("registry")
        .and_then(|r| r.get("histograms"))
        .and_then(|h| h.get("serve.request_wall_ms"))
        .expect("serve.request_wall_ms histogram missing");
    let count = wall.get("count").and_then(json::Json::as_u64).expect("count");
    let under_5ms: u64 = wall
        .get("buckets")
        .and_then(|b| match b {
            json::Json::Arr(items) => Some(items),
            _ => None,
        })
        .expect("buckets array")
        .iter()
        .filter(|b| b.get("le").and_then(json::Json::as_u64).is_some_and(|le| le <= 5))
        .map(|b| b.get("n").and_then(json::Json::as_u64).unwrap_or(0))
        .sum();
    assert!(
        under_5ms * 100 >= count * 99,
        "server-side p99 breaches 5ms: {under_5ms}/{count} samples <=5ms"
    );

    shutdown(child);
    // Durability: the store holds exactly one record per protocol.
    let store = vnet::store::Store::open_existing(&dir).expect("reopening the soak store");
    assert_eq!(store.len(), PROTOCOLS.len());
    let _ = std::fs::remove_dir_all(dir);
}

/// Kill the daemon, restart it on the same store directory, and the
/// repeat of an already-answered request must be served `cached`
/// without re-running any analysis.
#[test]
fn restarted_daemon_answers_repeats_from_the_store() {
    let dir = tmp_dir("restart");
    let flags = ["--store-dir", dir.to_str().expect("utf-8 path")];
    let req = r#"{"id":"a1","cmd":"analyze","protocol":"MOESI-blocking-cache"}"#;

    let (child, addr) = spawn_serve(&flags);
    let (mut w, mut r) = connect(&addr);
    let v = roundtrip(&mut w, &mut r, req);
    assert_eq!(v.get("status").and_then(json::Json::as_str), Some("ok"));
    assert_ne!(provenance(&v), Some("cached"), "first answer cannot be a hit");
    shutdown(child);

    let (child, addr) = spawn_serve(&flags);
    let (mut w, mut r) = connect(&addr);
    let v = roundtrip(&mut w, &mut r, req);
    assert_eq!(v.get("status").and_then(json::Json::as_str), Some("ok"), "{v:?}");
    assert_eq!(
        provenance(&v),
        Some("cached"),
        "restart lost the stored answer: {v:?}"
    );
    // The cached line still carries the actual result payload.
    assert!(
        v.get("min_vns").is_some(),
        "cached answer dropped its fields: {v:?}"
    );
    shutdown(child);
    let _ = std::fs::remove_dir_all(dir);
}

/// A batch with a poisoned item: every item gets its own response line
/// (the panic cannot take down its neighbours), then a summary closes
/// the batch.
#[test]
fn batch_isolates_a_poisoned_item_end_to_end() {
    let (child, addr) = spawn_serve(&["--enable-test-faults"]);
    let (mut w, mut r) = connect(&addr);
    writeln!(
        w,
        r#"{{"id":"b1","cmd":"batch","items":[{{"cmd":"analyze","protocol":"CHI"}},{{"cmd":"panic"}},{{"cmd":"analyze","protocol":"no-such-protocol"}}]}}"#
    )
    .expect("sending the batch");
    w.flush().expect("flushing the batch");

    let mut statuses = Vec::new();
    let summary = loop {
        let mut line = String::new();
        assert!(r.read_line(&mut line).expect("reading") > 0, "hung up mid-batch");
        let v = json::parse(line.trim()).expect("structured line");
        if v.get("cmd").and_then(json::Json::as_str) == Some("batch") {
            break v;
        }
        statuses.push(
            v.get("status")
                .and_then(json::Json::as_str)
                .expect("item line has a status")
                .to_string(),
        );
    };
    assert_eq!(statuses, ["ok", "panicked", "error"], "per-item isolation broke");
    assert_eq!(summary.get("items").and_then(json::Json::as_u64), Some(3));
    assert_eq!(summary.get("ok").and_then(json::Json::as_u64), Some(1));
    assert_eq!(summary.get("panicked").and_then(json::Json::as_u64), Some(1));
    assert_eq!(summary.get("errors").and_then(json::Json::as_u64), Some(1));
    shutdown(child);
}

/// An inline `mc` with `progress:true` streams level-boundary events
/// before the final verdict line.
#[test]
fn progress_events_stream_ahead_of_the_mc_verdict() {
    let (child, addr) = spawn_serve(&[]);
    let (mut w, mut r) = connect(&addr);
    writeln!(
        w,
        r#"{{"id":"p1","cmd":"mc","protocol":"MSI-nonblocking-cache","progress":true,"budget":{{"nodes":20000}}}}"#
    )
    .expect("sending the mc request");
    w.flush().expect("flushing");

    let mut events = 0usize;
    let mut last_level = 0u64;
    let verdict = loop {
        let mut line = String::new();
        assert!(r.read_line(&mut line).expect("reading") > 0, "hung up mid-stream");
        let v = json::parse(line.trim()).expect("structured line");
        if v.get("event").and_then(json::Json::as_str) == Some("progress") {
            assert!(v.get("status").is_none(), "progress is not a response: {v:?}");
            let level = v.get("level").and_then(json::Json::as_u64).expect("level");
            assert!(level > last_level, "levels must be strictly increasing");
            last_level = level;
            assert!(v.get("states").and_then(json::Json::as_u64).unwrap_or(0) > 0);
            events += 1;
            continue;
        }
        break v;
    };
    assert!(events > 0, "no progress events arrived before the verdict");
    assert!(
        verdict.get("status").is_some(),
        "stream must end with a real response: {verdict:?}"
    );
    shutdown(child);
}
