//! Supervised campaign runner for the Table I sweep.
//!
//! A *campaign* model-checks every protocol spec in a directory (the
//! repo ships the twelve `protocols/*.vnp` Table I subjects) under one
//! supervisor that keeps a single bad run from taking down the sweep:
//!
//! * **Isolation.** Each protocol runs either on its own thread
//!   ([`Isolation::Thread`]) or in its own child process
//!   ([`Isolation::Process`], re-invoking the current executable as
//!   `vnet mc <spec> --machine`). A panicking, hanging, or crashing run
//!   costs only its own slot.
//! * **Timeout + retry with backoff.** Every attempt gets a wall-clock
//!   timeout; failed or timed-out attempts are retried with doubling
//!   backoff up to a bounded retry count, after which the protocol is
//!   reported as failed — the campaign itself always completes.
//! * **Checkpoint lineage.** With a checkpoint directory configured,
//!   attempts write periodic checkpoints and retries resume from them,
//!   so work survives timeouts and crashes; each run's report records
//!   how many times it resumed.
//! * **Cooperative interrupt.** A stop file (the safe-Rust stand-in for
//!   a SIGINT handler; see DESIGN.md) ends the campaign between
//!   protocols, leaving a partial report marked `interrupted`.
//!
//! The result is a machine-readable JSON report: per-protocol verdict
//! kind, depth, state count, provenance (exact vs degraded, including
//! [`DegradeReason::WorkerLoss`](vnet_graph::DegradeReason::WorkerLoss)
//! from panic-isolated workers), retry and resume counts, and wall
//! time.

use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use vnet_graph::Budget;
use vnet_protocol::{dsl, protocols, ProtocolSpec};

use crate::checkpoint::CheckpointPolicy;
use crate::config::{McConfig, VnMap};
use crate::explore::{CheckpointedRun, Verdict};
use crate::parallel::{
    explore_parallel_supervised, resume_parallel, PanicInjection, ParallelOpts,
};

/// How each protocol run is isolated from the campaign supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// Run on a dedicated thread in this process. A timed-out run is
    /// asked to stop via its checkpoint stop file and abandoned; a
    /// panicking run is caught and retried.
    Thread,
    /// Re-invoke the current executable (`vnet mc <spec> --machine`) as
    /// a child process. The strongest isolation: a timed-out child is
    /// killed outright, and even aborts/signals cannot touch the
    /// supervisor.
    Process,
}

/// One protocol to check: a display name plus the argument `vnet mc`
/// would take (a built-in protocol name or a path to a `.vnp` file).
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// Short name used for the report and checkpoint file names.
    pub name: String,
    /// Built-in protocol name or `.vnp` path.
    pub arg: String,
}

/// Lists every `*.vnp` spec in `dir`, sorted by file name — the
/// campaign's default work list (`protocols/` holds the Table I set).
pub fn discover(dir: &Path) -> Result<Vec<CampaignEntry>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for item in rd {
        let item = item.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = item.path();
        if path.extension().and_then(|e| e.to_str()) != Some("vnp") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("spec")
            .to_string();
        entries.push(CampaignEntry {
            name,
            arg: path.display().to_string(),
        });
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    if entries.is_empty() {
        return Err(format!("{}: no .vnp specs found", dir.display()));
    }
    Ok(entries)
}

/// Supervisor knobs for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Isolation mode for each run.
    pub isolation: Isolation,
    /// Wall-clock timeout per attempt.
    pub timeout: Duration,
    /// Retries after the first attempt (total attempts = retries + 1).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Worker threads per run (0 = available parallelism).
    pub threads: usize,
    /// Exploration budget forwarded to each run.
    pub budget: Budget,
    /// Where per-protocol checkpoints live; `None` disables resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Campaign-level stop file, checked between protocols.
    pub stop_file: Option<PathBuf>,
    /// Deterministic worker-fault injection, forwarded to
    /// thread-isolated runs (tests and the CI smoke job).
    pub inject: Option<PanicInjection>,
    /// Per-run memory budget in bytes. Thread-isolated runs take it as
    /// a budget limit; process-isolated children get `--mem-budget`.
    pub mem_budget: Option<u64>,
    /// Out-of-core spill root (process isolation only): each child runs
    /// the serial spilling explorer with its own `<dir>/<protocol>`
    /// segment directory instead of the thread-parallel one.
    pub spill_dir: Option<PathBuf>,
    /// Process-shard fan-out (process isolation only): each child runs
    /// `--shard-procs <n>` with a `<checkpoint_dir>/<protocol>.shards`
    /// working directory, so retries resume shard-by-shard.
    pub shard_procs: Option<u32>,
    /// Check the general scenario under cache × address symmetry
    /// reduction instead of the Figure-3 script. Thread-isolated runs
    /// take it through [`table1_sym_config`]; process-isolated
    /// children get `--general --symmetry`.
    pub symmetry: bool,
}

impl CampaignConfig {
    /// Defaults: thread isolation, 120 s timeout, 2 retries, 250 ms
    /// backoff, available parallelism, unlimited budget, no
    /// checkpoints, no stop file, no injection.
    pub fn new() -> Self {
        CampaignConfig {
            isolation: Isolation::Thread,
            timeout: Duration::from_secs(120),
            max_retries: 2,
            backoff: Duration::from_millis(250),
            threads: 0,
            budget: Budget::unlimited(),
            checkpoint_dir: None,
            stop_file: None,
            inject: None,
            mem_budget: None,
            spill_dir: None,
            shard_procs: None,
            symmetry: false,
        }
    }

    /// Selects the isolation mode.
    pub fn with_isolation(mut self, i: Isolation) -> Self {
        self.isolation = i;
        self
    }

    /// Overrides the per-attempt timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Overrides the retry count.
    pub fn with_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Overrides the worker-thread count per run.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Overrides the exploration budget.
    pub fn with_budget(mut self, b: Budget) -> Self {
        self.budget = b;
        self
    }

    /// Enables checkpointing (and resume-on-retry) under `dir`.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the campaign-level stop file.
    pub fn with_stop_file(mut self, p: impl Into<PathBuf>) -> Self {
        self.stop_file = Some(p.into());
        self
    }

    /// Enables worker-fault injection (thread isolation only).
    pub fn with_injection(mut self, i: PanicInjection) -> Self {
        self.inject = Some(i);
        self
    }

    /// Caps each run's accounted memory footprint.
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Sends process-isolated children out-of-core under `dir`.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Runs process-isolated children with `n` shard processes each.
    pub fn with_shard_procs(mut self, n: u32) -> Self {
        self.shard_procs = Some(n);
        self
    }

    /// Sweeps the general scenario under symmetry reduction.
    pub fn with_symmetry(mut self) -> Self {
        self.symmetry = true;
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::new()
    }
}

/// The campaign's record of one protocol.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: String,
    /// Verdict kind (`deadlock`, `no-deadlock`, `model-error`,
    /// `invariant-violation`), or `None` when every attempt failed.
    pub kind: Option<String>,
    /// Counterexample depth, or deepest completed level for
    /// `no-deadlock`.
    pub depth: usize,
    /// Distinct states visited.
    pub states: usize,
    /// BFS levels completed.
    pub levels: usize,
    /// `true` when the state space was exhausted (no budget cut).
    pub complete: bool,
    /// `exact`, or `degraded: <reason>` (e.g. worker loss).
    pub provenance: String,
    /// Attempts beyond the first.
    pub retries: u32,
    /// Attempts that resumed from a checkpoint.
    pub resumes: u32,
    /// Wall time across all attempts, in milliseconds.
    pub wall_ms: u64,
    /// Why the run failed, when `kind` is `None`.
    pub error: Option<String>,
    /// Flow-abstraction verdict for this protocol under the campaign's
    /// configuration (see [`crate::flows`]), computed supervisor-side:
    /// `flow-free-all-n ...` certifies deadlock freedom for every system
    /// size, anything else is bounded-only. `None` when the spec failed
    /// to load.
    pub parameterized: Option<String>,
}

impl RunReport {
    /// `true` when the run produced a verdict.
    pub fn completed(&self) -> bool {
        self.kind.is_some()
    }
}

/// The whole campaign's result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One report per protocol, in work-list order.
    pub runs: Vec<RunReport>,
    /// `true` when the stop file ended the campaign early.
    pub interrupted: bool,
    /// Total wall time in milliseconds.
    pub wall_ms: u64,
}

impl CampaignReport {
    /// `true` when every protocol produced a verdict and the campaign
    /// was not interrupted.
    pub fn all_completed(&self) -> bool {
        !self.interrupted && self.runs.iter().all(RunReport::completed)
    }

    /// `true` when any verdict carries degraded provenance.
    pub fn any_degraded(&self) -> bool {
        self.runs
            .iter()
            .any(|r| r.completed() && r.provenance != "exact")
    }

    /// Renders the machine-readable JSON report (hand-rolled; the build
    /// is dependency-free by design).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"interrupted\": {},\n  \"wall_ms\": {},\n  \"runs\": [",
            self.interrupted, self.wall_ms
        );
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"protocol\": \"{}\", \"kind\": {}, \"depth\": {}, \"states\": {}, \
                 \"levels\": {}, \"complete\": {}, \
                 \"provenance\": \"{}\", \"retries\": {}, \"resumes\": {}, \"wall_ms\": {}, \
                 \"error\": {}, \"parameterized\": {}}}",
                if i == 0 { "" } else { "," },
                json_escape(&r.protocol),
                match &r.kind {
                    Some(k) => format!("\"{}\"", json_escape(k)),
                    None => "null".into(),
                },
                r.depth,
                r.states,
                r.levels,
                r.complete,
                json_escape(&r.provenance),
                r.retries,
                r.resumes,
                r.wall_ms,
                match &r.error {
                    Some(e) => format!("\"{}\"", json_escape(e)),
                    None => "null".into(),
                },
                match &r.parameterized {
                    Some(p) => format!("\"{}\"", json_escape(p)),
                    None => "null".into(),
                },
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The Table I model-checking configuration for a spec: the Figure-3
/// scenario under the analyzer's minimal VN mapping (one VN per message
/// for Class 2 protocols, which no ordered mapping can save).
pub fn table1_config(spec: &ProtocolSpec) -> McConfig {
    use vnet_core::{analyze, VnOutcome};
    let n = spec.messages().len();
    let vns = match analyze(spec).outcome() {
        VnOutcome::Assigned { assignment, .. } => VnMap::from_assignment(assignment, n),
        VnOutcome::Class2(_) => VnMap::one_per_message(n),
    };
    McConfig::figure3(spec).with_vns(vns)
}

/// The symmetry-reduced Table I configuration: the general scenario
/// (uniform per-cache budget, unordered ICN — the preconditions
/// symmetry reduction is sound under) with the same VN resolution as
/// [`table1_config`]. This is what `vnet campaign --symmetry` sweeps,
/// and what its process-isolated children re-derive from
/// `--general --symmetry`.
pub fn table1_sym_config(spec: &ProtocolSpec) -> McConfig {
    use vnet_core::{analyze, VnOutcome};
    let n = spec.messages().len();
    let vns = match analyze(spec).outcome() {
        VnOutcome::Assigned { assignment, .. } => VnMap::from_assignment(assignment, n),
        VnOutcome::Class2(_) => VnMap::one_per_message(n),
    };
    // The flag is set directly rather than through `with_symmetry()`:
    // the general scenario always satisfies the symmetry preconditions,
    // and the explorers re-validate fail-closed at run time anyway, so
    // this path stays free of panic sites.
    let mut cfg = McConfig::general(spec).with_vns(vns);
    cfg.symmetry = true;
    cfg
}

/// Loads a campaign entry: a built-in protocol name or a `.vnp` path.
pub fn load_spec(arg: &str) -> Result<ProtocolSpec, String> {
    if let Some(p) = protocols::extended().into_iter().find(|p| p.name() == arg) {
        return Ok(p);
    }
    let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
    let spec = dsl::parse(&text).map_err(|e| format!("{arg}: {e}"))?;
    spec.validate().map_err(|e| format!("{arg}: {e}"))?;
    Ok(spec)
}

/// The flat result a run boils down to — what crosses the isolation
/// boundary (a channel for threads, a `mc-result` stdout line for
/// processes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineResult {
    /// Verdict kind, as in [`RunReport::kind`].
    pub kind: String,
    /// Counterexample depth or deepest completed level.
    pub depth: usize,
    /// Distinct states visited.
    pub states: usize,
    /// BFS levels completed.
    pub levels: usize,
    /// `true` when the state space was exhausted (no budget cut).
    pub complete: bool,
    /// `exact`, or `degraded: <reason>`.
    pub provenance: String,
}

/// Flattens a verdict to its machine result.
pub fn measure(v: &Verdict) -> MachineResult {
    let stats = v.stats();
    let (kind, depth) = match v {
        Verdict::NoDeadlock(s) => ("no-deadlock", s.levels),
        Verdict::Deadlock { depth, .. } => ("deadlock", *depth),
        Verdict::ModelError { .. } => ("model-error", stats.levels),
        Verdict::InvariantViolation { .. } => ("invariant-violation", stats.levels),
    };
    let provenance = match &stats.provenance {
        vnet_graph::Provenance::Exact => "exact".to_string(),
        vnet_graph::Provenance::Degraded { reason } => format!("degraded: {reason}"),
    };
    MachineResult {
        kind: kind.to_string(),
        depth,
        states: stats.states,
        levels: stats.levels,
        complete: stats.complete,
        provenance,
    }
}

/// Renders the `mc-result` line `vnet mc --machine` prints; the
/// process-isolated campaign parses it back with
/// [`parse_machine_line`]. `provenance` is the last field and runs to
/// end of line (degrade reasons contain spaces).
pub fn machine_line(v: &Verdict) -> String {
    let m = measure(v);
    format!(
        "mc-result kind={} depth={} states={} levels={} complete={} provenance={}",
        m.kind, m.depth, m.states, m.levels, m.complete, m.provenance
    )
}

/// Parses an `mc-result` line out of a child's stdout.
pub fn parse_machine_line(output: &str) -> Option<MachineResult> {
    let line = output
        .lines()
        .find_map(|l| l.trim().strip_prefix("mc-result "))?;
    let (fields, provenance) = line.split_once("provenance=")?;
    let mut kind = None;
    let mut depth = None;
    let mut states = None;
    let mut levels = None;
    let mut complete = None;
    for tok in fields.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        match k {
            "kind" => kind = Some(v.to_string()),
            "depth" => depth = v.parse().ok(),
            "states" => states = v.parse().ok(),
            "levels" => levels = v.parse().ok(),
            "complete" => complete = v.parse().ok(),
            _ => {}
        }
    }
    let kind = kind?;
    let depth = depth?;
    // Pre-levels producers omit the two newer fields; fall back to the
    // best implied values so old lines keep parsing.
    let levels = levels.unwrap_or(depth);
    let complete = complete.unwrap_or(kind == "no-deadlock");
    Some(MachineResult {
        kind,
        depth,
        states: states?,
        levels,
        complete,
        provenance: provenance.trim().to_string(),
    })
}

/// How one supervised attempt ended.
enum Attempt {
    /// A verdict was produced.
    Done(MachineResult),
    /// The run died (panic, signal, bad exit) with this description.
    Crashed(String),
    /// The timeout fired; `checkpointed` says whether a resumable
    /// checkpoint is known to be safe to pick up.
    TimedOut { checkpointed: bool },
}

/// Runs the whole campaign. `cfg_of` maps each loaded spec to its
/// checker configuration (thread isolation; [`table1_config`] is the
/// Table I default), and `progress` observes each finished protocol.
pub fn run_campaign(
    entries: &[CampaignEntry],
    cc: &CampaignConfig,
    cfg_of: impl Fn(&ProtocolSpec) -> McConfig,
    mut progress: impl FnMut(&RunReport),
) -> CampaignReport {
    let started = Instant::now();
    if let Some(dir) = &cc.checkpoint_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut runs = Vec::new();
    let mut interrupted = false;
    for entry in entries {
        if let Some(sf) = &cc.stop_file {
            if sf.exists() {
                interrupted = true;
                break;
            }
        }
        let r = run_one(entry, cc, &cfg_of);
        progress(&r);
        runs.push(r);
    }
    CampaignReport {
        runs,
        interrupted,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// One protocol under the retry/backoff/resume supervisor.
fn run_one(
    entry: &CampaignEntry,
    cc: &CampaignConfig,
    cfg_of: &impl Fn(&ProtocolSpec) -> McConfig,
) -> RunReport {
    let started = Instant::now();
    // The flow-abstraction verdict is a pure function of the spec and
    // config, so the supervisor computes it directly — no isolation
    // needed — and stamps it on the report regardless of how the
    // explicit-state run fares.
    let parameterized = load_spec(&entry.arg)
        .ok()
        .map(|spec| crate::flows::check_parameterized(&spec, &cfg_of(&spec)).summary());
    let report = |kind, depth, states, levels, complete, provenance, retries, resumes, error| {
        RunReport {
            protocol: entry.name.clone(),
            kind,
            depth,
            states,
            levels,
            complete,
            provenance,
            retries,
            resumes,
            wall_ms: started.elapsed().as_millis() as u64,
            error,
            parameterized: parameterized.clone(),
        }
    };

    // Thread isolation needs the spec in-process; load it once. A spec
    // that fails to load fails the run immediately — retrying a parse
    // error is pointless.
    let loaded = match cc.isolation {
        Isolation::Thread => match load_spec(&entry.arg) {
            Ok(spec) => {
                let cfg = cfg_of(&spec);
                Some((spec, cfg))
            }
            Err(e) => {
                return report(None, 0, 0, 0, false, String::new(), 0, 0, Some(e));
            }
        },
        Isolation::Process => None,
    };

    // Per-attempt checkpoint generations. A timed-out attempt whose
    // stop-file ack never arrived may still be running (threads cannot
    // be killed) and may flush to its checkpoint path at any later
    // level boundary. Rather than poisoning resume for the rest of the
    // run, later attempts move to a fresh generation path, leaving the
    // stale writer its own file — and its own stop file, which stays in
    // place so the stale run still terminates at its next boundary.
    // Resume loads the newest generation on disk: flushes are atomic
    // (tmp + rename), so even a file a stale writer is about to replace
    // is always complete, and a torn one is rejected by checksum.
    let dir = cc.checkpoint_dir.as_deref();
    let path_for =
        |g: u32| dir.map(|d| d.join(format!("{}.g{g}.ckpt", entry.name)));
    let mut gen: u32 = 0;
    let mut retries = 0;
    let mut resumes = 0;
    let mut last_err = String::new();
    for attempt in 0..=cc.max_retries {
        if attempt > 0 {
            let wave = (attempt - 1).min(8);
            std::thread::sleep(cc.backoff.saturating_mul(1 << wave));
        }
        let write = path_for(gen);
        // Resume from the largest generation on disk, not the newest:
        // a stale writer's late flush can leave the deepest exploration
        // in an abandoned generation, and serialized size grows with
        // the visited set. (Any valid checkpoint resumes correctly —
        // this only picks the one that wastes the least work.)
        let resume_from = if attempt > 0 {
            (0..=gen)
                .filter_map(path_for)
                .filter(|p| p.exists())
                .max_by_key(|p| std::fs::metadata(p).map_or(0, |m| m.len()))
        } else {
            None
        };
        if resume_from.is_some() {
            resumes += 1;
        }
        let outcome = match (&cc.isolation, &loaded) {
            (Isolation::Thread, Some((spec, cfg))) => {
                attempt_thread(spec, cfg, cc, write.as_deref(), resume_from.as_deref())
            }
            (Isolation::Process, _) => {
                attempt_process(entry, cc, write.as_deref(), resume_from.as_deref())
            }
            // Thread isolation always has a loaded spec (early return
            // above); fail soft rather than loud if that ever changes.
            (Isolation::Thread, None) => Attempt::Crashed("spec not loaded".into()),
        };
        match outcome {
            Attempt::Done(m) => {
                return report(
                    Some(m.kind),
                    m.depth,
                    m.states,
                    m.levels,
                    m.complete,
                    m.provenance,
                    retries,
                    resumes,
                    None,
                );
            }
            Attempt::Crashed(detail) => {
                last_err = detail;
                retries += 1;
            }
            Attempt::TimedOut { checkpointed } => {
                last_err = format!("attempt timed out after {:?}", cc.timeout);
                retries += 1;
                if !checkpointed {
                    // The attempt never acked the stop file, so it may
                    // still hold this generation's path; abandon the
                    // path to it and move on.
                    gen += 1;
                }
            }
        }
    }
    // `retries` counted every failed attempt; the ones granted beyond
    // the first attempt are one fewer.
    report(
        None,
        0,
        0,
        0,
        false,
        String::new(),
        retries.saturating_sub(1),
        resumes,
        Some(last_err),
    )
}

/// What a panic payload said, for the report.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One attempt on a dedicated thread. The supervisor waits on a channel
/// with the timeout; a timed-out run is asked to stop via the stop file
/// and given a short grace period to flush its checkpoint.
fn attempt_thread(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
    resume_from: Option<&Path>,
) -> Attempt {
    // The stop file is per generation path. Clearing it here is safe:
    // a previous attempt on this same path acked the stop (or there was
    // none) and has exited — an un-acked writer got the path abandoned
    // to it, stop file and all.
    let stop = ckpt.map(|p| p.with_extension("stop"));
    if let Some(s) = &stop {
        let _ = std::fs::remove_file(s);
    }
    let budget = match cc.mem_budget {
        Some(b) => cc.budget.clone().with_mem_limit(b),
        None => cc.budget.clone(),
    };
    let mut opts = ParallelOpts::new()
        .with_threads(cc.threads)
        .with_budget(budget);
    if let Some(p) = ckpt {
        let mut policy = CheckpointPolicy::new(p);
        if let Some(s) = &stop {
            policy = policy.with_stop_file(s.clone());
        }
        opts = opts.with_policy(policy);
    }
    if let Some(i) = cc.inject {
        opts = opts.with_injection(i);
    }

    let (tx, rx) = mpsc::channel();
    let spec = spec.clone();
    let cfg = cfg.clone();
    let resume_owned = resume_from.map(Path::to_path_buf);
    std::thread::spawn(move || {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match &resume_owned {
                Some(p) => resume_parallel(p, &spec, &cfg, &opts),
                None => explore_parallel_supervised(&spec, &cfg, &opts),
            }
        }));
        let _ = tx.send(run.map_err(|p| panic_text(p.as_ref())));
    });

    match rx.recv_timeout(cc.timeout) {
        Ok(Ok(Ok(CheckpointedRun::Finished(v)))) => Attempt::Done(measure(&v)),
        Ok(Ok(Ok(CheckpointedRun::Interrupted { .. }))) => {
            // Only the stop file produces this, and we cleared it at
            // attempt start — treat a stray interrupt as a crash.
            Attempt::Crashed("run interrupted unexpectedly".into())
        }
        Ok(Ok(Err(e))) => Attempt::Crashed(format!("checkpoint error: {e}")),
        Ok(Err(panic_msg)) => Attempt::Crashed(format!("run panicked: {panic_msg}")),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Attempt::Crashed("worker thread vanished".into())
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Cooperative stop: threads cannot be killed, so ask the
            // run to flush and exit at its next level boundary.
            let Some(s) = &stop else {
                return Attempt::TimedOut { checkpointed: false };
            };
            let _ = std::fs::write(s, b"campaign timeout\n");
            // The run can only flush at its next level boundary, and
            // level time scales with the workload the timeout was
            // sized for — so the grace window scales with it, with a
            // floor that covers one large BFS level on a heavily
            // loaded machine: an ack saves this attempt's progress to
            // the current generation, so patience here is cheaper than
            // abandoning the work. A missed ack makes the supervisor
            // abandon this generation's checkpoint path to the
            // still-running attempt; the stop file stays, so it exits
            // at its next boundary.
            let grace = cc.timeout.max(Duration::from_millis(5_000));
            match rx.recv_timeout(grace) {
                Ok(Ok(Ok(CheckpointedRun::Interrupted { .. }))) => {
                    Attempt::TimedOut { checkpointed: true }
                }
                // Finished just past the wire — take the verdict.
                Ok(Ok(Ok(CheckpointedRun::Finished(v)))) => Attempt::Done(measure(&v)),
                // Still running (stuck inside a level), or died during
                // the flush: the checkpoint path may still be in use.
                _ => Attempt::TimedOut { checkpointed: false },
            }
        }
    }
}

/// One attempt in a child process: `vnet mc <spec> --machine`, stdout
/// parsed for the `mc-result` line, killed on timeout.
fn attempt_process(
    entry: &CampaignEntry,
    cc: &CampaignConfig,
    ckpt: Option<&Path>,
    resume_from: Option<&Path>,
) -> Attempt {
    use std::process::{Command, Stdio};

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return Attempt::Crashed(format!("cannot find own executable: {e}")),
    };
    let mut cmd = Command::new(exe);
    cmd.arg("mc").arg(&entry.arg).arg("--machine");
    if cc.symmetry {
        cmd.arg("--general").arg("--symmetry");
    }
    // Explorer selection, one per child: process shards when fanned
    // out, the serial out-of-core explorer when spilling, otherwise
    // the thread-parallel explorer.
    if let Some(n) = cc.shard_procs {
        let shard_dir = cc
            .checkpoint_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
            .join(format!("{}.shards", entry.name));
        cmd.arg("--shard-procs")
            .arg(n.to_string())
            .arg("--shard-dir")
            .arg(shard_dir);
    } else if let Some(d) = &cc.spill_dir {
        cmd.arg("--spill-dir").arg(d.join(&entry.name));
    } else {
        cmd.arg("--parallel").arg(cc.threads.to_string());
    }
    if let Some(b) = cc.mem_budget {
        cmd.arg("--mem-budget").arg(b.to_string());
    }
    let mut budget_clauses = Vec::new();
    if let Some(d) = cc.budget.deadline {
        budget_clauses.push(format!("{}ms", d.as_millis()));
    }
    if let Some(n) = cc.budget.node_limit {
        budget_clauses.push(format!("nodes={n}"));
    }
    if !budget_clauses.is_empty() {
        cmd.arg("--budget").arg(budget_clauses.join(","));
    }
    // A resumed child flushes onward checkpoints to the file it
    // resumed from; a fresh one writes the attempt's generation path.
    // (In process isolation the two only diverge after a kill that
    // beat the first flush.) Shard children carry their resume state
    // in the shard directory itself — `--resume` never applies.
    match (cc.shard_procs, resume_from, ckpt) {
        (Some(_), _, Some(p)) | (None, None, Some(p)) => {
            cmd.arg("--checkpoint").arg(p);
        }
        (None, Some(p), _) => {
            cmd.arg("--resume").arg(p);
        }
        _ => {}
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => return Attempt::Crashed(format!("spawn failed: {e}")),
    };

    let deadline = Instant::now() + cc.timeout;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    // The child flushes checkpoints atomically (tmp +
                    // rename), so an existing file is complete and
                    // safe to resume from — the child is dead.
                    let checkpointed =
                        resume_from.or(ckpt).is_some_and(|p| p.exists());
                    return Attempt::TimedOut { checkpointed };
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Attempt::Crashed(format!("wait failed: {e}"));
            }
        }
    };

    let mut output = String::new();
    if let Some(mut out) = child.stdout.take() {
        use std::io::Read as _;
        let _ = out.read_to_string(&mut output);
    }
    if let Some(m) = parse_machine_line(&output) {
        return Attempt::Done(m);
    }
    match status.code() {
        Some(code) => Attempt::Crashed(format!(
            "child exited with code {code} and no mc-result line"
        )),
        None => {
            #[cfg(unix)]
            let detail = {
                use std::os::unix::process::ExitStatusExt as _;
                match status.signal() {
                    Some(sig) => format!("child killed by signal {sig}"),
                    None => "child died without exit code".to_string(),
                }
            };
            #[cfg(not(unix))]
            let detail = "child died without exit code".to_string();
            Attempt::Crashed(detail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> CampaignEntry {
        CampaignEntry {
            name: name.to_string(),
            arg: name.to_string(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vnet-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    /// A tiny-bounded config so campaign tests stay fast: the verdicts
    /// are bounded no-deadlocks, which is fine — the campaign machinery
    /// is what is under test.
    fn small_cfg(spec: &ProtocolSpec) -> McConfig {
        McConfig::figure3(spec)
            .with_vns(VnMap::one_per_message(spec.messages().len()))
            .with_limits(2_000, Some(6))
    }

    #[test]
    fn machine_line_round_trips() {
        let spec = protocols::msi_blocking_cache();
        let cfg = small_cfg(&spec).with_limits(500, Some(4));
        let v = crate::explore::explore(&spec, &cfg);
        let line = machine_line(&v);
        let parsed = parse_machine_line(&line);
        assert!(parsed.is_some(), "unparseable line: {line}");
        assert!(matches!(parsed, Some(m) if m == measure(&v)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_machine_line("").is_none());
        assert!(parse_machine_line("mc-result kind=deadlock").is_none());
        assert!(parse_machine_line("mc-result depth=x states=1 provenance=exact").is_none());
        // Degrade reasons contain spaces and survive the round trip.
        let m = parse_machine_line(
            "mc-result kind=no-deadlock depth=3 states=10 provenance=degraded: node limit of 10 reached",
        );
        assert!(
            matches!(&m, Some(m) if m.provenance == "degraded: node limit of 10 reached"),
            "{m:?}"
        );
    }

    #[test]
    fn thread_campaign_sweeps_and_reports() {
        let entries = [entry("MSI-blocking-cache"), entry("MESI-blocking-cache")];
        let cc = CampaignConfig::new().with_threads(2).with_retries(0);
        let mut seen = Vec::new();
        let rep = run_campaign(&entries, &cc, small_cfg, |r| seen.push(r.protocol.clone()));
        assert!(rep.all_completed(), "{}", rep.to_json());
        assert_eq!(seen, ["MSI-blocking-cache", "MESI-blocking-cache"]);
        assert!(rep.runs.iter().all(|r| r.states > 0));
        let json = rep.to_json();
        assert!(
            json.contains("\"protocol\": \"MSI-blocking-cache\""),
            "{json}"
        );
        assert!(json.contains("\"interrupted\": false"), "{json}");
        // The supervisor stamps every run with the flow-abstraction
        // verdict; the Figure-3 script is an explicit injection script,
        // so these degrade to the inapplicable (bounded-only) summary.
        assert!(
            rep.runs
                .iter()
                .all(|r| matches!(&r.parameterized, Some(p) if p.starts_with("flow-"))),
            "{json}"
        );
        assert!(json.contains("\"parameterized\": \"flow-inapplicable"), "{json}");
    }

    #[test]
    fn unloadable_spec_fails_its_slot_only() {
        let entries = [entry("no-such-protocol"), entry("MSI-blocking-cache")];
        let cc = CampaignConfig::new().with_threads(1).with_retries(0);
        let rep = run_campaign(&entries, &cc, small_cfg, |_| {});
        assert!(!rep.all_completed());
        assert_eq!(rep.runs.len(), 2);
        assert!(!rep.runs[0].completed());
        assert!(rep.runs[0].error.is_some());
        assert!(rep.runs[1].completed());
    }

    #[test]
    fn injected_worker_loss_degrades_but_campaign_survives() {
        let entries = [entry("MSI-blocking-cache")];
        let dir = tmpdir("loss");
        let cc = CampaignConfig::new()
            .with_threads(2)
            .with_retries(0)
            .with_checkpoint_dir(&dir)
            .with_injection(PanicInjection {
                level: 2,
                times: u32::MAX,
            });
        let rep = run_campaign(&entries, &cc, small_cfg, |_| {});
        let _ = std::fs::remove_dir_all(&dir);
        assert!(rep.all_completed(), "{}", rep.to_json());
        assert!(rep.any_degraded(), "{}", rep.to_json());
        let r = &rep.runs[0];
        assert!(
            r.provenance.contains("worker loss"),
            "provenance: {}",
            r.provenance
        );
    }

    #[test]
    fn stop_file_interrupts_between_protocols() {
        let dir = tmpdir("stop");
        let stop = dir.join("stop");
        let _ = std::fs::write(&stop, b"halt\n");
        let entries = [entry("MSI-blocking-cache")];
        let cc = CampaignConfig::new().with_stop_file(&stop);
        let rep = run_campaign(&entries, &cc, small_cfg, |_| {});
        let _ = std::fs::remove_dir_all(&dir);
        assert!(rep.interrupted);
        assert!(rep.runs.is_empty());
        assert!(!rep.all_completed());
        assert!(rep.to_json().contains("\"interrupted\": true"));
    }

    #[test]
    fn discover_finds_the_table1_specs() -> Result<(), String> {
        // The repo root is two levels up from this crate.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../protocols");
        let entries = discover(&dir)?;
        assert_eq!(entries.len(), 12, "Table I has 12 specs");
        assert!(entries.windows(2).all(|w| w[0].name <= w[1].name));
        assert!(entries.iter().any(|e| e.name == "MSI-blocking-cache"));
        Ok(())
    }
}
