//! The §VI-C3 implication, measured: sweep the number of VNs provisioned
//! for a Class-3 protocol and report buffer cost and behavior.
//!
//! * Below the minimum (1 VN for CHI / MSI-nonblocking): the simulator
//!   wedges under a write storm — the VN deadlock is real.
//! * At the minimum (2 VNs, derived mapping): deadlock-free.
//! * Above the minimum (3–4 VNs, type-split mappings): still
//!   deadlock-free, but buffer cost grows linearly for nothing.

use vnet_mc::VnMap;
use vnet_protocol::{protocols, MsgType, ProtocolSpec};
use vnet_sim::sim::minimal_vn_map;
use vnet_sim::{SimConfig, Simulator, Topology, Workload};

fn mapping_with(spec: &ProtocolSpec, n: usize) -> VnMap {
    // 1 = everything together; 2 = derived minimum; 3 = req/fwd/resp;
    // 4 = req/fwd/ctrl/data (CHI's own split).
    match n {
        1 => VnMap::single(spec.messages().len()),
        2 => minimal_vn_map(spec).expect("Class 3 protocol"),
        3 => VnMap::textbook(spec),
        _ => VnMap::from_vns(
            spec.messages()
                .iter()
                .map(|m| match m.mtype {
                    MsgType::Request => 0,
                    MsgType::FwdRequest => 1,
                    MsgType::CtrlResponse => 2,
                    MsgType::DataResponse => 3,
                })
                .collect(),
        ),
    }
}

fn main() {
    let topo = Topology::Mesh(3, 2);
    let n_addrs = 2;
    let n_dirs = 2;

    for spec in [protocols::chi(), protocols::msi_nonblocking_cache()] {
        println!("\n=== {} on 3x2 mesh, mixed read/write contention ===", spec.name());
        println!(
            "{:>4} {:>12} {:>10} {:>10} {:>10} {:>11}",
            "VNs", "buffer cost", "cycles", "completed", "avg lat", "deadlocked"
        );
        for n in 1..=4 {
            let vns = mapping_with(&spec, n);
            let cfg = SimConfig::new(&spec, topo, n_addrs, n_dirs).with_vns(vns);
            let cost = cfg.buffer_cost();
            // A mixed read/write workload: writes alone never enter MSI's
            // S_D (its only directory stall), so reads are needed to
            // exercise the queueing that VN separation exists for.
            let w = Workload::uniform_random(cfg.n_caches(), n_addrs, 40, 23);
            let r = Simulator::new(spec.clone(), cfg).run(w, 1_000_000);
            println!(
                "{:>4} {:>12} {:>10} {:>10} {:>10.1} {:>11}",
                r.n_vns, cost, r.cycles, r.completed_transactions, r.avg_latency, r.deadlocked
            );
            assert!(
                r.model_error.is_none(),
                "{}: {:?}",
                spec.name(),
                r.model_error
            );
            if n == 1 {
                assert!(
                    r.deadlocked,
                    "{}: a single VN must wedge under contention",
                    spec.name()
                );
            } else {
                assert!(!r.deadlocked, "{}: {n} VNs must be clean", spec.name());
            }
        }
        println!(
            "shape: deadlock at 1 VN; clean from the derived minimum (2) upward;\n\
             buffer cost grows linearly with VNs with no behavioral benefit."
        );
    }
}
