//! Ergonomic, name-based construction of [`ProtocolSpec`]s.
//!
//! Protocol tables are authored with string names and resolved eagerly;
//! unknown names panic at construction time (they are authoring bugs, not
//! runtime conditions). See `crate::protocols::msi`'s source for
//! full-scale usage.

use crate::action::{Action, Payload, Target};
use crate::event::{CoreOp, Guard, Trigger};
use crate::message::{MessageDef, MsgId, MsgType};
use crate::spec::ProtocolSpec;
use crate::state::{StateDef, StateId, StateKind};
use crate::table::{Cell, ControllerSpec, Entry};

/// A pending action sequence plus optional next state, built by [`acts`].
#[derive(Debug, Clone, Default)]
pub struct Acts {
    steps: Vec<Step>,
    next: Option<String>,
}

#[derive(Debug, Clone)]
enum Step {
    Send(String, Target, Payload),
    ToSharers(String),
    Raw(Action),
}

/// Starts an action sequence for a table cell.
///
/// # Example
///
/// ```
/// use vnet_protocol::{acts, Target};
///
/// let entry = acts().send("GetS", Target::Dir).goto("IS_D");
/// # let _ = entry;
/// ```
pub fn acts() -> Acts {
    Acts::default()
}

impl Acts {
    /// Send a control message.
    pub fn send(mut self, msg: &str, to: Target) -> Self {
        self.steps.push(Step::Send(msg.into(), to, Payload::None));
        self
    }

    /// Send a message carrying the cache line.
    pub fn send_data(mut self, msg: &str, to: Target) -> Self {
        self.steps.push(Step::Send(msg.into(), to, Payload::Data));
        self
    }

    /// Send a data message carrying an ack count equal to the number of
    /// sharers other than the requestor.
    pub fn send_data_acks(mut self, msg: &str, to: Target) -> Self {
        self.steps
            .push(Step::Send(msg.into(), to, Payload::DataAckFromSharers));
        self
    }

    /// Send a message carrying an ack count (but no data) equal to the
    /// number of sharers other than the requestor.
    pub fn send_acks_from_sharers(mut self, msg: &str, to: Target) -> Self {
        self.steps
            .push(Step::Send(msg.into(), to, Payload::AckFromSharers));
        self
    }

    /// Send a data message whose ack count is copied from the message
    /// being processed.
    pub fn send_data_acks_from_msg(mut self, msg: &str, to: Target) -> Self {
        self.steps
            .push(Step::Send(msg.into(), to, Payload::DataAckFromMsg));
        self
    }

    /// Send a data message whose ack count was stored by
    /// [`Acts::record_writer`].
    pub fn send_data_acks_stored(mut self, msg: &str, to: Target) -> Self {
        self.steps
            .push(Step::Send(msg.into(), to, Payload::DataAckStored));
        self
    }

    /// Send `msg` to every sharer except the requestor.
    pub fn to_sharers(mut self, msg: &str) -> Self {
        self.steps.push(Step::ToSharers(msg.into()));
        self
    }

    /// Directory: record the requestor as owner.
    pub fn set_owner_to_req(mut self) -> Self {
        self.steps.push(Step::Raw(Action::SetOwnerToReq));
        self
    }

    /// Directory: clear the owner.
    pub fn clear_owner(mut self) -> Self {
        self.steps.push(Step::Raw(Action::ClearOwner));
        self
    }

    /// Directory: add the requestor to the sharers.
    pub fn add_req_to_sharers(mut self) -> Self {
        self.steps.push(Step::Raw(Action::AddReqToSharers));
        self
    }

    /// Directory: add the owner to the sharers.
    pub fn add_owner_to_sharers(mut self) -> Self {
        self.steps.push(Step::Raw(Action::AddOwnerToSharers));
        self
    }

    /// Directory: remove the requestor from the sharers.
    pub fn remove_req_from_sharers(mut self) -> Self {
        self.steps.push(Step::Raw(Action::RemoveReqFromSharers));
        self
    }

    /// Directory: clear the sharers.
    pub fn clear_sharers(mut self) -> Self {
        self.steps.push(Step::Raw(Action::ClearSharers));
        self
    }

    /// Directory: write the message's data to memory.
    pub fn copy_to_mem(mut self) -> Self {
        self.steps.push(Step::Raw(Action::CopyDataToMem));
        self
    }

    /// Cache: add the requestor to the deferred-reader set for a later
    /// [`Target::Readers`] multicast.
    pub fn record_reader(mut self) -> Self {
        self.steps.push(Step::Raw(Action::RecordReader));
        self
    }

    /// Cache: remember the requestor and its ack count for a later
    /// [`Target::Writer`] send.
    pub fn record_writer(mut self) -> Self {
        self.steps.push(Step::Raw(Action::RecordWriter));
        self
    }

    /// Directory: set the pending counter to |sharers \ {req}|.
    pub fn set_pending_other_sharers(mut self) -> Self {
        self.steps.push(Step::Raw(Action::SetPendingToOtherSharers));
        self
    }

    /// Directory: decrement the pending counter.
    pub fn dec_pending(mut self) -> Self {
        self.steps.push(Step::Raw(Action::DecPending));
        self
    }

    /// Cache: absorb the ack count carried by the received data message.
    pub fn add_acks_from_msg(mut self) -> Self {
        self.steps.push(Step::Raw(Action::AddAcksFromMsg));
        self
    }

    /// Cache: decrement the needed-acks counter.
    pub fn dec_needed_acks(mut self) -> Self {
        self.steps.push(Step::Raw(Action::DecNeededAcks));
        self
    }

    /// Transition to `state` after the actions.
    pub fn goto(mut self, state: &str) -> Self {
        self.next = Some(state.into());
        self
    }

    /// Appends `other`'s steps (and adopts its next state, if set).
    pub fn extend(mut self, other: Acts) -> Self {
        self.steps.extend(other.steps);
        if other.next.is_some() {
            self.next = other.next;
        }
        self
    }
}

/// Builder for [`ProtocolSpec`]s.
///
/// # Panics
///
/// All insertion methods panic on unresolved message or state names —
/// table authoring errors should fail loudly at construction.
#[derive(Debug)]
pub struct ProtocolBuilder {
    name: String,
    messages: Vec<MessageDef>,
    cache_states: Vec<StateDef>,
    dir_states: Vec<StateDef>,
    cache_initial: Option<String>,
    dir_initial: Option<String>,
    cache_cells: Vec<(String, TriggerSpec, CellSpec)>,
    dir_cells: Vec<(String, TriggerSpec, CellSpec)>,
}

#[derive(Debug, Clone)]
enum TriggerSpec {
    Core(CoreOp),
    Msg(String, Guard),
}

#[derive(Debug, Clone)]
enum CellSpec {
    Acts(Acts),
    Stall,
}

impl ProtocolBuilder {
    /// Starts a new protocol named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProtocolBuilder {
            name: name.into(),
            messages: Vec::new(),
            cache_states: Vec::new(),
            dir_states: Vec::new(),
            cache_initial: None,
            dir_initial: None,
            cache_cells: Vec::new(),
            dir_cells: Vec::new(),
        }
    }

    /// Declares a message name.
    pub fn msg(&mut self, name: &str, mtype: MsgType) -> &mut Self {
        assert!(
            !self.messages.iter().any(|m| m.name == name),
            "duplicate message {name}"
        );
        self.messages.push(MessageDef::new(name, mtype));
        self
    }

    /// Declares stable cache states.
    pub fn cache_stable(&mut self, names: &[&str]) -> &mut Self {
        for n in names {
            self.cache_states.push(StateDef::new(*n, StateKind::Stable));
        }
        self
    }

    /// Declares transient cache states.
    pub fn cache_transient(&mut self, names: &[&str]) -> &mut Self {
        for n in names {
            self.cache_states
                .push(StateDef::new(*n, StateKind::Transient));
        }
        self
    }

    /// Declares stable directory states.
    pub fn dir_stable(&mut self, names: &[&str]) -> &mut Self {
        for n in names {
            self.dir_states.push(StateDef::new(*n, StateKind::Stable));
        }
        self
    }

    /// Declares transient directory states.
    pub fn dir_transient(&mut self, names: &[&str]) -> &mut Self {
        for n in names {
            self.dir_states
                .push(StateDef::new(*n, StateKind::Transient));
        }
        self
    }

    /// Sets the initial cache state (defaults to the first stable one).
    pub fn cache_initial(&mut self, name: &str) -> &mut Self {
        self.cache_initial = Some(name.into());
        self
    }

    /// Sets the initial directory state (defaults to the first stable one).
    pub fn dir_initial(&mut self, name: &str) -> &mut Self {
        self.dir_initial = Some(name.into());
        self
    }

    /// Cache cell for a core event.
    pub fn cache_on_core(&mut self, state: &str, op: CoreOp, acts: Acts) -> &mut Self {
        self.cache_cells
            .push((state.into(), TriggerSpec::Core(op), CellSpec::Acts(acts)));
        self
    }

    /// Cache cell for an unguarded message reception.
    pub fn cache_on_msg(&mut self, state: &str, msg: &str, acts: Acts) -> &mut Self {
        self.cache_on_msg_if(state, msg, Guard::Always, acts)
    }

    /// Cache cell for a guarded message reception.
    pub fn cache_on_msg_if(
        &mut self,
        state: &str,
        msg: &str,
        guard: Guard,
        acts: Acts,
    ) -> &mut Self {
        self.cache_cells.push((
            state.into(),
            TriggerSpec::Msg(msg.into(), guard),
            CellSpec::Acts(acts),
        ));
        self
    }

    /// Cache stall on a core event (delays the core; invisible to the
    /// network).
    pub fn cache_stall_core(&mut self, state: &str, op: CoreOp) -> &mut Self {
        self.cache_cells
            .push((state.into(), TriggerSpec::Core(op), CellSpec::Stall));
        self
    }

    /// Cache stall on a message (blocks the message's VN — the stalls the
    /// paper's analysis is about).
    pub fn cache_stall_msg(&mut self, state: &str, msg: &str) -> &mut Self {
        self.cache_cells.push((
            state.into(),
            TriggerSpec::Msg(msg.into(), Guard::Always),
            CellSpec::Stall,
        ));
        self
    }

    /// Directory cell for an unguarded message reception.
    pub fn dir_on_msg(&mut self, state: &str, msg: &str, acts: Acts) -> &mut Self {
        self.dir_on_msg_if(state, msg, Guard::Always, acts)
    }

    /// Directory cell for a guarded message reception.
    pub fn dir_on_msg_if(
        &mut self,
        state: &str,
        msg: &str,
        guard: Guard,
        acts: Acts,
    ) -> &mut Self {
        self.dir_cells.push((
            state.into(),
            TriggerSpec::Msg(msg.into(), guard),
            CellSpec::Acts(acts),
        ));
        self
    }

    /// Directory stall on a message.
    pub fn dir_stall_msg(&mut self, state: &str, msg: &str) -> &mut Self {
        self.dir_cells.push((
            state.into(),
            TriggerSpec::Msg(msg.into(), Guard::Always),
            CellSpec::Stall,
        ));
        self
    }

    /// Resolves all names and produces the specification.
    ///
    /// # Panics
    ///
    /// Panics on unknown message/state names or duplicate cells.
    pub fn build(&self) -> ProtocolSpec {
        let msg_id = |name: &str| -> MsgId {
            MsgId(
                self.messages
                    .iter()
                    .position(|m| m.name == name)
                    .unwrap_or_else(|| panic!("unknown message {name}")),
            )
        };
        let build_ctrl = |states: &[StateDef],
                          initial: &Option<String>,
                          cells: &[(String, TriggerSpec, CellSpec)],
                          side: &str|
         -> ControllerSpec {
            let state_id = |name: &str| -> StateId {
                StateId(
                    states
                        .iter()
                        .position(|s| s.name == name)
                        .unwrap_or_else(|| panic!("unknown {side} state {name}")),
                )
            };
            let init = match initial {
                Some(n) => state_id(n),
                None => StateId(
                    states
                        .iter()
                        .position(|s| s.kind == StateKind::Stable)
                        .expect("no stable state to use as initial"),
                ),
            };
            let mut ctrl = ControllerSpec::new(states.to_vec(), init);
            for (state, tspec, cspec) in cells {
                let sid = state_id(state);
                let trigger = match tspec {
                    TriggerSpec::Core(op) => Trigger::core(*op),
                    TriggerSpec::Msg(m, g) => Trigger::msg_if(msg_id(m), *g),
                };
                assert!(
                    ctrl.cell(sid, trigger).is_none(),
                    "duplicate {side} cell ({state}, {trigger:?})"
                );
                let cell = match cspec {
                    CellSpec::Stall => Cell::Stall,
                    CellSpec::Acts(acts) => {
                        let actions = acts
                            .steps
                            .iter()
                            .map(|s| match s {
                                Step::Send(m, to, p) => Action::Send {
                                    msg: msg_id(m),
                                    to: *to,
                                    payload: *p,
                                },
                                Step::ToSharers(m) => {
                                    Action::SendToSharersExceptReq { msg: msg_id(m) }
                                }
                                Step::Raw(a) => a.clone(),
                            })
                            .collect();
                        let next = acts.next.as_deref().map(state_id);
                        Cell::Entry(Entry { actions, next })
                    }
                };
                ctrl.set(sid, trigger, cell);
            }
            ctrl
        };

        let cache = build_ctrl(
            &self.cache_states,
            &self.cache_initial,
            &self.cache_cells,
            "cache",
        );
        let directory = build_ctrl(&self.dir_states, &self.dir_initial, &self.dir_cells, "dir");
        ProtocolSpec::new(self.name.clone(), self.messages.clone(), cache, directory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("tiny");
        b.msg("Get", MsgType::Request)
            .msg("Dat", MsgType::DataResponse);
        b.cache_stable(&["I", "V"]).cache_transient(&["IV"]);
        b.dir_stable(&["I"]);
        b.cache_on_core("I", CoreOp::Load, acts().send("Get", Target::Dir).goto("IV"));
        b.cache_on_msg("IV", "Dat", acts().goto("V"));
        b.cache_stall_msg("IV", "Get");
        b.dir_on_msg("I", "Get", acts().send_data("Dat", Target::Req));
        b.build()
    }

    #[test]
    fn builds_and_resolves() {
        let p = tiny();
        assert_eq!(p.name(), "tiny");
        let get = p.message_by_name("Get").unwrap();
        let iv = p.cache().state_by_name("IV").unwrap();
        assert!(p.cache().cell(iv, Trigger::msg(get)).unwrap().is_stall());
        assert_eq!(p.cache().initial(), p.cache().state_by_name("I").unwrap());
    }

    #[test]
    fn entry_actions_resolved() {
        let p = tiny();
        let get = p.message_by_name("Get").unwrap();
        let dat = p.message_by_name("Dat").unwrap();
        let i = p.directory().state_by_name("I").unwrap();
        let cell = p.directory().cell(i, Trigger::msg(get)).unwrap();
        let entry = cell.entry().unwrap();
        assert_eq!(entry.sends().collect::<Vec<_>>(), vec![(dat, Target::Req)]);
        assert_eq!(entry.next, None);
    }

    #[test]
    #[should_panic(expected = "unknown message")]
    fn unknown_message_panics() {
        let mut b = ProtocolBuilder::new("bad");
        b.cache_stable(&["I"]);
        b.dir_stable(&["I"]);
        b.cache_on_msg("I", "Nope", acts());
        b.build();
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn duplicate_message_panics() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Get", MsgType::Request).msg("Get", MsgType::Request);
    }

    #[test]
    #[should_panic(expected = "duplicate cache cell")]
    fn duplicate_cell_panics() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Get", MsgType::Request);
        b.cache_stable(&["I"]);
        b.dir_stable(&["I"]);
        b.cache_stall_msg("I", "Get");
        b.cache_stall_msg("I", "Get");
        b.build();
    }

    #[test]
    fn default_initial_is_first_stable() {
        let p = tiny();
        assert_eq!(p.directory().initial(), StateId(0));
    }
}
