//! N-sweep cross-validation of the parameterized (flow-abstraction)
//! deadlock-freedom checker against the explicit-state explorers.
//!
//! The flow checker's claim is one-sided: `free-all-n` certifies
//! deadlock freedom for EVERY cache count, so any explicit-state
//! deadlock at any N under the same VN map refutes it — a hard test
//! failure. `not-provable` and `inapplicable` impose no constraint on
//! the explicit answer (the abstraction is sufficient, not necessary).
//!
//! Sweep shape: for all nine Table I protocols, the complete small
//! general scenario (per-cache budget 1, one address, one directory) at
//! N = 2, 3, 4 caches, cross-checked serial vs thread-parallel vs
//! ±symmetry in-process, plus a process-shard CLI row — both at the
//! analyzer's assigned VN count and one VN short.

use vnet::core::{analyze, VnOutcome};
use vnet::mc::{
    check_parameterized, check_vn_map, explore, explore_parallel, flows_canonical, FlowVerdict,
    InjectionBudget, McConfig, Verdict, VnMap,
};
use vnet::protocol::{dsl, protocols};

fn kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::NoDeadlock(_) => "no_deadlock",
        Verdict::Deadlock { .. } => "deadlock",
        Verdict::ModelError { .. } => "model_error",
        Verdict::InvariantViolation { .. } => "invariant_violation",
    }
}

/// The complete small general scenario at `n` caches under `map`.
fn sweep_cfg(spec: &vnet::protocol::ProtocolSpec, map: VnMap, n: usize) -> McConfig {
    let mut cfg = McConfig::general(spec)
        .with_vns(map)
        .with_budget(InjectionBudget::PerCache(1));
    cfg.n_caches = n;
    cfg.n_addrs = 1;
    cfg.n_dirs = 1;
    cfg
}

/// The analyzer's VN resolution for a spec: the minimal assignment, or
/// one VN per message for Class 2 (the campaign/serve convention).
fn resolved_map(spec: &vnet::protocol::ProtocolSpec) -> (VnMap, Option<usize>) {
    let n_msgs = spec.messages().len();
    match analyze(spec).outcome() {
        VnOutcome::Assigned { assignment, .. } => (
            VnMap::from_assignment(assignment, n_msgs),
            Some(assignment.n_vns()),
        ),
        VnOutcome::Class2(_) => (VnMap::one_per_message(n_msgs), None),
    }
}

/// Merges the top VN down: a deterministic one-VN-short fold.
fn merge_top_vn(map: &VnMap) -> VnMap {
    let n = map.n_vns();
    let vns = map
        .vn_vector()
        .iter()
        .map(|&v| if v == n - 1 { n - 2 } else { v })
        .collect();
    VnMap::from_vns(vns)
}

/// The agreement contract: a `free-all-n` flow verdict is refuted by
/// any explicit-state deadlock under the same map; everything else is
/// unconstrained. Clean verdicts must additionally be complete, or
/// they would not be evidence of anything.
fn assert_one_sided(name: &str, n: usize, tag: &str, flow: &FlowVerdict, explicit: &Verdict) {
    // A deadlock verdict stops mid-level (`complete` is explorer-
    // specific there); only a clean verdict must cover the whole space
    // for its "no deadlock" to mean anything.
    if matches!(explicit, Verdict::NoDeadlock(_)) {
        assert!(
            explicit.stats().complete,
            "{name} (N={n}, {tag}): a clean sweep verdict must be complete"
        );
    }
    // A flow-free claim is refuted by a deadlock — that is the
    // one-sided contract, and it is absolute. A model error or
    // invariant violation is a different failure class: the spec the
    // flows were extracted from does not even execute at this N
    // (several builtin tables are incomplete for multi-cache forward
    // races, e.g. MOSI-nonblocking's Fwd-GetS in I at N ≥ 3), so the
    // deadlock-freedom claim is conditional there and the row neither
    // confirms nor refutes it.
    if flow.is_free_for_all_n() {
        assert!(
            !matches!(explicit, Verdict::Deadlock { .. }),
            "{name} (N={n}, {tag}): flow checker certified freedom for all N but the \
             explicit-state explorer found a deadlock"
        );
    }
}

/// The headline sweep: for every Table I protocol, the flow verdict
/// under the analyzer's map must agree (one-sidedly) with serial,
/// thread-parallel, and ±symmetry explicit-state runs at N = 2, 3, 4 —
/// and the verdict itself must be N-invariant. One VN short of the
/// assigned count, the flow checker must never claim freedom (analyzer
/// minimality: every fold has an Eq. 4 cycle), and whatever the
/// explicit explorers find at small N must not contradict it.
#[test]
fn flow_verdict_agrees_with_every_explorer_at_n_2_3_4() {
    for spec in protocols::all() {
        let name = spec.name().to_string();
        let (map, n_vns) = resolved_map(&spec);

        // Assigned protocols must certify; Class 2 must not.
        let reference = check_vn_map(&spec, &map);
        match n_vns {
            Some(_) => assert!(
                reference.is_free_for_all_n(),
                "{name}: the analyzer's minimal assignment must certify for all N: {}",
                reference.summary()
            ),
            None => assert!(
                !reference.is_free_for_all_n(),
                "{name}: a Class 2 protocol must never certify: {}",
                reference.summary()
            ),
        }

        let short_map = match n_vns {
            Some(n) if n >= 2 => {
                let short = merge_top_vn(&map);
                let short_verdict = check_vn_map(&spec, &short);
                assert!(
                    !short_verdict.is_free_for_all_n(),
                    "{name}: {} VNs (one fewer than assigned) must not certify — \
                     contradicts analyzer minimality: {}",
                    n - 1,
                    short_verdict.summary()
                );
                Some((short, short_verdict))
            }
            _ => None,
        };

        for n in 2..=4 {
            let cfg = sweep_cfg(&spec, map.clone(), n);
            // `check_parameterized` re-derives the verdict through the
            // full precondition gate; it must match the map-level
            // reference at every N (the abstraction is N-independent).
            let fv = check_parameterized(&spec, &cfg);
            assert_eq!(
                fv.verdict_token(),
                reference.verdict_token(),
                "{name} (N={n}): flow verdict must be N-invariant"
            );

            let serial = explore(&spec, &cfg);
            assert_one_sided(&name, n, "serial", &fv, &serial);

            let parallel = explore_parallel(&spec, &cfg, 2);
            assert_one_sided(&name, n, "parallel", &fv, &parallel);
            assert_eq!(
                kind(&serial),
                kind(&parallel),
                "{name} (N={n}): serial vs parallel diverged"
            );
            if matches!(serial, Verdict::NoDeadlock(_)) {
                // Counterexample runs stop mid-level, so absolute state
                // counts are explorer-specific; complete clean runs
                // must agree state-for-state.
                assert_eq!(
                    serial.stats().states,
                    parallel.stats().states,
                    "{name} (N={n}): state counts diverged"
                );
            }

            let sym_cfg = cfg
                .clone()
                .with_symmetry()
                .expect("the sweep scenario satisfies the symmetry preconditions");
            let sym = explore(&spec, &sym_cfg);
            assert_one_sided(&name, n, "symmetry", &fv, &sym);
            assert_eq!(
                kind(&serial),
                kind(&sym),
                "{name} (N={n}): symmetry changed the verdict kind"
            );

            // One VN short: the flow checker said not-provable above;
            // the explicit answer (either way) must not be contradicted
            // — and a deadlock found here is the minimality witness.
            if let Some((short, short_verdict)) = &short_map {
                let short_cfg = sweep_cfg(&spec, short.clone(), n);
                let short_serial = explore(&spec, &short_cfg);
                assert_one_sided(&name, n, "one-short", short_verdict, &short_serial);
                if let Verdict::Deadlock { trace, .. } = &short_serial {
                    let end = trace.replay(&spec, &short_cfg).unwrap_or_else(|e| {
                        panic!("{name} (N={n}): one-short witness does not replay: {e}")
                    });
                    assert_eq!(end, trace.last, "{name} (N={n}): replay drifted");
                }
            }
        }
    }
}

/// The process-shard CLI leg: `--parameterized --machine` next to
/// `--shard-procs` must print a `param-result` line that agrees with
/// the in-process checker, on a certifying row (MSI-nonblocking,
/// assigned map) and a non-certifying one (single VN). Witness-
/// producing rows pass `--verify-witness`.
#[test]
fn cli_shard_procs_rows_carry_the_parameterized_verdict() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_vnet");
    let dir = std::env::temp_dir().join(format!("vnet-param-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("shard dir");

    let run = |proto: &str, vn_flag: Option<&str>, shard_sub: &str| -> (i32, String) {
        let shard_dir = dir.join(shard_sub);
        let mut cmd = Command::new(bin);
        cmd.args(["mc", proto]);
        if let Some(f) = vn_flag {
            cmd.arg(f);
        }
        cmd.args([
            "--general", "--caches", "3", "--addrs", "1", "--dirs", "1", "--per-cache", "1",
            "--machine", "--parameterized", "--verify-witness", "--shard-procs", "2",
            "--shard-dir",
        ])
        .arg(&shard_dir);
        let out = cmd.output().expect("vnet mc should spawn");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    };
    let line = |stdout: &str, prefix: &str| -> String {
        stdout
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("no {prefix} line in:\n{stdout}"))
            .to_string()
    };

    // Certifying row: the assigned (minimal) map on a nonblocking
    // protocol — flow-free for all N, and the explicit shard run agrees.
    let (code, out) = run("MSI-nonblocking-cache", None, "free");
    assert_eq!(code, 0, "certifying row must be clean:\n{out}");
    let param = line(&out, "param-result ");
    assert_eq!(
        param, "param-result verdict=free-all-n provenance=parameterized",
        "in:\n{out}"
    );
    assert!(
        line(&out, "mc-result ").contains("kind=no-deadlock"),
        "{out}"
    );

    // Non-certifying row: everything on one VN — the flow checker must
    // degrade to bounded-only, never claim freedom, whatever the
    // explicit verdict at this N.
    let (code, out) = run("MSI-nonblocking-cache", Some("--single-vn"), "short");
    let param = line(&out, "param-result ");
    assert!(
        param.starts_with("param-result verdict=not-provable provenance=bounded-only"),
        "in:\n{out}"
    );
    if line(&out, "mc-result ").contains("kind=deadlock") {
        assert_eq!(code, 2, "deadlock rows exit 2:\n{out}");
        assert!(
            out.contains("witness verified"),
            "witness-producing rows must verify their witness:\n{out}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Flow extraction is a pure function of the parsed spec: byte-identical
/// across repeated runs, across a DSL round-trip, and across seeded
/// thread fan-outs (a fixed LCG picks the thread counts, so the
/// schedule pressure varies but the test is reproducible).
#[test]
fn flow_extraction_is_byte_identical_across_runs_and_threads() {
    let mut seed: u64 = 0x005e_edca_fef1_0e55_u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) % 7 + 2) as usize // 2..=8 threads
    };
    for spec in protocols::all() {
        let baseline = flows_canonical(&spec);
        assert!(!baseline.is_empty(), "{}: no flows extracted", spec.name());

        // Re-parsing the normalized DSL export must reproduce the exact
        // same flows — extraction depends on the parsed spec alone.
        let text = dsl::to_text(&spec);
        let reparsed = dsl::parse(&text)
            .unwrap_or_else(|e| panic!("{}: round-trip parse failed: {e}", spec.name()));
        assert_eq!(
            baseline,
            flows_canonical(&reparsed),
            "{}: DSL round-trip changed the extracted flows",
            spec.name()
        );

        for round in 0..3 {
            let threads = next();
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let spec = spec.clone();
                    std::thread::spawn(move || flows_canonical(&spec))
                })
                .collect();
            for h in handles {
                let got = h.join().expect("extraction thread panicked");
                assert_eq!(
                    got,
                    baseline,
                    "{} (round {round}, {threads} threads): extraction is not pure",
                    spec.name()
                );
            }
        }
    }
}
