//! Scaling of the feedback-arc-set kernels: the exact lazy-cycle
//! branch-and-bound vs. the Eades–Lin–Smyth heuristic on random
//! digraphs, and the Eq.-5 condition-graph construction on synthetic
//! `waits`/`queues` relations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vnet_core::deadlock::build_condition_graph;
use vnet_core::synthetic::random_waits_queues;
use vnet_graph::fas::{heuristic_feedback_arc_set, minimum_feedback_arc_set};
use vnet_graph::{DiGraph, NodeId};

fn random_digraph(n: usize, density: f64, seed: u64) -> DiGraph<(), u128> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(density) {
                g.add_edge(ns[i], ns[j], rng.gen_range(1..8));
            }
        }
    }
    g
}

fn bench_exact_vs_heuristic(c: &mut Criterion) {
    let mut g = c.benchmark_group("fas");
    for n in [6usize, 8, 10, 12] {
        let graph = random_digraph(n, 0.25, 42 + n as u64);
        g.bench_with_input(BenchmarkId::new("exact", n), &graph, |b, graph| {
            b.iter(|| black_box(minimum_feedback_arc_set(graph, |&w| w)))
        });
        g.bench_with_input(BenchmarkId::new("heuristic", n), &graph, |b, graph| {
            b.iter(|| black_box(heuristic_feedback_arc_set(graph, |&w| w)))
        });
    }
    // The heuristic keeps going where exact search would blow up.
    for n in [32usize, 64] {
        let graph = random_digraph(n, 0.15, 7 + n as u64);
        g.bench_with_input(BenchmarkId::new("heuristic", n), &graph, |b, graph| {
            b.iter(|| black_box(heuristic_feedback_arc_set(graph, |&w| w)))
        });
    }
    g.finish();
}

fn bench_condition_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("condition_graph");
    for n in [10usize, 20, 40] {
        let (waits, queues) = random_waits_queues(n, 80, 150, 99);
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| black_box(build_condition_graph(&waits, &queues)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exact_vs_heuristic, bench_condition_graph);
criterion_main!(benches);
