//! The MESI directory protocol: MSI plus an E(xclusive) state granted on a
//! GetS that finds the directory in state I.
//!
//! Structurally the directory still has the sometimes-blocking `S_D`
//! state, so the variants land in the same Table-I cells as MSI:
//! experiment (6) for the blocking cache (Class 2) and experiment (5) for
//! the nonblocking cache (2 VNs).
//!
//! The exclusive grant uses a distinct data message, `DataE`, and clean
//! eviction from E uses `PutE` (no data). The directory does not
//! distinguish E from M ownership (the silent E→M upgrade makes that
//! impossible), so its `M` state means "some cache holds the line
//! exclusively".

use super::CacheDiscipline;
use crate::builder::{acts, ProtocolBuilder};
use crate::event::{CoreOp, Guard};
use crate::message::MsgType;
use crate::spec::ProtocolSpec;
use crate::Target;

/// MESI with the textbook blocking cache. Table I experiment (6) — Class 2.
pub fn mesi_blocking_cache() -> ProtocolSpec {
    build("MESI-blocking-cache", CacheDiscipline::Blocking)
}

/// MESI with a deferring cache. Table I experiment (5) — 2 VNs.
pub fn mesi_nonblocking_cache() -> ProtocolSpec {
    build("MESI-nonblocking-cache", CacheDiscipline::NonBlocking)
}

fn build(name: &str, disc: CacheDiscipline) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new(name);

    b.msg("GetS", MsgType::Request)
        .msg("GetM", MsgType::Request)
        .msg("PutS", MsgType::Request)
        .msg("PutE", MsgType::Request)
        .msg("PutM", MsgType::Request)
        .msg("Fwd-GetS", MsgType::FwdRequest)
        .msg("Fwd-GetM", MsgType::FwdRequest)
        .msg("Inv", MsgType::FwdRequest)
        .msg("Put-Ack", MsgType::CtrlResponse)
        .msg("Inv-Ack", MsgType::CtrlResponse)
        .msg("Data", MsgType::DataResponse)
        .msg("DataE", MsgType::DataResponse);

    cache_table(&mut b, disc);
    directory_table(&mut b);
    b.build()
}

fn stall_core(b: &mut ProtocolBuilder, state: &str) {
    b.cache_stall_core(state, CoreOp::Load);
    b.cache_stall_core(state, CoreOp::Store);
    b.cache_stall_core(state, CoreOp::Evict);
}

fn cache_table(b: &mut ProtocolBuilder, disc: CacheDiscipline) {
    b.cache_stable(&["I", "S", "E", "M"]);
    b.cache_transient(&[
        "IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "MI_A", "EI_A", "SI_A", "II_A",
    ]);
    if disc == CacheDiscipline::NonBlocking {
        b.cache_transient(&[
            "IS_D_I", "IS_D_FS", "IS_D_FM", "IM_AD_FS", "IM_AD_FM", "IM_A_FS", "IM_A_FM",
            "SM_AD_FS", "SM_AD_FM", "SM_A_FS", "SM_A_FM",
        ]);
    }
    b.cache_initial("I");

    // --- I ---
    b.cache_on_core("I", CoreOp::Load, acts().send("GetS", Target::Dir).goto("IS_D"));
    b.cache_on_core("I", CoreOp::Store, acts().send("GetM", Target::Dir).goto("IM_AD"));
    // A stale Inv can reach a cache in I: the cache was invalidated (or
    // evicted) while the Inv was in flight — e.g. Put-Ack overtaking Inv
    // on another VN ends the eviction before the Inv lands. Acking from
    // I is always safe (nothing is held) and the requestor needs the ack.
    b.cache_on_msg("I", "Inv", acts().send("Inv-Ack", Target::Req));

    // --- IS_D --- (may receive shared Data or the exclusive grant)
    //
    // The exclusive grant makes this cache the *owner* before the data
    // arrives, so forwarded requests can race the grant into IS_D (the
    // Primer's MESI stalls them there; the nonblocking variant defers
    // them and serves from the freshly granted line).
    stall_core(b, "IS_D");
    b.cache_on_msg_if("IS_D", "Data", Guard::AckZero, acts().goto("S"));
    b.cache_on_msg_if("IS_D", "DataE", Guard::AckZero, acts().goto("E"));
    match disc {
        CacheDiscipline::Blocking => {
            b.cache_stall_msg("IS_D", "Inv");
            b.cache_stall_msg("IS_D", "Fwd-GetS");
            b.cache_stall_msg("IS_D", "Fwd-GetM");
        }
        CacheDiscipline::NonBlocking => {
            b.cache_on_msg("IS_D", "Inv", acts().send("Inv-Ack", Target::Req).goto("IS_D_I"));
            stall_core(b, "IS_D_I");
            b.cache_on_msg_if("IS_D_I", "Data", Guard::AckZero, acts().goto("I"));
            // The exclusive grant cannot race an Inv (the directory was in
            // I when it granted E), so IS_D_I has no DataE column.
            b.cache_on_msg("IS_D", "Fwd-GetS", acts().record_reader().goto("IS_D_FS"));
            b.cache_on_msg("IS_D", "Fwd-GetM", acts().record_writer().goto("IS_D_FM"));
            stall_core(b, "IS_D_FS");
            stall_core(b, "IS_D_FM");
            // Only the exclusive grant can be pending here (a forward to
            // us implies the directory granted us ownership, which only
            // happens with DataE).
            b.cache_on_msg_if(
                "IS_D_FS",
                "DataE",
                Guard::AckZero,
                acts()
                    .send_data("Data", Target::Readers)
                    .send_data("Data", Target::Dir)
                    .goto("S"),
            );
            b.cache_on_msg_if(
                "IS_D_FM",
                "DataE",
                Guard::AckZero,
                acts().send_data_acks_stored("Data", Target::Writer).goto("I"),
            );
        }
    }

    // --- Writes in flight (shared with the MSI shape) ---
    write_in_flight(b, disc, "IM_AD", "IM_A", true);
    write_in_flight(b, disc, "SM_AD", "SM_A", false);

    // --- S ---
    b.cache_on_core("S", CoreOp::Load, acts());
    b.cache_on_core("S", CoreOp::Store, acts().send("GetM", Target::Dir).goto("SM_AD"));
    b.cache_on_core("S", CoreOp::Evict, acts().send("PutS", Target::Dir).goto("SI_A"));
    b.cache_on_msg("S", "Inv", acts().send("Inv-Ack", Target::Req).goto("I"));

    // --- E --- (exclusive clean; silent upgrade on store)
    b.cache_on_core("E", CoreOp::Load, acts());
    b.cache_on_core("E", CoreOp::Store, acts().goto("M"));
    b.cache_on_core("E", CoreOp::Evict, acts().send("PutE", Target::Dir).goto("EI_A"));
    b.cache_on_msg(
        "E",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("S"),
    );
    b.cache_on_msg("E", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("I"));

    // --- M ---
    b.cache_on_core("M", CoreOp::Load, acts());
    b.cache_on_core("M", CoreOp::Store, acts());
    b.cache_on_core("M", CoreOp::Evict, acts().send_data("PutM", Target::Dir).goto("MI_A"));
    b.cache_on_msg(
        "M",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("S"),
    );
    b.cache_on_msg("M", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("I"));

    // --- MI_A ---
    stall_core(b, "MI_A");
    b.cache_on_msg(
        "MI_A",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("SI_A"),
    );
    b.cache_on_msg("MI_A", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("II_A"));
    b.cache_on_msg("MI_A", "Put-Ack", acts().goto("I"));

    // --- EI_A --- (clean eviction; still the owner until Put-Ack)
    stall_core(b, "EI_A");
    b.cache_on_msg(
        "EI_A",
        "Fwd-GetS",
        acts()
            .send_data("Data", Target::Req)
            .send_data("Data", Target::Dir)
            .goto("SI_A"),
    );
    b.cache_on_msg("EI_A", "Fwd-GetM", acts().send_data("Data", Target::Req).goto("II_A"));
    b.cache_on_msg("EI_A", "Put-Ack", acts().goto("I"));

    // --- SI_A ---
    stall_core(b, "SI_A");
    b.cache_on_msg("SI_A", "Inv", acts().send("Inv-Ack", Target::Req).goto("II_A"));
    b.cache_on_msg("SI_A", "Put-Ack", acts().goto("I"));

    // --- II_A ---
    stall_core(b, "II_A");
    b.cache_on_msg("II_A", "Put-Ack", acts().goto("I"));
}

fn write_in_flight(b: &mut ProtocolBuilder, disc: CacheDiscipline, ad: &str, a: &str, from_i: bool) {
    if from_i {
        b.cache_stall_core(ad, CoreOp::Load);
        b.cache_stall_core(a, CoreOp::Load);
    } else {
        b.cache_on_core(ad, CoreOp::Load, acts());
        b.cache_on_core(a, CoreOp::Load, acts());
    }
    for s in [ad, a] {
        b.cache_stall_core(s, CoreOp::Store);
        b.cache_stall_core(s, CoreOp::Evict);
    }

    b.cache_on_msg_if(ad, "Data", Guard::AckZero, acts().add_acks_from_msg().goto("M"));
    b.cache_on_msg_if(ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(a));
    b.cache_on_msg(ad, "Inv-Ack", acts().dec_needed_acks());
    b.cache_on_msg_if(a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
    b.cache_on_msg_if(a, "Inv-Ack", Guard::LastAck, acts().dec_needed_acks().goto("M"));

    if !from_i {
        b.cache_on_msg(ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD"));
    }

    match disc {
        CacheDiscipline::Blocking => {
            for s in [ad, a] {
                b.cache_stall_msg(s, "Fwd-GetS");
                b.cache_stall_msg(s, "Fwd-GetM");
            }
        }
        CacheDiscipline::NonBlocking => {
            let fs_ad = format!("{ad}_FS");
            let fm_ad = format!("{ad}_FM");
            let fs_a = format!("{a}_FS");
            let fm_a = format!("{a}_FM");
            b.cache_on_msg(ad, "Fwd-GetS", acts().record_reader().goto(&fs_ad));
            b.cache_on_msg(ad, "Fwd-GetM", acts().record_writer().goto(&fm_ad));
            b.cache_on_msg(a, "Fwd-GetS", acts().record_reader().goto(&fs_a));
            b.cache_on_msg(a, "Fwd-GetM", acts().record_writer().goto(&fm_a));
            for s in [&fs_ad, &fm_ad, &fs_a, &fm_a] {
                stall_core(b, s);
            }

            b.cache_on_msg_if(
                &fs_ad,
                "Data",
                Guard::AckZero,
                acts()
                    .add_acks_from_msg()
                    .send_data("Data", Target::Readers)
                    .send_data("Data", Target::Dir)
                    .goto("S"),
            );
            b.cache_on_msg_if(&fs_ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(&fs_a));
            b.cache_on_msg(&fs_ad, "Inv-Ack", acts().dec_needed_acks());
            b.cache_on_msg_if(&fs_a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
            b.cache_on_msg_if(
                &fs_a,
                "Inv-Ack",
                Guard::LastAck,
                acts()
                    .dec_needed_acks()
                    .send_data("Data", Target::Readers)
                    .send_data("Data", Target::Dir)
                    .goto("S"),
            );

            b.cache_on_msg_if(
                &fm_ad,
                "Data",
                Guard::AckZero,
                acts().add_acks_from_msg().send_data("Data", Target::Writer).goto("I"),
            );
            b.cache_on_msg_if(&fm_ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(&fm_a));
            b.cache_on_msg(&fm_ad, "Inv-Ack", acts().dec_needed_acks());
            b.cache_on_msg_if(&fm_a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
            b.cache_on_msg_if(
                &fm_a,
                "Inv-Ack",
                Guard::LastAck,
                acts().dec_needed_acks().send_data("Data", Target::Writer).goto("I"),
            );

            if !from_i {
                b.cache_on_msg(&fs_ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD_FS"));
                b.cache_on_msg(&fm_ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD_FM"));
            }
        }
    }
}

fn directory_table(b: &mut ProtocolBuilder) {
    b.dir_stable(&["I", "S", "M"]);
    b.dir_transient(&["S_D"]);
    b.dir_initial("I");

    // --- I --- (exclusive grant on GetS)
    b.dir_on_msg(
        "I",
        "GetS",
        acts().send_data("DataE", Target::Req).set_owner_to_req().goto("M"),
    );
    b.dir_on_msg(
        "I",
        "GetM",
        acts().send_data_acks("Data", Target::Req).set_owner_to_req().goto("M"),
    );
    b.dir_on_msg("I", "PutS", acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if("I", "PutE", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if("I", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S ---
    b.dir_on_msg(
        "S",
        "GetS",
        acts().send_data("Data", Target::Req).add_req_to_sharers(),
    );
    b.dir_on_msg(
        "S",
        "GetM",
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .set_owner_to_req()
            .goto("M"),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::NotLastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::LastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if(
        "S",
        "PutE",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S",
        "PutM",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );

    // --- M --- ("some cache is exclusive"; it may be E or M there)
    b.dir_on_msg(
        "M",
        "GetS",
        acts()
            .send("Fwd-GetS", Target::Owner)
            .add_req_to_sharers()
            .add_owner_to_sharers()
            .clear_owner()
            .goto("S_D"),
    );
    b.dir_on_msg(
        "M",
        "GetM",
        acts().send("Fwd-GetM", Target::Owner).set_owner_to_req(),
    );
    b.dir_on_msg("M", "PutS", acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if(
        "M",
        "PutE",
        Guard::FromOwner,
        acts().clear_owner().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "PutE", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if(
        "M",
        "PutM",
        Guard::FromOwner,
        acts().copy_to_mem().clear_owner().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S_D ---
    b.dir_stall_msg("S_D", "GetS");
    b.dir_stall_msg("S_D", "GetM");
    b.dir_on_msg(
        "S_D",
        "PutS",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S_D",
        "PutE",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S_D",
        "PutM",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg("S_D", "Data", acts().copy_to_mem().goto("S"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Trigger;

    #[test]
    fn both_variants_validate() {
        mesi_blocking_cache().validate().unwrap();
        mesi_nonblocking_cache().validate().unwrap();
    }

    #[test]
    fn exclusive_grant_present() {
        let p = mesi_blocking_cache();
        let datae = p.message_by_name("DataE").unwrap();
        assert_eq!(p.message(datae).mtype, MsgType::DataResponse);
        let i = p.directory().state_by_name("I").unwrap();
        let gets = p.message_by_name("GetS").unwrap();
        let cell = p.directory().cell(i, Trigger::msg(gets)).unwrap();
        let sends: Vec<_> = cell.entry().unwrap().sends().collect();
        assert_eq!(sends[0].0, datae);
    }

    #[test]
    fn silent_upgrade_from_e() {
        let p = mesi_blocking_cache();
        let e = p.cache().state_by_name("E").unwrap();
        let m = p.cache().state_by_name("M").unwrap();
        let cell = p.cache().cell(e, Trigger::core(CoreOp::Store)).unwrap();
        let entry = cell.entry().unwrap();
        assert!(entry.actions.is_empty());
        assert_eq!(entry.next, Some(m));
    }

    #[test]
    fn nonblocking_cache_has_no_message_stalls() {
        let p = mesi_nonblocking_cache();
        assert_eq!(p.cache().message_stalls().count(), 0);
        assert!(p.directory().message_stalls().count() > 0);
    }

    #[test]
    fn blocking_cache_stalls_forwards() {
        let p = mesi_blocking_cache();
        let stalled: std::collections::BTreeSet<String> = p
            .cache()
            .message_stalls()
            .map(|(_, m)| p.message_name(m).to_string())
            .collect();
        assert!(stalled.contains("Fwd-GetS"));
        assert!(stalled.contains("Fwd-GetM"));
    }

    #[test]
    fn pute_from_owner_clears_ownership() {
        let p = mesi_blocking_cache();
        let m = p.directory().state_by_name("M").unwrap();
        let pute = p.message_by_name("PutE").unwrap();
        let cell = p
            .directory()
            .cell(m, Trigger::msg_if(pute, Guard::FromOwner))
            .unwrap();
        let i = p.directory().state_by_name("I").unwrap();
        assert_eq!(cell.entry().unwrap().next, Some(i));
    }
}
