//! Integration test: the complete static half of the paper's Table I,
//! exercised through the facade crate exactly as a downstream user
//! would.

use vnet::core::{analyze, ProtocolClass};
use vnet::protocol::protocols;

#[test]
fn table1_static_verdicts() {
    let expected = [
        ("MOSI-nonblocking-cache", 1, Some(1)),
        ("MOESI-nonblocking-cache", 1, Some(1)),
        ("MOSI-blocking-cache", 2, None),
        ("MOESI-blocking-cache", 2, None),
        ("CHI", 4, Some(2)),
        ("MSI-nonblocking-cache", 5, Some(2)),
        ("MESI-nonblocking-cache", 5, Some(2)),
        ("MSI-blocking-cache", 6, None),
        ("MESI-blocking-cache", 6, None),
    ];
    for (name, experiment, min_vns) in expected {
        let spec = protocols::all()
            .into_iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("missing protocol {name}"));
        assert_eq!(protocols::experiment_of(name), Some(experiment));
        let report = analyze(&spec);
        assert_eq!(
            report.outcome().min_vns(),
            min_vns,
            "{name}: wrong verdict"
        );
        match min_vns {
            None => assert_eq!(report.class(), ProtocolClass::Class2, "{name}"),
            Some(n) => {
                assert_eq!(report.class(), ProtocolClass::Class3 { min_vns: n }, "{name}")
            }
        }
    }
}

#[test]
fn class3_mappings_put_all_requests_alone_when_two_vns() {
    use vnet::protocol::MsgType;
    for name in ["CHI", "MSI-nonblocking-cache", "MESI-nonblocking-cache"] {
        let spec = protocols::all()
            .into_iter()
            .find(|p| p.name() == name)
            .unwrap();
        let report = analyze(&spec);
        let a = report.outcome().assignment().unwrap();
        assert_eq!(a.n_vns(), 2);
        let req_vn = a.vn_of(spec.messages_of_type(MsgType::Request)[0]);
        for m in spec.message_ids() {
            let is_req = spec.message(m).mtype == MsgType::Request;
            assert_eq!(
                a.vn_of(m) == req_vn,
                is_req,
                "{name}: {} on the wrong side",
                spec.message_name(m)
            );
        }
    }
}

#[test]
fn textbook_three_vn_rule_is_not_necessary() {
    // The paper's "not necessary" direction (§III-B): fully nonblocking
    // protocols need one VN although the textbook rule demands three.
    for name in ["MOSI-nonblocking-cache", "MOESI-nonblocking-cache"] {
        let spec = protocols::all()
            .into_iter()
            .find(|p| p.name() == name)
            .unwrap();
        let report = analyze(&spec);
        assert_eq!(report.outcome().min_vns(), Some(1), "{name}");
        assert!(report.waits().is_empty(), "{name}: no stalls, no waits");
    }
}

#[test]
fn textbook_three_vn_rule_is_not_sufficient() {
    // The "not sufficient" direction (§III-A): the textbook protocols
    // have a waits cycle, so three VNs (or any number) cannot help.
    for name in ["MSI-blocking-cache", "MESI-blocking-cache"] {
        let spec = protocols::all()
            .into_iter()
            .find(|p| p.name() == name)
            .unwrap();
        let report = analyze(&spec);
        assert!(report.waits().has_cycle(), "{name}");
        let fwdm = spec.message_by_name("Fwd-GetM").unwrap();
        assert!(report.waits().contains(fwdm, fwdm), "{name}");
    }
}
