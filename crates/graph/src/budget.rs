//! Computation budgets and result provenance.
//!
//! The exact kernels in this crate (branch-and-bound FAS, exact
//! coloring) and the explorer in `vnet-mc` are exponential in the worst
//! case. A [`Budget`] bounds how much work such a solver may do — a
//! wall-clock deadline and/or an explored-node limit — and a
//! [`Provenance`] tag records whether the result is exact or was
//! produced by a degraded path (heuristic fallback, partial
//! exploration) after the budget ran out. Budgeted solvers never hang
//! and never panic on exhaustion: they return their best fallback,
//! tagged.

use std::time::{Duration, Instant};

/// Work limits for a solver call. The default ([`Budget::unlimited`])
/// imposes no bound, matching the historical behaviour of the exact
/// solvers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Give up after this much wall-clock time.
    pub deadline: Option<Duration>,
    /// Give up after this many explored search nodes (branch-and-bound
    /// nodes, BFS states, …; each solver documents its unit).
    pub node_limit: Option<u64>,
}

impl Budget {
    /// No limits: solvers run to completion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limits wall-clock time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Limits explored search nodes.
    pub fn with_node_limit(mut self, n: u64) -> Self {
        self.node_limit = Some(n);
        self
    }

    /// `true` if neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.node_limit.is_none()
    }

    /// Starts metering against this budget.
    pub fn start(&self) -> BudgetMeter {
        self.start_from(0)
    }

    /// Starts metering with `nodes` units already spent — the resume
    /// path for checkpointed solvers. The node limit is cumulative
    /// across resumes (a checkpoint records the spent count); the
    /// wall-clock deadline is per-process and restarts here.
    pub fn start_from(&self, nodes: u64) -> BudgetMeter {
        let mut meter = BudgetMeter {
            started: Instant::now(),
            deadline: self.deadline,
            node_limit: self.node_limit,
            nodes,
            exhausted: None,
        };
        if let Some(limit) = meter.node_limit {
            if nodes > limit {
                meter.exhausted = Some(DegradeReason::NodeLimit { limit });
            }
        }
        meter
    }
}

/// How often (in ticks) the deadline clock is consulted; `Instant::now`
/// is too slow to call on every branch-and-bound node.
const CLOCK_STRIDE: u64 = 1024;

/// Running meter for one solver call.
#[derive(Debug)]
pub struct BudgetMeter {
    started: Instant,
    deadline: Option<Duration>,
    node_limit: Option<u64>,
    nodes: u64,
    exhausted: Option<DegradeReason>,
}

impl BudgetMeter {
    /// Accounts one unit of work. Returns `false` once the budget is
    /// exhausted (and keeps returning `false` thereafter), so solvers
    /// can use it directly as a continue-condition.
    pub fn tick(&mut self) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.nodes += 1;
        if let Some(limit) = self.node_limit {
            if self.nodes > limit {
                self.exhausted = Some(DegradeReason::NodeLimit { limit });
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if self.nodes.is_multiple_of(CLOCK_STRIDE) && self.started.elapsed() >= deadline {
                self.exhausted = Some(DegradeReason::DeadlineExpired { deadline });
                return false;
            }
        }
        true
    }

    /// The exhaustion reason, if the budget ran out.
    pub fn exhaustion(&self) -> Option<&DegradeReason> {
        self.exhausted.as_ref()
    }

    /// Wall-clock time spent under this meter so far.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// `true` once less than `window` remains before the deadline (and
    /// always `false` for deadline-free budgets). Long-running solvers
    /// use this as the flush-now trigger: emit a checkpoint *before*
    /// the deadline kills the run, so the work survives.
    pub fn deadline_imminent(&self, window: Duration) -> bool {
        match self.deadline {
            None => false,
            Some(d) => d.saturating_sub(self.started.elapsed()) < window,
        }
    }

    /// Nodes accounted so far.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// The provenance tag for a result produced under this meter:
    /// [`Provenance::Exact`] if the budget never ran out, otherwise
    /// [`Provenance::Degraded`].
    pub fn provenance(&self) -> Provenance {
        match &self.exhausted {
            None => Provenance::Exact,
            Some(reason) => Provenance::Degraded {
                reason: reason.clone(),
            },
        }
    }
}

/// Why a solver degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock deadline expired.
    DeadlineExpired {
        /// The deadline that expired.
        deadline: Duration,
    },
    /// The explored-node limit was hit.
    NodeLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// A caller-specified bound (e.g. the model checker's state or
    /// depth cap) truncated the run.
    Bound {
        /// Human-readable description of the bound.
        what: String,
    },
    /// Parallel worker threads were lost (panicked) and the bounded
    /// restart budget ran out, so part of the search space was
    /// abandoned. The result covers everything the surviving workers
    /// explored, but is no longer a complete claim.
    WorkerLoss {
        /// How many frontier states were abandoned with the workers.
        lost_states: usize,
        /// How many restarts were attempted before giving up.
        restarts: u32,
    },
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DeadlineExpired { deadline } => {
                write!(f, "deadline of {deadline:?} expired")
            }
            DegradeReason::NodeLimit { limit } => write!(f, "node limit of {limit} reached"),
            DegradeReason::Bound { what } => write!(f, "{what}"),
            DegradeReason::WorkerLoss {
                lost_states,
                restarts,
            } => write!(
                f,
                "worker loss: {lost_states} frontier state(s) abandoned after {restarts} restart(s)"
            ),
        }
    }
}

/// Whether a result is exact or came from a degraded path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// The solver ran to completion; the result is exact/complete.
    Exact,
    /// The budget ran out; the result is a heuristic or partial answer.
    Degraded {
        /// Why the exact path was abandoned.
        reason: DegradeReason,
    },
}

impl Provenance {
    /// `true` for [`Provenance::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, Provenance::Exact)
    }

    /// One-line suffix for reports: empty for exact results, a
    /// parenthesized explanation for degraded ones.
    pub fn annotation(&self) -> String {
        match self {
            Provenance::Exact => String::new(),
            Provenance::Degraded { reason } => format!(" (degraded: {reason})"),
        }
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Exact => write!(f, "exact"),
            Provenance::Degraded { reason } => write!(f, "degraded ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut m = Budget::unlimited().start();
        for _ in 0..100_000 {
            assert!(m.tick());
        }
        assert!(m.exhaustion().is_none());
        assert!(m.provenance().is_exact());
    }

    #[test]
    fn node_limit_trips_and_stays_tripped() {
        let mut m = Budget::unlimited().with_node_limit(10).start();
        let ok = (0..20).filter(|_| m.tick()).count();
        assert_eq!(ok, 10);
        assert!(!m.tick());
        assert!(matches!(
            m.exhaustion(),
            Some(DegradeReason::NodeLimit { limit: 10 })
        ));
        assert!(!m.provenance().is_exact());
    }

    #[test]
    fn zero_deadline_trips_at_the_clock_stride() {
        let mut m = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .start();
        let mut ticks = 0u64;
        while m.tick() {
            ticks += 1;
            assert!(ticks < 10_000, "deadline never consulted");
        }
        assert!(matches!(
            m.exhaustion(),
            Some(DegradeReason::DeadlineExpired { .. })
        ));
    }

    #[test]
    fn start_from_is_cumulative_across_resumes() {
        let budget = Budget::unlimited().with_node_limit(10);
        let mut first = budget.start();
        let spent = (0..6).filter(|_| first.tick()).count();
        assert_eq!(spent, 6);
        // Resume: only 4 of the 10 remain.
        let mut resumed = budget.start_from(first.nodes());
        let more = (0..20).filter(|_| resumed.tick()).count();
        assert_eq!(more, 4);
        assert!(matches!(
            resumed.exhaustion(),
            Some(DegradeReason::NodeLimit { limit: 10 })
        ));
        // Resuming past the limit is exhausted from the first tick.
        let mut over = budget.start_from(11);
        assert!(!over.tick());
    }

    #[test]
    fn deadline_imminent_tracks_the_window() {
        let m = Budget::unlimited().start();
        assert!(!m.deadline_imminent(Duration::from_secs(3600)));
        let m = Budget::unlimited()
            .with_deadline(Duration::from_millis(1))
            .start();
        assert!(m.deadline_imminent(Duration::from_secs(3600)));
    }

    #[test]
    fn worker_loss_reason_displays() {
        let r = DegradeReason::WorkerLoss {
            lost_states: 7,
            restarts: 3,
        };
        let s = r.to_string();
        assert!(s.contains("worker loss"), "{s}");
        assert!(s.contains('7') && s.contains('3'), "{s}");
    }

    #[test]
    fn provenance_annotations() {
        assert_eq!(Provenance::Exact.annotation(), "");
        let d = Provenance::Degraded {
            reason: DegradeReason::Bound {
                what: "state limit of 5 reached".into(),
            },
        };
        assert!(d.annotation().contains("degraded"));
        assert!(d.to_string().contains("state limit"));
    }
}
