//! Extension coverage beyond the paper's evaluated set: the MESIF pair
//! completes the MOESIF family and must land in the framework exactly
//! where the paper's classification predicts.

use vnet::core::textbook::textbook_vn_count;
use vnet::core::{analyze, ProtocolClass};
use vnet::protocol::protocols;

#[test]
fn extended_set_contains_the_extensions() {
    let ps = protocols::extended();
    assert_eq!(ps.len(), 12);
    assert!(ps.iter().any(|p| p.name() == "MESIF-blocking-cache"));
    assert!(ps.iter().any(|p| p.name() == "MESIF-nonblocking-cache"));
    assert!(ps.iter().any(|p| p.name() == "CHI-DCT"));
}

#[test]
fn chi_dct_matches_base_chi_verdict() {
    // Direct cache transfer changes latency, not the VN requirement.
    let dct = protocols::chi_dct();
    let report = analyze(&dct);
    assert_eq!(report.class(), ProtocolClass::Class3 { min_vns: 2 });
    let a = report.outcome().assignment().unwrap();
    for m in dct.message_ids() {
        let is_req = dct.message(m).mtype == vnet::protocol::MsgType::Request;
        let req_vn = a.vn_of(dct.message_by_name("ReadShared").unwrap());
        assert_eq!(a.vn_of(m) == req_vn, is_req, "{}", dct.message_name(m));
    }
    // Same textbook count as base CHI (completion chain of 4).
    assert_eq!(textbook_vn_count(&dct), 4);
}

#[test]
fn chi_dct_model_checks_clean() {
    use vnet::mc::{explore, McConfig, Verdict, VnMap};
    let spec = protocols::chi_dct();
    let report = analyze(&spec);
    let vns = VnMap::from_assignment(
        report.outcome().assignment().unwrap(),
        spec.messages().len(),
    );
    let cfg = McConfig::figure3(&spec).with_vns(vns);
    let v = explore(&spec, &cfg);
    assert!(matches!(v, Verdict::NoDeadlock(_)), "{}", v.summary());
}

#[test]
fn mesif_blocking_is_class2() {
    let spec = protocols::mesif_blocking_cache();
    let report = analyze(&spec);
    assert_eq!(report.class(), ProtocolClass::Class2);
    // Its waits cycle runs through Fwd-GetM like its siblings.
    let fwdm = spec.message_by_name("Fwd-GetM").unwrap();
    assert!(report.waits().contains(fwdm, fwdm));
}

#[test]
fn mesif_nonblocking_needs_two_vns_with_requests_isolated() {
    let spec = protocols::mesif_nonblocking_cache();
    let report = analyze(&spec);
    assert_eq!(report.class(), ProtocolClass::Class3 { min_vns: 2 });
    let a = report.outcome().assignment().unwrap();
    for m in spec.message_ids() {
        let is_req = spec.message(m).mtype == vnet::protocol::MsgType::Request;
        assert_eq!(
            a.vn_of(m) == a.vn_of(spec.message_by_name("GetS").unwrap()),
            is_req,
            "{} misplaced",
            spec.message_name(m)
        );
    }
    // Certified, as always.
    assert!(vnet::core::assignment::certify(&spec, report.waits(), a));
}

#[test]
fn mesif_textbook_count_is_three() {
    // MESIF has no completion class; the textbook rule says 3 — still
    // insufficient (blocking) or wasteful (nonblocking).
    assert_eq!(textbook_vn_count(&protocols::mesif_blocking_cache()), 3);
    assert_eq!(textbook_vn_count(&protocols::mesif_nonblocking_cache()), 3);
}

#[test]
fn mesif_clean_forwarding_reduces_waits_compared_to_mesi() {
    // Only the dirty-owner path blocks the MESIF directory, and the
    // F-read path never enters S_D — its waits relation is no larger
    // than MESI's in kind: requests on the left only.
    let spec = protocols::mesif_nonblocking_cache();
    let report = analyze(&spec);
    for (m1, _) in report.waits().iter() {
        assert_eq!(spec.message(m1).mtype, vnet::protocol::MsgType::Request);
    }
}

#[test]
fn mesif_model_checks_clean_on_the_directed_scenario() {
    use vnet::mc::{explore, McConfig, Verdict, VnMap};
    let spec = protocols::mesif_nonblocking_cache();
    let report = analyze(&spec);
    let vns = VnMap::from_assignment(
        report.outcome().assignment().unwrap(),
        spec.messages().len(),
    );
    let cfg = McConfig::figure3(&spec).with_vns(vns);
    let v = explore(&spec, &cfg);
    assert!(matches!(v, Verdict::NoDeadlock(_)), "{}", v.summary());
}

#[test]
fn mesif_blocking_deadlocks_in_the_checker() {
    use vnet::mc::{explore, McConfig, VnMap};
    let spec = protocols::mesif_blocking_cache();
    let cfg = McConfig::figure3(&spec)
        .with_vns(VnMap::one_per_message(spec.messages().len()));
    assert!(explore(&spec, &cfg).is_deadlock());
}
