//! Timing of the end-to-end VN-minimization algorithm per protocol
//! (the paper's §VI-B tractability claim: instances of ~10¹ message
//! names are solved instantly despite the NP-hard kernels).

use std::hint::black_box;
use vnet_bench::timing::{bench, group};
use vnet_core::synthetic::striped_protocol;
use vnet_core::{analyze, minimize_vns};
use vnet_protocol::protocols;

fn main() {
    group("minimize_vns/builtin");
    for spec in protocols::all() {
        bench(spec.name(), || black_box(minimize_vns(black_box(&spec))));
    }

    group("analyze");
    let chi = protocols::chi();
    bench("CHI", || black_box(analyze(&chi)));

    group("minimize_vns/striped");
    for k in [1usize, 2, 4, 8] {
        let spec = striped_protocol(k);
        bench(&format!("{}msgs", 4 * k), || {
            black_box(minimize_vns(black_box(&spec)))
        });
    }
}
