//! The `.vnp` bad-spec corpus: every file under `tests/bad_specs/` is
//! malformed on purpose and must be rejected fail-closed — never
//! accepted, never a panic. CI runs this as the fail-closed spec fuzz
//! gate.
//!
//! Two header classes (the first `# expect…` comment line wins; fuzz
//! provenance comments may precede it):
//!
//! ```text
//! # expect: <line>: <message substring>      rejected by dsl::parse
//! # expect-validate: <message substring>     parses, rejected by validate()
//! ```
//!
//! The `expect-validate` class holds minimized mutation-fuzzer finds
//! (`vnet fuzz --dump-rejected`): structurally well-formed specs whose
//! semantics the validator must refuse.

use std::path::PathBuf;
use vnet::protocol::dsl;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("bad_specs")
}

enum Expectation {
    /// `dsl::parse` must fail at this line with this message substring.
    Parse { line: usize, needle: String },
    /// `dsl::parse` must succeed and `validate()` must fail with this
    /// message substring.
    Validate { needle: String },
}

fn expectation(text: &str) -> Result<Expectation, String> {
    for header in text.lines().take_while(|l| l.starts_with('#')) {
        if let Some(needle) = header.strip_prefix("# expect-validate: ") {
            return Ok(Expectation::Validate {
                needle: needle.trim().to_string(),
            });
        }
        if let Some(spec) = header.strip_prefix("# expect: ") {
            let (line, needle) = spec
                .split_once(": ")
                .ok_or("expectation must be `<line>: <substring>`")?;
            return Ok(Expectation::Parse {
                line: line
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad expected line number {line:?}: {e}"))?,
                needle: needle.trim().to_string(),
            });
        }
    }
    Err("no `# expect: <line>: <substring>` or `# expect-validate: <substring>` header".into())
}

/// Every corpus file must be rejected the way its header says: a parse
/// error at the expected position, or a clean parse that the validator
/// then refuses. A corpus file that sails through *both* gates is
/// itself a test bug — the gate fails closed.
#[test]
fn every_bad_spec_is_rejected_with_a_positioned_error() -> Result<(), String> {
    let dir = corpus_dir();
    let mut checked = 0usize;
    let mut validate_checked = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "vnp"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{name}: read failed: {e}"))?;
        match expectation(&text).map_err(|e| format!("{name}: {e}"))? {
            Expectation::Parse { line, needle } => {
                let got = match dsl::parse(&text) {
                    Err(e) => e,
                    Ok(spec) => {
                        return Err(format!(
                            "{name}: parsed successfully as protocol `{}` — corpus must fail closed",
                            spec.name()
                        ))
                    }
                };
                if got.line != line {
                    return Err(format!(
                        "{name}: error at line {}, expected line {line} ({got})",
                        got.line
                    ));
                }
                if !got.message.contains(&needle) {
                    return Err(format!(
                        "{name}: error `{}` does not mention `{needle}`",
                        got.message
                    ));
                }
            }
            Expectation::Validate { needle } => {
                let spec = dsl::parse(&text).map_err(|e| {
                    format!("{name}: expect-validate file must parse, but: {e}")
                })?;
                let got = match spec.validate() {
                    Err(e) => e.to_string(),
                    Ok(()) => {
                        return Err(format!(
                            "{name}: validated successfully as protocol `{}` — corpus must fail closed",
                            spec.name()
                        ))
                    }
                };
                if !got.contains(&needle) {
                    return Err(format!(
                        "{name}: validation error `{got}` does not mention `{needle}`"
                    ));
                }
                validate_checked += 1;
            }
        }
        checked += 1;
    }
    // Guard against either corpus class silently vanishing (e.g. a bad
    // glob): one file per distinct parser error production, plus the
    // promoted fuzzer finds.
    if checked < 20 {
        return Err(format!("only {checked} corpus files found — corpus missing?"));
    }
    if validate_checked < 5 {
        return Err(format!(
            "only {validate_checked} expect-validate files found — fuzz finds missing?"
        ));
    }
    Ok(())
}

/// The parse error type renders its position; downstream tools print it
/// verbatim to users.
#[test]
fn parse_errors_display_the_line_number() {
    let Err(e) = dsl::parse("protocol") else {
        unreachable!("bare `protocol` must not parse");
    };
    assert_eq!(e.line, 1);
    assert!(e.to_string().starts_with("line 1:"));
}
