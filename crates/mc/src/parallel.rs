//! Level-synchronous parallel exploration with panic-isolated workers.
//!
//! The paper ran its Murphi models on a 768 GB Xeon server for up to 72
//! hours; this module is our budget substitute — spread each BFS level
//! across worker threads with a sharded visited set. Three guarantees
//! on top of the plain thread-pool version:
//!
//! * **Deterministic witnesses.** Parent links are claimed with a
//!   min-key tie-break (among predecessors at the same BFS level, the
//!   lexicographically smallest `(parent key, rule label)` wins) and
//!   the reported finding of a level is the one with the smallest state
//!   key, so the verdict — kind, depth, *and* witness trace — is a pure
//!   function of the BFS level sets, not of thread scheduling. An
//!   interrupted-then-resumed run reports the same witness as an
//!   uninterrupted one.
//! * **Panic isolation.** Worker bodies run under
//!   [`std::panic::catch_unwind`]; a supervisor collects worker losses,
//!   re-shards the dead worker's remaining frontier slice, and restarts
//!   it with backoff up to [`ParallelOpts::max_restarts`] times. On
//!   exhaustion the abandoned states are counted and the run returns a
//!   verdict tagged [`DegradeReason::WorkerLoss`] instead of hanging
//!   the level barrier or crashing the process.
//! * **Checkpoint/resume.** With a [`CheckpointPolicy`], progress is
//!   flushed at level boundaries exactly as in the serial explorer, and
//!   [`resume_parallel`] continues from a flushed snapshot.
//!
//! Used by the long bounded sweeps (`vnet campaign`); the serial
//! explorer remains the default for quick runs.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, VisitedEntry};
use crate::config::McConfig;
use crate::explore::CheckpointedRun;
use crate::intern::{InternError, LabelTable, StateArena};
use crate::rules::{expand, ExpandOutcome, Scratch};
use crate::state::GlobalState;
use crate::explore::{ExploreStats, Verdict};
use crate::trace::Trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vnet_graph::{fx_hash_bytes, Budget, DegradeReason, Provenance};
use vnet_protocol::ProtocolSpec;

const SHARDS: usize = 64;

/// One interned shard of the visited structure. State keys live once in
/// `keys` (dense shard-local ids); `meta[id]` holds the parent link as
/// an id into `pkeys` — a *second*, shard-local arena of parent keys.
/// Interning parents locally keeps the deterministic min-resolve
/// tie-break (it compares parent bytes) free of cross-shard locking:
/// a parent's canonical id lives in whatever shard owns it, but the
/// few dozen bytes of its encoding are cheap to duplicate per shard
/// that references it, and duplicates within a shard still intern to
/// one copy.
#[derive(Default)]
struct Shard {
    keys: StateArena,
    pkeys: StateArena,
    labels: LabelTable,
    /// `(parent id in pkeys, label id, claim level)` per key id.
    meta: Vec<(u32, u32, u32)>,
}

impl Shard {
    fn heap_bytes(&self) -> u64 {
        self.keys.heap_bytes()
            + self.pkeys.heap_bytes()
            + self.labels.heap_bytes()
            + (self.meta.capacity() * std::mem::size_of::<(u32, u32, u32)>()) as u64
    }
}

struct Visited {
    shards: Vec<Mutex<Shard>>,
    count: AtomicUsize,
    /// Exact heap bytes held by the shard stores, maintained as a sum
    /// of per-claim capacity deltas so the supervisor can enforce a
    /// memory budget at level boundaries without walking the shards.
    /// Entries are never removed, so this is also the peak.
    bytes: AtomicU64,
    /// Set if any shard's arena ran out of `u32` address space; checked
    /// at level boundaries and degraded like any other resource bound.
    overflowed: AtomicBool,
    /// Set if the allocator itself refused arena growth (`try_reserve`
    /// failed) — surfaced as memory pressure rather than a size bound.
    alloc_failed: AtomicBool,
}

impl Visited {
    fn new() -> Self {
        Visited {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            count: AtomicUsize::new(0),
            bytes: AtomicU64::new(0),
            overflowed: AtomicBool::new(false),
            alloc_failed: AtomicBool::new(false),
        }
    }

    /// Records an intern failure under the matching degrade flag.
    fn note_exhaustion(&self, why: InternError) {
        match why {
            InternError::AllocFailed => self.alloc_failed.store(true, Ordering::Relaxed),
            InternError::AddressSpace => self.overflowed.store(true, Ordering::Relaxed),
        }
    }

    fn shard_of(key: &[u8]) -> usize {
        (fx_hash_bytes(key) as usize) % SHARDS
    }

    /// Inserts if absent; returns `true` when this call claimed the key.
    ///
    /// When the key is already claimed *at the same BFS level*, the
    /// stored parent link is min-resolved: the lexicographically
    /// smallest `(parent, label)` wins regardless of arrival order.
    /// That makes the parent forest — and hence every witness trace — a
    /// deterministic function of the level sets. Claims from later
    /// levels never replace an earlier link (which would lengthen the
    /// trace or create a cycle).
    fn claim(&self, key: &[u8], parent: &[u8], label: &str, level: u32) -> bool {
        let mut shard = self.shards[Self::shard_of(key)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = shard.heap_bytes();
        let (kid, fresh) = match shard.keys.intern(key) {
            Ok(v) => v,
            Err(why) => {
                self.note_exhaustion(why);
                return false;
            }
        };
        let claimed = if fresh {
            let pid = shard.pkeys.intern(parent).map_or(0, |(id, _)| id);
            let lid = shard.labels.intern(label);
            shard.meta.push((pid, lid, level));
            self.count.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            let (pid, lid, lv) = shard.meta[kid as usize];
            if lv == level
                && (parent, label) < (shard.pkeys.get(pid), shard.labels.get(lid))
            {
                let pid = shard.pkeys.intern(parent).map_or(0, |(id, _)| id);
                let lid = shard.labels.intern(label);
                shard.meta[kid as usize] = (pid, lid, level);
            }
            false
        };
        let after = shard.heap_bytes();
        if after > before {
            self.bytes.fetch_add(after - before, Ordering::Relaxed);
        }
        claimed
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn lookup(&self, key: &[u8]) -> Option<(Vec<u8>, String)> {
        let shard = self.shards[Self::shard_of(key)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let kid = shard.keys.lookup(key)?;
        let (pid, lid, _) = shard.meta[kid as usize];
        Some((
            shard.pkeys.get(pid).to_vec(),
            shard.labels.get(lid).to_string(),
        ))
    }

    /// Snapshot every entry (for checkpointing).
    fn entries(&self) -> Vec<VisitedEntry> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for kid in 0..shard.keys.len() as u32 {
                let (pid, lid, lv) = shard.meta[kid as usize];
                out.push(VisitedEntry {
                    key: shard.keys.get(kid).to_vec(),
                    parent: shard.pkeys.get(pid).to_vec(),
                    label: shard.labels.get(lid).to_string(),
                    level: lv,
                });
            }
        }
        out
    }

    fn seed(&self, entries: Vec<VisitedEntry>) {
        for e in entries {
            let mut shard = self.shards[Self::shard_of(&e.key)]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let before = shard.heap_bytes();
            let (_, fresh) = match shard.keys.intern(&e.key) {
                Ok(v) => v,
                Err(why) => {
                    self.note_exhaustion(why);
                    continue;
                }
            };
            if fresh {
                let pid = shard.pkeys.intern(&e.parent).map_or(0, |(id, _)| id);
                let lid = shard.labels.intern(&e.label);
                shard.meta.push((pid, lid, e.level));
                self.count.fetch_add(1, Ordering::Relaxed);
            }
            let after = shard.heap_bytes();
            if after > before {
                self.bytes.fetch_add(after - before, Ordering::Relaxed);
            }
        }
    }
}

#[derive(Clone)]
struct Finding {
    kind: FindingKind,
    state: GlobalState,
    key: Vec<u8>,
    extra: String,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FindingKind {
    // Report priority when several findings share the minimal key:
    // specification bugs first, then invariant violations, deadlocks.
    Bug,
    Invariant,
    Deadlock,
}

/// Deterministic fault injection for the supervisor tests and the CI
/// smoke job: panic a worker thread when it starts processing a state
/// at the given BFS level, up to `times` times across the whole run.
/// The panic unwinds through the normal isolation path — this is the
/// model checker's equivalent of `vnet-sim`'s [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicInjection {
    /// BFS level at which workers start failing.
    pub level: usize,
    /// Total number of injected failures.
    pub times: u32,
}

/// Supervisor configuration for [`explore_parallel_supervised`].
#[derive(Debug, Clone, Default)]
pub struct ParallelOpts {
    /// Worker threads; 0 picks the available parallelism.
    pub threads: usize,
    /// How many times lost workers may be restarted before the
    /// remaining slice is abandoned with [`DegradeReason::WorkerLoss`].
    pub max_restarts: u32,
    /// Base backoff slept before the first restart wave; doubles per
    /// wave.
    pub backoff: Duration,
    /// Work/deadline budget; checked at level boundaries (the paper's
    /// sweeps are level-reported, so the granularity matches).
    pub budget: Budget,
    /// Checkpoint emission, as in the serial explorer.
    pub policy: Option<CheckpointPolicy>,
    /// Deterministic worker-fault injection (tests, smoke jobs).
    pub inject: Option<PanicInjection>,
}

impl ParallelOpts {
    /// Defaults: available parallelism, 3 restarts, 10 ms backoff,
    /// unlimited budget, no checkpoints, no injection.
    pub fn new() -> Self {
        ParallelOpts {
            threads: 0,
            max_restarts: 3,
            backoff: Duration::from_millis(10),
            budget: Budget::unlimited(),
            policy: None,
            inject: None,
        }
    }

    /// Overrides the thread count.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Overrides the budget.
    pub fn with_budget(mut self, b: Budget) -> Self {
        self.budget = b;
        self
    }

    /// Enables checkpoint emission.
    pub fn with_policy(mut self, p: CheckpointPolicy) -> Self {
        self.policy = Some(p);
        self
    }

    /// Enables worker-fault injection.
    pub fn with_injection(mut self, i: PanicInjection) -> Self {
        self.inject = Some(i);
        self
    }
}

/// Parallel variant of [`crate::explore()`]. `threads = 0` picks the
/// available parallelism. Workers are panic-isolated with the default
/// restart budget; see [`explore_parallel_supervised`] for the full
/// supervisor surface (budgets, checkpoints, fault injection).
pub fn explore_parallel(spec: &ProtocolSpec, cfg: &McConfig, threads: usize) -> Verdict {
    let opts = ParallelOpts::new().with_threads(threads);
    match run_parallel(spec, cfg, &opts, None) {
        Ok(CheckpointedRun::Finished(v)) => v,
        // Unreachable without a checkpoint policy; fail soft, not loud.
        Ok(CheckpointedRun::Interrupted { states, level, .. }) => {
            Verdict::NoDeadlock(ExploreStats {
                states,
                levels: level,
                complete: false,
                provenance: Provenance::Degraded {
                    reason: DegradeReason::Bound {
                        what: "run interrupted".into(),
                    },
                },
                peak_bytes: 0,
                spill_bytes: 0,
            })
        }
        Err(e) => Verdict::NoDeadlock(ExploreStats {
            states: 0,
            levels: 0,
            complete: false,
            provenance: Provenance::Degraded {
                reason: DegradeReason::Bound {
                    what: format!("checkpoint error: {e}"),
                },
            },
            peak_bytes: 0,
            spill_bytes: 0,
        }),
    }
}

/// The supervised parallel explorer: panic-isolated workers, bounded
/// restarts with backoff, optional budget, checkpoints, and fault
/// injection. Worker loss beyond the restart budget degrades the
/// verdict ([`DegradeReason::WorkerLoss`]) instead of failing the run.
pub fn explore_parallel_supervised(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    opts: &ParallelOpts,
) -> Result<CheckpointedRun, CheckpointError> {
    run_parallel(spec, cfg, opts, None)
}

/// Continues a parallel run from the checkpoint at `path` (checksum and
/// spec/config fingerprint verified, as in [`crate::explore::resume`]).
pub fn resume_parallel(
    path: &Path,
    spec: &ProtocolSpec,
    cfg: &McConfig,
    opts: &ParallelOpts,
) -> Result<CheckpointedRun, CheckpointError> {
    let ckpt = Checkpoint::load(path, spec, cfg)?;
    run_parallel(spec, cfg, opts, Some(ckpt))
}

fn run_parallel(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    opts: &ParallelOpts,
    start: Option<Checkpoint>,
) -> Result<CheckpointedRun, CheckpointError> {
    // Observability shim mirroring the serial explorer's: counting at
    // this choke point keeps `explore.states_total` exactly equal to
    // the verdict's `ExploreStats.states` on every exit path.
    let mut span = vnet_obs::span("explore.parallel");
    let result = run_parallel_inner(spec, cfg, opts, start);
    match &result {
        Ok(CheckpointedRun::Finished(v)) => {
            let stats = v.stats();
            span.set_bytes(stats.peak_bytes as i64);
            if vnet_obs::metrics_enabled() {
                vnet_obs::counter("explore.runs_total").inc();
                vnet_obs::counter("explore.states_total").add(stats.states as u64);
            }
        }
        Ok(CheckpointedRun::Interrupted { states, .. }) => {
            if vnet_obs::metrics_enabled() {
                vnet_obs::counter("explore.runs_total").inc();
                vnet_obs::counter("explore.states_total").add(*states as u64);
            }
        }
        Err(_) => {}
    }
    result
}

/// The uninstrumented level-synchronous core; see [`run_parallel`].
fn run_parallel_inner(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    opts: &ParallelOpts,
    start: Option<Checkpoint>,
) -> Result<CheckpointedRun, CheckpointError> {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        opts.threads
    };
    if let Err(detail) = cfg.validate_for_run() {
        return Err(CheckpointError::Config { detail });
    }

    let visited = Visited::new();
    let mut frontier: Vec<GlobalState>;
    let mut level: usize;
    // A resumed run must expand at least one level before honoring the
    // stop file: loading and re-seeding a large checkpoint can outlast
    // a short supervision timeout, and stopping at the first boundary
    // would flush exactly the snapshot just loaded — the supervisor's
    // timeout/resume loop would re-read an ever-larger checkpoint and
    // never converge. One level keeps the stop overrun bounded exactly
    // as a mid-level stop request does.
    let mut may_stop = start.is_none();
    match start {
        Some(ckpt) => {
            visited.seed(ckpt.entries);
            frontier = ckpt.frontier;
            level = ckpt.level;
        }
        None => {
            let initial = GlobalState::initial(spec, cfg);
            let (initial, init_key) = if cfg.symmetry {
                crate::symmetry::canonicalize(cfg, &initial)
            } else {
                let key = initial.encode();
                (initial, key)
            };
            visited.claim(&init_key, &init_key, "", 0);
            frontier = vec![initial];
            level = 0;
        }
    }

    let started = Instant::now();
    let inject_left = AtomicU32::new(opts.inject.map_or(0, |i| i.times));
    let mut complete = true;
    let mut truncated: Option<DegradeReason> = None;
    let mut since_flush = 0usize;
    let mut restarts_used = 0u32;

    let flush = |frontier: &[GlobalState], level: usize, path: &Path| -> Result<(), CheckpointError> {
        // Deliberately still the version-1 format: the thread-parallel
        // explorer is the writer that keeps the v1 → v2 conversion path
        // (load v1, flush v2) continuously exercised.
        Checkpoint {
            fingerprint: crate::checkpoint::fingerprint(spec, cfg),
            level,
            nodes_spent: visited.len() as u64,
            entries: visited.entries(),
            frontier: frontier.to_vec(),
            parent_ids: None,
        }
        .write_to(path)
    };

    while !frontier.is_empty() {
        // ---- Level boundary: interrupts, flushes, budget, bounds. ----
        if let Some(pol) = &opts.policy {
            if may_stop && pol.stop_file.as_ref().is_some_and(|p| p.exists()) {
                flush(&frontier, level, &pol.path)?;
                return Ok(CheckpointedRun::Interrupted {
                    checkpoint: pol.path.clone(),
                    states: visited.len(),
                    level,
                });
            }
            let deadline_imminent = opts
                .budget
                .deadline
                .is_some_and(|d| d.saturating_sub(started.elapsed()) < pol.deadline_window);
            if since_flush > pol.every_states || deadline_imminent {
                flush(&frontier, level, &pol.path)?;
                since_flush = 0;
            }
        }
        // Cooperative cancellation and the memory budget are enforced
        // at level boundaries, like every other bound here: the overrun
        // after a cancel or a memory trip is at most one BFS level.
        if let Some(token) = &opts.budget.cancel {
            if let Some(reason) = token.reason() {
                complete = false;
                truncated = Some(DegradeReason::Cancelled { reason });
            }
        }
        if visited.alloc_failed.load(Ordering::Relaxed) && truncated.is_none() {
            complete = false;
            truncated = Some(DegradeReason::MemoryPressure {
                what: "visited-set shard arena".into(),
            });
        }
        if visited.overflowed.load(Ordering::Relaxed) && truncated.is_none() {
            complete = false;
            truncated = Some(DegradeReason::Bound {
                what: "intern arena address space exhausted".into(),
            });
        }
        if let Some(limit) = opts.budget.mem_limit {
            if truncated.is_none() && visited.bytes() > limit {
                complete = false;
                truncated = Some(DegradeReason::MemLimit {
                    limit,
                    peak: visited.bytes(),
                });
            }
        }
        if let Some(limit) = opts.budget.node_limit {
            if truncated.is_none() && visited.len() as u64 > limit {
                complete = false;
                truncated = Some(DegradeReason::NodeLimit { limit });
            }
        }
        if let Some(deadline) = opts.budget.deadline {
            if truncated.is_none() && started.elapsed() >= deadline {
                complete = false;
                truncated = Some(DegradeReason::DeadlineExpired { deadline });
            }
        }
        if truncated.is_none() {
            if let Some(max) = cfg.max_depth {
                if level >= max {
                    complete = false;
                    truncated = Some(DegradeReason::Bound {
                        what: format!("depth limit of {max} reached"),
                    });
                }
            }
            if visited.len() >= cfg.max_states {
                complete = false;
                truncated = Some(DegradeReason::Bound {
                    what: format!("state limit of {} reached", cfg.max_states),
                });
            }
        }
        if truncated.is_some() {
            break;
        }

        // ---- Expand the level under the supervisor. ----
        let next: Mutex<Vec<GlobalState>> = Mutex::new(Vec::new());
        let findings: Mutex<Vec<Finding>> = Mutex::new(Vec::new());

        // Work items: (frontier index, force). Force mode re-enqueues
        // successors even when their claim is a duplicate — used when
        // retrying a state whose expansion may have died between
        // claiming a successor and publishing it to `next`.
        let mut items: Vec<(usize, bool)> = (0..frontier.len()).map(|i| (i, false)).collect();
        let mut wave = 0u32;

        loop {
            let chunk = items.len().div_ceil(threads).max(1);
            // (chunk start offset, states processed) per worker; a lost
            // worker's remaining slice is items[start+processed..end].
            let losses: Mutex<Vec<(usize, usize, usize, String)>> = Mutex::new(Vec::new());

            std::thread::scope(|scope| {
                let (next, findings, losses, visited, frontier, items, inject_left) = (
                    &next,
                    &findings,
                    &losses,
                    &visited,
                    &frontier,
                    &items,
                    &inject_left,
                );
                for start in (0..items.len()).step_by(chunk) {
                    let end = (start + chunk).min(items.len());
                    scope.spawn(move || {
                        let progress = AtomicUsize::new(0);
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let mut scratch = WorkScratch::new(spec, cfg);
                            for (done, &(idx, force)) in items[start..end].iter().enumerate() {
                                if let Some(inj) = opts.inject {
                                    if inj.level == level
                                        && inject_left
                                            .fetch_update(
                                                Ordering::Relaxed,
                                                Ordering::Relaxed,
                                                |n| n.checked_sub(1),
                                            )
                                            .is_ok()
                                    {
                                        std::panic::panic_any(format!(
                                            "injected worker fault at level {level}"
                                        ));
                                    }
                                }
                                let gs = &frontier[idx];
                                expand_one(
                                    spec,
                                    cfg,
                                    visited,
                                    next,
                                    findings,
                                    gs,
                                    level,
                                    force,
                                    &mut scratch,
                                );
                                progress.store(done + 1, Ordering::Relaxed);
                            }
                        }));
                        if let Err(payload) = result {
                            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                                (*s).to_string()
                            } else if let Some(s) = payload.downcast_ref::<String>() {
                                s.clone()
                            } else {
                                "worker panicked".to_string()
                            };
                            losses
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push((start, progress.load(Ordering::Relaxed), end, detail));
                        }
                    });
                }
            });

            let losses = losses
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if losses.is_empty() {
                break;
            }
            // Re-shard the dead workers' remaining slices. The state a
            // worker died on may have published only part of its
            // successor claims, so it is retried in force mode; the
            // untouched tail is retried normally.
            let mut retry: Vec<(usize, bool)> = Vec::new();
            for (start, processed, end, _detail) in &losses {
                let rest = &items[start + processed..*end];
                for (j, &(idx, force)) in rest.iter().enumerate() {
                    retry.push((idx, force || j == 0));
                }
            }
            if restarts_used >= opts.max_restarts {
                complete = false;
                truncated = Some(DegradeReason::WorkerLoss {
                    lost_states: retry.len(),
                    restarts: restarts_used,
                });
                break;
            }
            restarts_used += 1;
            vnet_obs::counter("explore.worker_restarts_total").inc();
            std::thread::sleep(opts.backoff.saturating_mul(1 << (wave.min(8))));
            wave += 1;
            items = retry;
        }

        // ---- Resolve the level's findings deterministically. ----
        let mut findings = findings
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        findings.sort_by(|a, b| (&a.key, a.kind).cmp(&(&b.key, b.kind)));
        if let Some(f) = findings.into_iter().next() {
            let stats = ExploreStats {
                states: visited.len(),
                levels: level,
                complete: false,
                provenance: Provenance::Exact,
                peak_bytes: visited.bytes(),
                spill_bytes: 0,
            };
            let trace = rebuild(
                spec,
                cfg,
                &visited,
                &f.key,
                f.state,
                matches!(f.kind, FindingKind::Bug).then_some(&f.extra),
            );
            // Under symmetry the recorded detail names canonical
            // indices; keep it consistent with the concrete terminal
            // the de-canonicalized trace replays to.
            let detail = if cfg.symmetry {
                match f.kind {
                    FindingKind::Bug => crate::trace::concrete_bug(spec, cfg, &trace.last)
                        .map(|(r, d)| format!("{r}: {d}"))
                        .unwrap_or(f.extra),
                    FindingKind::Invariant => cfg
                        .swmr
                        .as_ref()
                        .and_then(|s| s.check(&trace.last, spec))
                        .unwrap_or(f.extra),
                    FindingKind::Deadlock => f.extra,
                }
            } else {
                f.extra
            };
            return Ok(CheckpointedRun::Finished(match f.kind {
                FindingKind::Deadlock => Verdict::Deadlock {
                    depth: level,
                    trace,
                    stats,
                },
                FindingKind::Bug => Verdict::ModelError {
                    trace,
                    detail,
                    stats,
                },
                FindingKind::Invariant => Verdict::InvariantViolation {
                    trace,
                    detail,
                    stats,
                },
            }));
        }

        if truncated.is_some() {
            // Worker loss exhausted the restart budget mid-level: the
            // level did not complete, so the level counter stays put and
            // no checkpoint is flushed (a mixed-level snapshot would be
            // inconsistent; the last boundary checkpoint remains valid).
            break;
        }
        frontier = next
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        since_flush += frontier.len();
        level += 1;
        may_stop = true;
    }

    if let Some(pol) = &opts.policy {
        let resumable = !matches!(truncated, Some(DegradeReason::WorkerLoss { .. }));
        if truncated.is_some() && resumable {
            flush(&frontier, level, &pol.path)?;
        }
    }

    Ok(CheckpointedRun::Finished(Verdict::NoDeadlock(ExploreStats {
        states: visited.len(),
        levels: level,
        complete,
        provenance: match truncated {
            None => Provenance::Exact,
            Some(reason) => Provenance::Degraded { reason },
        },
        peak_bytes: visited.bytes(),
        // The thread-parallel explorer keeps its shards entirely in
        // RAM; out-of-core runs go through the serial or process-shard
        // explorers.
        spill_bytes: 0,
    })))
}

/// Per-worker reusable buffers: the rule-expansion scratch plus key and
/// label encodings. Everything here is reused across the worker's whole
/// chunk, so expansion allocates only for freshly claimed states.
struct WorkScratch {
    rules: Scratch,
    /// Successor key encoding.
    key: Vec<u8>,
    /// Parent (source state) key encoding.
    pkey: Vec<u8>,
    /// Rendered rule label.
    label: String,
    /// Symmetry group + scratch, `None` outside symmetry mode.
    canon: Option<crate::symmetry::Canonicalizer>,
}

impl WorkScratch {
    fn new(spec: &ProtocolSpec, cfg: &McConfig) -> Self {
        WorkScratch {
            rules: Scratch::new(spec, cfg),
            key: Vec::with_capacity(128),
            pkey: Vec::with_capacity(128),
            label: String::new(),
            canon: cfg
                .symmetry
                .then(|| crate::symmetry::Canonicalizer::new(cfg)),
        }
    }
}

/// Expands one frontier state: claims successors into the visited map,
/// publishes them to `next`, and records findings. Publishing happens
/// per source state so a panic can lose at most the in-flight batch —
/// which the supervisor retries in force mode.
#[allow(clippy::too_many_arguments)]
fn expand_one(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    visited: &Visited,
    next: &Mutex<Vec<GlobalState>>,
    findings: &Mutex<Vec<Finding>>,
    gs: &GlobalState,
    level: usize,
    force: bool,
    scratch: &mut WorkScratch,
) {
    let WorkScratch {
        rules,
        key,
        pkey,
        label,
        canon,
    } = scratch;
    // Frontier states are already canonical in symmetry mode, so the
    // plain encoding is the parent's interned key in both modes.
    gs.encode_into(pkey);
    let mut batch: Vec<GlobalState> = Vec::new();
    let outcome = expand(spec, cfg, gs, rules, |sstate, lab| {
        // Symmetry mode derives the canonical *key* without
        // materializing any permuted state.
        match canon.as_mut() {
            Some(c) => c.canonical_key_into(sstate, key),
            None => sstate.encode_into(key),
        }
        // The label is rendered for every claim attempt (not only fresh
        // ones) because the same-level min-resolve tie-break compares
        // label text; the buffer is reused so no allocation per call.
        lab.render_into(spec, label);
        let claimed = visited.claim(key, pkey, label, (level + 1) as u32);
        if !claimed && !force {
            return true;
        }
        // Only claimed-or-forced successors need the canonical
        // representative materialized (it is what the key decodes to).
        let canon_state = if canon.is_some() {
            GlobalState::decode(key, cfg)
        } else {
            None
        };
        if claimed {
            if let Some(swmr) = &cfg.swmr {
                let check = canon_state.as_ref().unwrap_or(sstate);
                if let Some(detail) = swmr.check(check, spec) {
                    findings
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(Finding {
                            kind: FindingKind::Invariant,
                            state: check.clone(),
                            key: key.clone(),
                            extra: detail,
                        });
                    return true;
                }
            }
        }
        batch.push(canon_state.unwrap_or_else(|| sstate.clone()));
        true
    });
    match outcome {
        ExpandOutcome::Bug { rule, detail } => {
            findings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Finding {
                    kind: FindingKind::Bug,
                    state: gs.clone(),
                    key: pkey.clone(),
                    extra: format!("{rule}: {detail}"),
                });
        }
        ExpandOutcome::Done(0) => {
            if !gs.is_quiescent(spec) {
                findings
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(Finding {
                        kind: FindingKind::Deadlock,
                        state: gs.clone(),
                        key: pkey.clone(),
                        extra: String::new(),
                    });
            }
        }
        ExpandOutcome::Done(_) | ExpandOutcome::Stopped => {
            next.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend(batch);
        }
    }
}

/// Walks the parent keys from `key` to the root. Outside symmetry mode
/// the stored labels already form a concrete execution; under symmetry
/// they reference canonical indices, so the trace is de-canonicalized
/// from the canonical key chain instead (the keys are the parent links
/// here, so the chain comes for free).
fn rebuild(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    visited: &Visited,
    key: &[u8],
    last: GlobalState,
    bug_rule: Option<&String>,
) -> Trace {
    let mut steps = Vec::new();
    let mut chain = vec![key.to_vec()];
    let mut cur = key.to_vec();
    // The step cap guards against parent cycles, which cannot arise
    // from this explorer's claims but could from a crafted checkpoint.
    while let Some((parent, label)) = visited.lookup(&cur) {
        if label.is_empty() || steps.len() > visited.len() {
            break;
        }
        steps.push(label);
        chain.push(parent.clone());
        cur = parent;
    }
    steps.reverse();
    chain.reverse();
    let mut trace = if cfg.symmetry {
        match crate::trace::decanonicalize_chain(spec, cfg, &chain) {
            Ok(t) => t,
            Err(why) => crate::trace::decanonicalize_failed(&why, last),
        }
    } else {
        Trace { steps, last }
    };
    if let Some(rule) = bug_rule {
        let step = if cfg.symmetry {
            // The recorded rule names canonical indices; re-derive the
            // concrete one from the terminal the trace reaches.
            crate::trace::concrete_bug(spec, cfg, &trace.last)
                .map(|(r, d)| format!("{r}: {d}"))
                .unwrap_or_else(|| rule.clone())
        } else {
            rule.clone()
        };
        trace.steps.push(step);
    }
    trace
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InjectionBudget, McConfig};
    use vnet_protocol::protocols;

    #[test]
    fn parallel_matches_serial_on_a_complete_space() {
        let spec = protocols::msi_blocking_cache();
        let mut cfg = McConfig::general(&spec).with_budget(InjectionBudget::PerCache(1));
        cfg.n_caches = 2;
        cfg.n_addrs = 1;
        cfg.n_dirs = 1;
        let serial = crate::explore(&spec, &cfg);
        let parallel = explore_parallel(&spec, &cfg, 4);
        let (s, p) = (serial.stats(), parallel.stats());
        assert_eq!(s.states, p.states, "state counts must agree");
        assert_eq!(s.levels, p.levels);
        assert!(s.complete && p.complete);
    }

    #[test]
    fn parallel_finds_the_figure3_deadlock_at_the_same_depth() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let serial = crate::explore(&spec, &cfg);
        let parallel = explore_parallel(&spec, &cfg, 4);
        let Verdict::Deadlock { depth: ds, .. } = serial else {
            panic!()
        };
        let Verdict::Deadlock { depth: dp, trace, .. } = parallel else {
            panic!("parallel missed the deadlock")
        };
        assert_eq!(ds, dp, "BFS depth must be identical");
        assert_eq!(trace.len(), dp);
    }

    #[test]
    fn parallel_respects_bounds() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec).with_limits(usize::MAX, Some(3));
        match explore_parallel(&spec, &cfg, 2) {
            Verdict::NoDeadlock(stats) => {
                assert!(!stats.complete);
                assert!(stats.levels <= 3);
            }
            other => panic!("{}", other.summary()),
        }
    }

    #[test]
    fn witness_trace_is_deterministic_across_runs_and_thread_counts() -> Result<(), String> {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let mut seen: Option<Vec<String>> = None;
        for threads in [1, 2, 4, 4, 7] {
            let steps = match explore_parallel(&spec, &cfg, threads) {
                Verdict::Deadlock { trace, .. } => trace.steps,
                other => return Err(format!("figure3 must deadlock, got {}", other.summary())),
            };
            match &seen {
                None => seen = Some(steps),
                Some(first) => assert_eq!(
                    first, &steps,
                    "witness must not depend on scheduling ({threads} threads)"
                ),
            }
        }
        Ok(())
    }

    #[test]
    fn injected_worker_panic_is_retried_transparently() -> Result<(), String> {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let clean = explore_parallel(&spec, &cfg, 4);
        let opts = ParallelOpts::new()
            .with_threads(4)
            .with_injection(PanicInjection { level: 3, times: 2 });
        let v = match explore_parallel_supervised(&spec, &cfg, &opts) {
            Ok(CheckpointedRun::Finished(v)) => v,
            other => return Err(format!("unexpected outcome {other:?}")),
        };
        let (
            Verdict::Deadlock { depth, trace, .. },
            Verdict::Deadlock {
                depth: d0,
                trace: t0,
                ..
            },
        ) = (&v, &clean)
        else {
            return Err(format!(
                "faulted run lost the deadlock: {} vs {}",
                v.summary(),
                clean.summary()
            ));
        };
        assert_eq!(depth, d0, "retry must preserve the verdict depth");
        assert_eq!(trace.steps, t0.steps, "retry must preserve the witness");
        Ok(())
    }

    #[test]
    fn persistent_worker_loss_degrades_instead_of_hanging() -> Result<(), String> {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let mut opts = ParallelOpts::new()
            .with_threads(2)
            .with_injection(PanicInjection {
                level: 2,
                times: u32::MAX,
            });
        opts.max_restarts = 2;
        opts.backoff = Duration::from_millis(1);
        let v = match explore_parallel_supervised(&spec, &cfg, &opts) {
            Ok(CheckpointedRun::Finished(v)) => v,
            other => return Err(format!("unexpected outcome {other:?}")),
        };
        let Verdict::NoDeadlock(stats) = &v else {
            return Err(format!(
                "expected a degraded bounded verdict, got {}",
                v.summary()
            ));
        };
        assert!(!stats.complete);
        assert!(
            matches!(
                &stats.provenance,
                Provenance::Degraded {
                    reason: DegradeReason::WorkerLoss { restarts: 2, .. }
                }
            ),
            "wrong provenance: {:?}",
            stats.provenance
        );
        Ok(())
    }
}
