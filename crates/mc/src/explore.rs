//! Breadth-first exploration with deadlock detection, bounded-run
//! reporting, and crash-tolerant checkpoint/resume.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, VisitedEntry};
use crate::config::McConfig;
use crate::rules::{successors, Expansion};
use crate::state::GlobalState;
use crate::trace::Trace;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use vnet_graph::{Budget, DegradeReason, Provenance};
use vnet_protocol::ProtocolSpec;

/// Visited/parent map: state key → (parent key, rule label, claim level).
type ParentMap = HashMap<Vec<u8>, (Vec<u8>, String, u32)>;

/// Exploration statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states: usize,
    /// Deepest completed BFS level.
    pub levels: usize,
    /// `true` if the whole reachable space was explored (no bound hit).
    pub complete: bool,
    /// Why the run was truncated, if it was. Counterexample verdicts
    /// (deadlock, model error, invariant violation) are always
    /// [`Provenance::Exact`] — a found trace is definitive no matter how
    /// much of the space was left unexplored. A `NoDeadlock` verdict with
    /// degraded provenance is only a bounded claim.
    pub provenance: Provenance,
}

impl ExploreStats {
    fn bounded(states: usize, levels: usize) -> Self {
        // Truncation by a *counterexample*: the search stopped early
        // because the verdict is already decided, which is exact.
        ExploreStats {
            states,
            levels,
            complete: false,
            provenance: Provenance::Exact,
        }
    }
}

/// The outcome of a model-checking run.
#[derive(Debug)]
pub enum Verdict {
    /// No deadlock found. `stats.complete` distinguishes a full proof
    /// from a bounded run (the paper's "reached level N without error").
    NoDeadlock(ExploreStats),
    /// A reachable state with work in flight and no enabled rule.
    Deadlock {
        /// Shortest path to the deadlocked state.
        trace: Trace,
        /// BFS depth at which it was found.
        depth: usize,
        /// Statistics at detection time.
        stats: ExploreStats,
    },
    /// A controller received an undefined message — a specification bug.
    ModelError {
        /// Path to the erroneous state.
        trace: Trace,
        /// What went wrong.
        detail: String,
        /// Statistics at detection time.
        stats: ExploreStats,
    },
    /// A safety invariant (SWMR) was violated.
    InvariantViolation {
        /// Path to the violating state.
        trace: Trace,
        /// The violation description.
        detail: String,
        /// Statistics at detection time.
        stats: ExploreStats,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Deadlock`].
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Verdict::Deadlock { .. })
    }

    /// The statistics of the run.
    pub fn stats(&self) -> &ExploreStats {
        match self {
            Verdict::NoDeadlock(s) => s,
            Verdict::Deadlock { stats, .. }
            | Verdict::ModelError { stats, .. }
            | Verdict::InvariantViolation { stats, .. } => stats,
        }
    }

    /// One-line summary in the style of the paper's result extraction.
    pub fn summary(&self) -> String {
        match self {
            Verdict::NoDeadlock(s) if s.complete => format!(
                "no deadlock (complete, {} states, {} levels)",
                s.states, s.levels
            ),
            Verdict::NoDeadlock(s) => format!(
                "no deadlock up to bound ({} states, {} levels){}",
                s.states,
                s.levels,
                s.provenance.annotation()
            ),
            Verdict::Deadlock { depth, stats, .. } => format!(
                "DEADLOCK at depth {depth} ({} states explored)",
                stats.states
            ),
            Verdict::ModelError { detail, .. } => format!("MODEL ERROR: {detail}"),
            Verdict::InvariantViolation { detail, .. } => {
                format!("INVARIANT VIOLATION: {detail}")
            }
        }
    }
}

/// Explores the reachable state space of `spec` under `cfg`.
///
/// See the crate docs for an end-to-end example.
pub fn explore(spec: &ProtocolSpec, cfg: &McConfig) -> Verdict {
    explore_with(spec, cfg, |_, _| {})
}

/// Like [`explore`], invoking `on_level(level, states_so_far)` as each
/// BFS level completes (the paper reports Murphi progress the same way).
pub fn explore_with(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    on_level: impl FnMut(usize, usize),
) -> Verdict {
    explore_budgeted_with(spec, cfg, &Budget::unlimited(), on_level)
}

/// [`explore`] under a wall-clock/state [`Budget`] (one meter tick per
/// distinct state inserted). On exhaustion the BFS stops where it is and
/// returns the partial-exploration verdict: `NoDeadlock` with
/// `complete == false` and a degraded [`Provenance`] naming the limit
/// that tripped. Counterexamples found before exhaustion are returned
/// exactly as in the unbudgeted explorer — a trace is a trace.
pub fn explore_budgeted(spec: &ProtocolSpec, cfg: &McConfig, budget: &Budget) -> Verdict {
    explore_budgeted_with(spec, cfg, budget, |_, _| {})
}

/// [`explore_budgeted`] with the per-level progress callback.
pub fn explore_budgeted_with(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    on_level: impl FnMut(usize, usize),
) -> Verdict {
    match run_serial(spec, cfg, budget, None, None, on_level) {
        Ok(CheckpointedRun::Finished(v)) => v,
        // Without a checkpoint policy there is no file IO and no stop
        // file, so these arms are unreachable; fail soft, never panic.
        Ok(CheckpointedRun::Interrupted { states, level, .. }) => {
            Verdict::NoDeadlock(ExploreStats {
                states,
                levels: level,
                complete: false,
                provenance: Provenance::Degraded {
                    reason: DegradeReason::Bound {
                        what: "run interrupted".into(),
                    },
                },
            })
        }
        Err(e) => Verdict::NoDeadlock(ExploreStats {
            states: 0,
            levels: 0,
            complete: false,
            provenance: Provenance::Degraded {
                reason: DegradeReason::Bound {
                    what: format!("checkpoint error: {e}"),
                },
            },
        }),
    }
}

/// The outcome of a checkpoint-enabled run.
#[derive(Debug)]
pub enum CheckpointedRun {
    /// The run ended with a verdict (possibly bounded/degraded).
    Finished(Verdict),
    /// The stop file appeared at a level boundary: progress was flushed
    /// to `checkpoint` and the run stepped aside without a verdict.
    Interrupted {
        /// The checkpoint holding the flushed progress.
        checkpoint: PathBuf,
        /// Distinct states claimed so far.
        states: usize,
        /// Completed BFS levels.
        level: usize,
    },
}

/// [`explore_budgeted_with`] plus crash tolerance: explorer progress is
/// flushed to `policy.path` per the policy's cadence, on an imminent
/// budget deadline, and on budget exhaustion, so a killed or starved
/// run can be continued with [`resume`]. Checkpoint IO failures are
/// returned, never ignored — a run that cannot persist its progress
/// should not pretend it can.
pub fn explore_checkpointed(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    policy: &CheckpointPolicy,
    on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    run_serial(spec, cfg, budget, None, Some(policy), on_level)
}

/// Continues a run from the checkpoint at `path`, after verifying its
/// checksum and its (spec, config) fingerprint — a checkpoint from a
/// different protocol, VN mapping, or system size is refused with
/// [`CheckpointError::SpecMismatch`]. The budget's node accounting is
/// cumulative: the checkpoint records nodes already spent.
pub fn resume(
    path: &Path,
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    policy: Option<&CheckpointPolicy>,
    on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    let ckpt = Checkpoint::load(path, spec, cfg)?;
    run_serial(spec, cfg, budget, Some(ckpt), policy, on_level)
}

/// Approximate heap bytes one visited-map entry (key + parent-key
/// copies, rule label, map/queue overhead) plus its frontier slot costs
/// the explorer — the unit the memory budget meters. An estimate of the
/// dominant structures, not a malloc hook.
fn entry_bytes(key_len: usize, label_len: usize) -> u64 {
    (2 * key_len + label_len + 96) as u64
}

/// Snapshot the explorer at a level boundary and write it out.
fn flush(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    parent: &ParentMap,
    frontier: &VecDeque<GlobalState>,
    level: usize,
    claims: u64,
    path: &Path,
) -> Result<(), CheckpointError> {
    let ckpt = Checkpoint {
        fingerprint: crate::checkpoint::fingerprint(spec, cfg),
        level,
        nodes_spent: claims,
        entries: parent
            .iter()
            .map(|(k, (p, l, lv))| VisitedEntry {
                key: k.clone(),
                parent: p.clone(),
                label: l.clone(),
                level: *lv,
            })
            .collect(),
        frontier: frontier.iter().cloned().collect(),
    };
    ckpt.write_to(path)
}

/// The BFS core shared by the fresh, checkpointed, and resumed entry
/// points. `start` seeds the visited map/frontier/level from a loaded
/// checkpoint; `policy` enables flushing.
///
/// Budget granularity: without a policy, exhaustion stops the search at
/// the very next claim (the historical behaviour). With a policy, the
/// current level is finished first — a flushable snapshot must sit at a
/// level boundary — so the overrun is bounded by one BFS level and the
/// checkpoint is always consistent.
fn run_serial(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    budget: &Budget,
    start: Option<Checkpoint>,
    policy: Option<&CheckpointPolicy>,
    mut on_level: impl FnMut(usize, usize),
) -> Result<CheckpointedRun, CheckpointError> {
    if cfg.symmetry {
        assert!(
            matches!(cfg.budget, crate::config::InjectionBudget::PerCache(_)),
            "symmetry reduction requires a uniform per-cache budget"
        );
    }
    let canon = |gs: GlobalState| -> (GlobalState, Vec<u8>) {
        if cfg.symmetry {
            crate::symmetry::canonicalize(&gs)
        } else {
            let key = gs.encode();
            (gs, key)
        }
    };

    let mut parent: ParentMap = HashMap::new();
    let mut frontier: VecDeque<GlobalState>;
    let mut level: usize;
    // Claimed-state work counter; cumulative across resumes (unlike the
    // meter's wall clock, which is per-process).
    let mut claims: u64;

    match start {
        Some(ckpt) => {
            parent.reserve(ckpt.entries.len());
            for e in ckpt.entries {
                parent.insert(e.key, (e.parent, e.label, e.level));
            }
            frontier = ckpt.frontier.into();
            level = ckpt.level;
            claims = ckpt.nodes_spent;
        }
        None => {
            let (initial, init_key) = canon(GlobalState::initial(spec, cfg));
            // Invariant check on the initial state (vacuous for sane
            // specs, but uniform).
            if let Some(swmr) = &cfg.swmr {
                if let Some(detail) = swmr.check(&initial, spec) {
                    return Ok(CheckpointedRun::Finished(Verdict::InvariantViolation {
                        trace: Trace {
                            steps: Vec::new(),
                            last: initial,
                        },
                        detail,
                        stats: ExploreStats::bounded(1, 0),
                    }));
                }
            }
            parent.insert(init_key.clone(), (init_key, String::new(), 0));
            frontier = VecDeque::from([initial]);
            level = 0;
            claims = 0;
        }
    }

    let mut meter = budget.start_from(claims);
    let mut complete = true;
    let mut truncated: Option<DegradeReason> = None;
    let mut since_flush = 0usize;

    // A resumed run starts with a populated visited map; charge it so
    // the memory budget covers the whole footprint, not just growth.
    if budget.mem_limit.is_some() {
        for (k, (_, l, _)) in parent.iter() {
            if !meter.charge_bytes(entry_bytes(k.len(), l.len())) {
                break;
            }
        }
        if let Some(reason) = meter.exhaustion() {
            complete = false;
            truncated = Some(reason.clone());
        }
    }

    'bfs: while !frontier.is_empty() && truncated.is_none() {
        // Level-boundary housekeeping: cooperative interrupt, then the
        // periodic / deadline-imminent flush.
        if let Some(pol) = policy {
            if pol.stop_file.as_ref().is_some_and(|p| p.exists()) {
                flush(spec, cfg, &parent, &frontier, level, claims, &pol.path)?;
                return Ok(CheckpointedRun::Interrupted {
                    checkpoint: pol.path.clone(),
                    states: parent.len(),
                    level,
                });
            }
            if since_flush > pol.every_states || meter.deadline_imminent(pol.deadline_window) {
                flush(spec, cfg, &parent, &frontier, level, claims, &pol.path)?;
                since_flush = 0;
            }
        }
        if let Some(max) = cfg.max_depth {
            if level >= max {
                complete = false;
                truncated = Some(DegradeReason::Bound {
                    what: format!("depth limit of {max} reached"),
                });
                break;
            }
        }
        let mut next_frontier = VecDeque::new();
        while let Some(gs) = frontier.pop_front() {
            // Cancellation (drain, client gone, admission deadline) must
            // not wait for the level to finish — a late level can take
            // minutes. Stop at the next state boundary and flush a
            // mid-level checkpoint: the unexpanded remainder plus the
            // states already promoted to the next level. Resume counts
            // the promoted states' depth from `level`, so level stats
            // after a cancelled resume are approximate; the verdict and
            // traces are not affected (parents record exact depths).
            // Budget truncations (node/deadline/memory) keep the
            // level-end snapshot so kill-resume equivalence stays exact.
            if matches!(&truncated, Some(DegradeReason::Cancelled { .. })) {
                frontier.push_front(gs);
                frontier.append(&mut next_frontier);
                break 'bfs;
            }
            let key = gs.encode();
            match successors(spec, cfg, &gs) {
                Expansion::Bug { rule, detail } => {
                    let mut trace = rebuild_trace(&parent, &key, gs);
                    trace.steps.push(rule);
                    let stats = ExploreStats::bounded(parent.len(), level);
                    return Ok(CheckpointedRun::Finished(Verdict::ModelError {
                        trace,
                        detail,
                        stats,
                    }));
                }
                Expansion::Ok(succs) => {
                    if succs.is_empty() {
                        if !gs.is_quiescent(spec) {
                            let stats = ExploreStats::bounded(parent.len(), level);
                            let trace = rebuild_trace(&parent, &key, gs);
                            return Ok(CheckpointedRun::Finished(Verdict::Deadlock {
                                depth: level,
                                trace,
                                stats,
                            }));
                        }
                        continue;
                    }
                    for s in succs {
                        let (sstate, skey) = canon(s.state);
                        if parent.contains_key(&skey) {
                            continue;
                        }
                        if let Some(swmr) = &cfg.swmr {
                            if let Some(detail) = swmr.check(&sstate, spec) {
                                parent.insert(
                                    skey.clone(),
                                    (key.clone(), s.label, (level + 1) as u32),
                                );
                                let stats = ExploreStats::bounded(parent.len(), level);
                                let trace = rebuild_trace(&parent, &skey, sstate);
                                return Ok(CheckpointedRun::Finished(
                                    Verdict::InvariantViolation {
                                        trace,
                                        detail,
                                        stats,
                                    },
                                ));
                            }
                        }
                        let ebytes = entry_bytes(skey.len(), s.label.len());
                        parent.insert(skey, (key.clone(), s.label, (level + 1) as u32));
                        claims += 1;
                        since_flush += 1;
                        next_frontier.push_back(sstate);
                        if truncated.is_none() && !meter.charge_bytes(ebytes) {
                            complete = false;
                            truncated = meter.exhaustion().cloned();
                            if policy.is_none() {
                                break 'bfs;
                            }
                        }
                        if truncated.is_none() && !meter.tick() {
                            complete = false;
                            truncated = meter.exhaustion().cloned();
                            if policy.is_none() {
                                break 'bfs;
                            }
                        }
                        if truncated.is_none() && parent.len() >= cfg.max_states {
                            complete = false;
                            truncated = Some(DegradeReason::Bound {
                                what: format!("state limit of {} reached", cfg.max_states),
                            });
                            if policy.is_none() {
                                break 'bfs;
                            }
                        }
                    }
                }
            }
        }
        level += 1;
        on_level(level, parent.len());
        frontier = next_frontier;
        if truncated.is_some() {
            // Bounded run, level finished: snapshot then stop.
            break;
        }
    }

    // A truncated run is resumable — flush a final checkpoint so the
    // remaining work survives. A complete verdict needs no snapshot.
    if let Some(pol) = policy {
        if truncated.is_some() {
            flush(spec, cfg, &parent, &frontier, level, claims, &pol.path)?;
        }
    }

    Ok(CheckpointedRun::Finished(Verdict::NoDeadlock(ExploreStats {
        states: parent.len(),
        levels: level,
        complete,
        provenance: match truncated {
            None => Provenance::Exact,
            Some(reason) => Provenance::Degraded { reason },
        },
    })))
}

fn rebuild_trace(parent: &ParentMap, key: &[u8], last: GlobalState) -> Trace {
    let mut steps = Vec::new();
    let mut cur = key.to_vec();
    while let Some((p, label, _)) = parent.get(&cur) {
        if label.is_empty() {
            break;
        }
        steps.push(label.clone());
        cur = p.clone();
    }
    steps.reverse();
    Trace { steps, last }
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IcnOrder, InjectionBudget, McConfig, VnMap};
    use vnet_protocol::protocols;

    #[test]
    fn figure3_deadlock_found_in_textbook_msi() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let v = explore(&spec, &cfg);
        match &v {
            Verdict::Deadlock { depth, trace, .. } => {
                assert!(*depth > 4, "deadlock depth {depth} suspiciously small");
                assert!(!trace.is_empty());
            }
            other => panic!("expected deadlock, got {}", other.summary()),
        }
    }

    #[test]
    fn figure3_deadlock_survives_unique_vns() {
        // Class 2: even one VN per message name deadlocks.
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec)
            .with_vns(VnMap::one_per_message(spec.messages().len()));
        assert!(explore(&spec, &cfg).is_deadlock());
    }

    #[test]
    fn nonblocking_msi_with_two_vns_is_clean_on_figure3() {
        let spec = protocols::msi_nonblocking_cache();
        let outcome = vnet_core::minimize_vns(&spec);
        let vns = VnMap::from_assignment(
            outcome.assignment().expect("class 3"),
            spec.messages().len(),
        );
        let cfg = McConfig::figure3(&spec).with_vns(vns);
        let v = explore(&spec, &cfg);
        assert!(!v.is_deadlock(), "{}", v.summary());
        if let Verdict::NoDeadlock(stats) = &v {
            assert!(stats.complete);
        }
    }

    #[test]
    fn single_cache_single_addr_msi_completes_cleanly() {
        let spec = protocols::msi_blocking_cache();
        let mut cfg = McConfig::general(&spec);
        cfg.n_caches = 1;
        cfg.n_addrs = 1;
        cfg.n_dirs = 1;
        cfg.budget = InjectionBudget::PerCache(2);
        let v = explore(&spec, &cfg);
        match v {
            Verdict::NoDeadlock(stats) => assert!(stats.complete),
            other => panic!("{}", other.summary()),
        }
    }

    #[test]
    fn level_callback_fires() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let mut levels = 0;
        let _ = explore_with(&spec, &cfg, |_, _| levels += 1);
        assert!(levels > 0);
    }

    #[test]
    fn depth_bound_reports_incomplete() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec).with_limits(usize::MAX, Some(2));
        match explore(&spec, &cfg) {
            Verdict::NoDeadlock(stats) => {
                assert!(!stats.complete);
                assert!(stats.levels <= 2);
            }
            other => panic!("{}", other.summary()),
        }
    }

    #[test]
    fn swmr_holds_on_the_directed_scenario() {
        let spec = protocols::msi_nonblocking_cache();
        let outcome = vnet_core::minimize_vns(&spec);
        let vns = VnMap::from_assignment(outcome.assignment().unwrap(), spec.messages().len());
        let cfg = McConfig::figure3(&spec)
            .with_vns(vns)
            .with_swmr(crate::invariant::Swmr::by_convention(&spec));
        let v = explore(&spec, &cfg);
        assert!(matches!(v, Verdict::NoDeadlock(_)), "{}", v.summary());
    }

    #[test]
    fn swmr_catches_a_broken_protocol() {
        // A directory that grants M to every requestor without
        // invalidating anyone: two stores → two writers.
        use vnet_protocol::{acts, CoreOp, Guard, MsgType, ProtocolBuilder, Target};
        let mut b = ProtocolBuilder::new("broken-grants");
        b.msg("GetM", MsgType::Request).msg("Data", MsgType::DataResponse);
        b.cache_stable(&["I", "M"]).cache_transient(&["IM"]);
        b.dir_stable(&["I"]);
        b.cache_on_core("I", CoreOp::Store, acts().send("GetM", Target::Dir).goto("IM"));
        b.cache_on_msg_if("IM", "Data", Guard::AckZero, acts().goto("M"));
        b.dir_on_msg("I", "GetM", acts().send_data("Data", Target::Req));
        let spec = b.build();
        spec.validate().unwrap();

        let mut cfg = McConfig::general(&spec)
            .with_budget(InjectionBudget::PerCache(1))
            .with_swmr(crate::invariant::Swmr::by_convention(&spec));
        cfg.n_caches = 2;
        cfg.n_addrs = 1;
        cfg.n_dirs = 1;
        let v = explore(&spec, &cfg);
        match v {
            Verdict::InvariantViolation { detail, trace, .. } => {
                assert!(detail.contains("SWMR"));
                assert!(!trace.is_empty());
            }
            other => panic!("expected SWMR violation, got {}", other.summary()),
        }
    }

    #[test]
    fn symmetry_reduces_states_and_preserves_the_verdict() {
        let spec = protocols::msi_blocking_cache();
        let mut base = McConfig::general(&spec).with_budget(InjectionBudget::PerCache(1));
        base.n_caches = 3;
        base.n_addrs = 1;
        base.n_dirs = 1;
        let plain = explore(&spec, &base);
        let reduced = explore(&spec, &base.clone().with_symmetry());
        let (p, r) = (plain.stats(), reduced.stats());
        assert!(p.complete && r.complete);
        assert!(
            r.states * 2 < p.states,
            "symmetry should at least halve the space: {} vs {}",
            r.states,
            p.states
        );
        assert_eq!(plain.is_deadlock(), reduced.is_deadlock());
    }

    #[test]
    fn exhausted_budget_returns_a_degraded_partial_verdict() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        // Five states is far too few to reach the Figure-3 deadlock; the
        // explorer must stop cleanly and say so.
        let budget = vnet_graph::Budget::unlimited().with_node_limit(5);
        match explore_budgeted(&spec, &cfg, &budget) {
            Verdict::NoDeadlock(stats) => {
                assert!(!stats.complete);
                assert!(!stats.provenance.is_exact());
                assert!(stats.provenance.annotation().contains("node limit"));
                assert!(stats.states <= 7, "stopped late: {} states", stats.states);
            }
            other => panic!("expected a partial verdict, got {}", other.summary()),
        }
    }

    #[test]
    fn unlimited_budget_matches_the_plain_explorer() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let plain = explore(&spec, &cfg);
        let budgeted = explore_budgeted(&spec, &cfg, &vnet_graph::Budget::unlimited());
        assert_eq!(plain.stats(), budgeted.stats());
        assert_eq!(plain.is_deadlock(), budgeted.is_deadlock());
        assert!(plain.stats().provenance.is_exact());
    }

    #[test]
    fn counterexamples_stay_exact_even_under_a_budget() {
        // Enough budget to reach the deadlock, far too little for the
        // full space: the trace is still a definitive (exact) verdict.
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let full = explore(&spec, &cfg);
        let Verdict::Deadlock { stats, .. } = &full else {
            panic!("figure3 must deadlock");
        };
        let budget =
            vnet_graph::Budget::unlimited().with_node_limit(stats.states as u64 + 64);
        let v = explore_budgeted(&spec, &cfg, &budget);
        assert!(v.is_deadlock(), "{}", v.summary());
        assert!(v.stats().provenance.is_exact());
    }

    #[test]
    fn p2p_ordering_also_finds_the_class2_deadlock() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec).with_order(IcnOrder::PointToPoint { salt: 1 });
        assert!(explore(&spec, &cfg).is_deadlock());
    }
}
