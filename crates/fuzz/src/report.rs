//! Deterministic JSON rendering of campaign results.
//!
//! Hand-rolled (the workspace is dependency-free): object keys are
//! emitted in a fixed order, mutants in index order, and nothing
//! time-dependent is ever written — two runs of the same campaign render
//! byte-identical reports.

use crate::oracle::MutantOutcome;
use crate::run::{CampaignReport, CaseResult, FuzzConfig, MutantRecord};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// The one-line recipe that byte-identically reproduces mutant `index`
/// of a campaign: everything the replayer needs, nothing else.
pub fn recipe_line(cfg: &FuzzConfig, index: usize, ops: &[crate::MutationOp]) -> String {
    let ops_json: Vec<String> = ops
        .iter()
        .map(|o| format!("\"{}\"", json_escape(&o.render())))
        .collect();
    format!(
        "{{\"protocol\":\"{}\",\"seed\":{},\"index\":{},\"max_ops\":{},\"max_states\":{},\
         \"max_depth\":{},\"analyzer_nodes\":{},\"skew\":{},\"symmetry\":{},\"ops\":[{}]}}",
        json_escape(&cfg.protocol),
        cfg.seed,
        index,
        cfg.max_ops,
        cfg.oracle.max_states,
        opt_usize(cfg.oracle.max_depth),
        cfg.oracle.analyzer_nodes,
        cfg.oracle.skew,
        cfg.oracle.symmetry,
        ops_json.join(",")
    )
}

fn outcome_fields(out: &MutantOutcome) -> String {
    match out {
        MutantOutcome::Disagreement {
            checked_vns,
            assigned_vns,
            depth,
            states,
            detail,
        } => format!(
            ",\"checked_vns\":{checked_vns},\"assigned_vns\":{assigned_vns},\"depth\":{depth},\
             \"states\":{states},\"detail\":\"{}\"",
            json_escape(detail)
        ),
        MutantOutcome::Consistent { n_vns, detail } => format!(
            ",\"n_vns\":{},\"detail\":\"{}\"",
            opt_usize(*n_vns),
            json_escape(detail)
        ),
        other => format!(",\"detail\":\"{}\"", json_escape(other.detail())),
    }
}

fn render_mutant(cfg: &FuzzConfig, rec: &MutantRecord) -> String {
    let ops_json: Vec<String> = rec
        .ops
        .iter()
        .map(|o| format!("\"{}\"", json_escape(&o.render())))
        .collect();
    let attempts_json: Vec<String> = rec
        .attempts
        .iter()
        .map(|a| format!("\"{}\"", json_escape(a)))
        .collect();
    let mut s = format!(
        "{{\"index\":{},\"mutant_seed\":{},\"ops\":[{}],\"outcome\":\"{}\"",
        rec.index,
        rec.mutant_seed,
        ops_json.join(","),
        rec.result.tag()
    );
    match &rec.result {
        CaseResult::Outcome(out) => s.push_str(&outcome_fields(out)),
        CaseResult::Crashed { panic } => {
            let _ = write!(s, ",\"detail\":\"{}\"", json_escape(panic));
        }
        CaseResult::TimedOut => {
            s.push_str(",\"detail\":\"per-mutant watchdog timeout\"");
        }
    }
    if !attempts_json.is_empty() {
        let _ = write!(s, ",\"attempts\":[{}]", attempts_json.join(","));
    }
    if let Some(min) = &rec.minimized {
        let min_ops: Vec<String> = min
            .ops
            .iter()
            .map(|o| format!("\"{}\"", json_escape(&o.render())))
            .collect();
        let _ = write!(
            s,
            ",\"minimized\":{{\"ops\":[{}],\"steps\":{}}}",
            min_ops.join(","),
            min.steps
        );
    }
    if rec.result.is_disagreement() {
        let _ = write!(
            s,
            ",\"recipe\":{}",
            recipe_line(cfg, rec.index, &rec.ops)
        );
    }
    s.push('}');
    s
}

/// Renders the whole campaign report as pretty-stable JSON (one mutant
/// per line, fixed key order).
pub fn render_report(report: &CampaignReport) -> String {
    let cfg = &report.config;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"tool\": \"vnet-fuzz\",");
    let _ = writeln!(s, "  \"protocol\": \"{}\",", json_escape(&cfg.protocol));
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"start_index\": {},", cfg.start_index);
    let _ = writeln!(s, "  \"count\": {},", cfg.count);
    let _ = writeln!(s, "  \"max_ops\": {},", cfg.max_ops);
    let _ = writeln!(
        s,
        "  \"oracle\": {{\"max_states\": {}, \"max_depth\": {}, \"analyzer_nodes\": {}, \
         \"skew\": {}, \"symmetry\": {}}},",
        cfg.oracle.max_states,
        opt_usize(cfg.oracle.max_depth),
        cfg.oracle.analyzer_nodes,
        cfg.oracle.skew,
        cfg.oracle.symmetry
    );
    s.push_str("  \"counts\": {");
    let counts = report.counts();
    let mut first = true;
    for (tag, n) in &counts {
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(s, "\"{tag}\": {n}");
    }
    s.push_str("},\n");
    let _ = writeln!(s, "  \"disagreements\": {},", report.disagreements());
    s.push_str("  \"mutants\": [\n");
    for (i, rec) in report.mutants.iter().enumerate() {
        let sep = if i + 1 == report.mutants.len() { "" } else { "," };
        let _ = writeln!(s, "    {}{sep}", render_mutant(cfg, rec));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_awkward_cases() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
