//! The artifact's run-all equivalent: static analysis plus a
//! model-checking confirmation for every Table-I experiment, with a
//! summary CSV written to `vn_results.csv`.

use std::fmt::Write as _;
use vnet_core::{analyze, ProtocolClass};
use vnet_mc::{explore, McConfig, VnMap};
use vnet_protocol::protocols;

fn main() {
    let mut csv = String::from("experiment,protocol,class,min_vns,mc_verdict,mc_states\n");

    println!("run-all: static analysis + model checking for every protocol\n");
    let mut specs = protocols::all();
    specs.sort_by_key(|p| protocols::experiment_of(p.name()));

    for spec in specs {
        let exp = protocols::experiment_of(spec.name()).unwrap_or(0);
        let r = analyze(&spec);
        let class = r.class();

        let (mc_verdict, mc_states) = match &class {
            ProtocolClass::Class2 => {
                // Confirm the deadlock with one VN per message name.
                let cfg = McConfig::figure3(&spec)
                    .with_vns(VnMap::one_per_message(spec.messages().len()));
                let v = explore(&spec, &cfg);
                assert!(v.is_deadlock(), "{} must deadlock", spec.name());
                ("deadlock".to_string(), v.stats().states)
            }
            ProtocolClass::Class3 { .. } => {
                let vns = VnMap::from_assignment(
                    r.outcome().assignment().expect("class 3"),
                    spec.messages().len(),
                );
                let cfg = McConfig::figure3(&spec).with_vns(vns);
                let v = explore(&spec, &cfg);
                assert!(!v.is_deadlock(), "{} wedged", spec.name());
                let tag = if v.stats().complete {
                    "no-deadlock-complete"
                } else {
                    "no-deadlock-bounded"
                };
                (tag.to_string(), v.stats().states)
            }
            ProtocolClass::Class1 => unreachable!(),
        };

        let min_vns = r
            .outcome()
            .min_vns()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "({exp}) {:<26} {:<34} MC: {mc_verdict} ({mc_states} states)",
            spec.name(),
            class.to_string()
        );
        let _ = writeln!(
            csv,
            "{exp},{},{},{},{},{}",
            spec.name(),
            match class {
                ProtocolClass::Class1 => "1",
                ProtocolClass::Class2 => "2",
                ProtocolClass::Class3 { .. } => "3",
            },
            min_vns,
            mc_verdict,
            mc_states
        );
    }

    std::fs::write("vn_results.csv", &csv).expect("write vn_results.csv");
    println!("\nwrote vn_results.csv");
    println!("All experiments reproduce Table I.");
}
