//! Timing of the end-to-end VN-minimization algorithm per protocol
//! (the paper's §VI-B tractability claim: instances of ~10¹ message
//! names are solved instantly despite the NP-hard kernels).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vnet_core::{analyze, minimize_vns};
use vnet_core::synthetic::striped_protocol;
use vnet_protocol::protocols;

fn bench_builtin_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimize_vns/builtin");
    for spec in protocols::all() {
        g.bench_function(spec.name(), |b| {
            b.iter(|| black_box(minimize_vns(black_box(&spec))))
        });
    }
    g.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let chi = protocols::chi();
    c.bench_function("analyze/CHI", |b| b.iter(|| black_box(analyze(&chi))));
}

fn bench_striped_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimize_vns/striped");
    for k in [1usize, 2, 4, 8] {
        let spec = striped_protocol(k);
        g.bench_function(format!("{}msgs", 4 * k), |b| {
            b.iter(|| black_box(minimize_vns(black_box(&spec))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_builtin_protocols,
    bench_full_analysis,
    bench_striped_scaling
);
criterion_main!(benches);
