//! Span tracing: enter/exit records with wall time and byte deltas.
//!
//! A span is opened with [`span`] and closed when its [`SpanGuard`]
//! drops. Closing appends a [`SpanRecord`] to a bounded process-wide
//! ring (oldest records are overwritten once the ring is full). Span
//! ids are allocated from a deterministic sequence counter — given the
//! same call sequence, the same ids — and the rendered log is ordered
//! by id, never by wall time, so timing jitter cannot reorder output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Capacity of the span ring. Old records are overwritten beyond this.
const RING_CAP: usize = 4096;

/// One closed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Deterministic sequence id, starting at 1.
    pub id: u64,
    /// The static name passed to [`span`].
    pub name: &'static str,
    /// Wall-clock duration between enter and exit, microseconds.
    pub wall_us: u64,
    /// Caller-supplied byte delta (e.g. a `BudgetMeter` peak), or 0.
    pub bytes: i64,
}

#[derive(Default)]
struct Ring {
    records: Vec<SpanRecord>,
    /// Next write position once `records` has reached [`RING_CAP`].
    head: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::default()))
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn lock(m: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// An open span; records itself into the ring when dropped. While
/// tracing is disabled the guard is inert (no id, no clock read).
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when tracing was disabled at enter time.
    opened: Option<(u64, Instant)>,
    bytes: i64,
}

impl SpanGuard {
    /// Attaches a byte delta (typically a `BudgetMeter` reading) to be
    /// emitted with the exit record.
    pub fn set_bytes(&mut self, bytes: i64) {
        self.bytes = bytes;
    }

    /// The span's id, or 0 when tracing was disabled at enter time.
    pub fn id(&self) -> u64 {
        self.opened.as_ref().map(|(id, _)| *id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((id, start)) = self.opened.take() else {
            return;
        };
        let rec = SpanRecord {
            id,
            name: self.name,
            wall_us: start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            bytes: self.bytes,
        };
        let mut ring = lock(ring());
        if ring.records.len() < RING_CAP {
            ring.records.push(rec);
        } else {
            let head = ring.head;
            ring.records[head] = rec;
            ring.head = (head + 1) % RING_CAP;
        }
    }
}

/// Opens a span named `name`. Cheap no-op (one relaxed load) while
/// tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    let opened = if crate::tracing_enabled() {
        Some((next_id(), Instant::now()))
    } else {
        None
    };
    SpanGuard {
        name,
        opened,
        bytes: 0,
    }
}

/// All retained span records, ordered by span id (ascending).
pub fn records() -> Vec<SpanRecord> {
    let ring = lock(ring());
    let mut out = ring.records.clone();
    out.sort_by_key(|r| r.id);
    out
}

/// Renders the retained spans as a text log, one line per span,
/// ordered by id: `#<id> <name> wall_us=<n> bytes=<n>`.
pub fn trace_log() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records() {
        let _ = writeln!(out, "#{} {} wall_us={} bytes={}", r.id, r.name, r.wall_us, r.bytes);
    }
    out
}

/// Drops every retained record (the id sequence keeps counting).
pub(crate) fn clear() {
    let mut ring = lock(ring());
    ring.records.clear();
    ring.head = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_id_order_with_bytes() {
        crate::set_tracing_enabled(true);
        let first_id;
        {
            let mut a = span("test.span.outer");
            a.set_bytes(1234);
            first_id = a.id();
            assert!(first_id > 0);
            let b = span("test.span.inner");
            assert!(b.id() > first_id);
            // Inner drops before outer, but the log is ordered by id,
            // so the outer span still prints first.
        }
        let log = trace_log();
        let outer_at = log.find("test.span.outer").unwrap_or(usize::MAX);
        let inner_at = log.find("test.span.inner").unwrap_or(0);
        assert!(outer_at < inner_at, "log must be id-ordered:\n{log}");
        assert!(log.contains("bytes=1234"));
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        crate::set_tracing_enabled(true);
        for _ in 0..(RING_CAP + 10) {
            let _ = span("test.span.flood");
        }
        let recs = records();
        assert!(recs.len() <= RING_CAP);
        // Retained ids are the newest ones and strictly ascending.
        for w in recs.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }
}
