//! Bounded MPMC job queue — the admission-control choke point.
//!
//! `try_push` never blocks: a full queue is an immediate, deterministic
//! [`Full`](PushError::Full) so the frontend can shed load with a
//! structured rejection instead of stacking latency. `pop` blocks until
//! work arrives or the queue is closed; close-with-drain lets shutdown
//! finish queued work before the workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity; shed the request.
    Full,
    /// Closed for shutdown; no new work.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` waiting items. `cap` must be
    /// positive; admission control with a zero queue is a typo.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A worker that panicked while holding the lock poisons it; the
        // queue state itself is still consistent (pushes/pops are
        // single operations), so recover rather than cascade.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Non-blocking admission. `Err(Full)` is the shed signal.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut g = self.lock();
        if g.closed {
            return Err((item, PushError::Closed));
        }
        if g.items.len() >= self.cap {
            return Err((item, PushError::Full));
        }
        g.items.push_back(item);
        drop(g);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` once the queue is closed *and*
    /// drained — workers exit by running out of work, not mid-item.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            // A timeout guards against a missed notify under poisoned
            // shutdown interleavings; correctness never depends on it.
            let (g2, _) = self
                .cv
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g = g2;
        }
    }

    /// Items currently waiting (racy snapshot, for retry hints/metrics).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes admission. Queued items still drain via [`pop`]; call
    /// [`drain_remaining`](Self::drain_remaining) instead to reject them.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Closes admission and takes everything still queued (so shutdown
    /// can reject waiting requests explicitly rather than drop them).
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut g = self.lock();
        g.closed = true;
        let items = g.items.drain(..).collect();
        drop(g);
        self.cv.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_and_drains_in_order() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, e) = q.try_push(3).unwrap_err();
        assert_eq!((item, e), (3, PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
        assert_eq!(q.try_push(1).unwrap_err().1, PushError::Closed);
    }

    #[test]
    fn drain_remaining_hands_back_the_queue() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.drain_remaining(), vec!["a", "b"]);
        assert_eq!(q.pop(), None);
    }
}
