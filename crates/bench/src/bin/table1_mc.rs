//! Regenerates the model-checking half of the paper's **Table I**: the
//! experiments of §VII, at laptop scale (see DESIGN.md for the Murphi →
//! `vnet-mc` substitution).
//!
//! * Experiments (2) and (6): Class-2 protocols deadlock even with one
//!   VN per message name — the checker must find the deadlock.
//! * Experiments (4) and (5): with the 2-VN mapping derived by the
//!   algorithm, exploration is clean (complete where the space allows,
//!   bounded otherwise — the paper's own fallback).
//!
//! Pass `--full` for the larger budget-driven configurations (slower);
//! the default uses the directed Figure-3 workload plus a modest
//! general sweep.

use vnet_core::minimize_vns;
use vnet_mc::{explore, InjectionBudget, McConfig, Verdict, VnMap};
use vnet_protocol::{protocols, ProtocolSpec};

fn check_class2(spec: &ProtocolSpec) {
    // One VN per message name — the strongest possible static mapping.
    let cfg = McConfig::figure3(spec).with_vns(VnMap::one_per_message(spec.messages().len()));
    let v = explore(spec, &cfg);
    let verdict = match &v {
        Verdict::Deadlock { depth, stats, .. } => {
            format!("deadlock at depth {depth} ({} states)", stats.states)
        }
        other => format!("UNEXPECTED: {}", other.summary()),
    };
    println!(
        "  {:<26} unique VN per message       {}",
        spec.name(),
        verdict
    );
    assert!(v.is_deadlock(), "{} must deadlock (Class 2)", spec.name());
}

fn check_class3(spec: &ProtocolSpec, full: bool) {
    let outcome = minimize_vns(spec);
    let assignment = outcome.assignment().expect("Class 3 protocol");
    let vns = VnMap::from_assignment(assignment, spec.messages().len());

    // Directed Figure-3 workload: must be clean and completes quickly.
    let cfg = McConfig::figure3(spec).with_vns(vns.clone());
    let v = explore(spec, &cfg);
    println!(
        "  {:<26} {} VNs, figure-3 workload    {}",
        spec.name(),
        vns.n_vns(),
        v.summary()
    );
    assert!(
        matches!(v, Verdict::NoDeadlock(_)),
        "{} failed the figure-3 run: {}",
        spec.name(),
        v.summary()
    );

    // General workload, bounded like the paper's long Murphi runs.
    let (budget, max_states, depth) = if full {
        (2, 6_000_000, None)
    } else {
        (1, 400_000, Some(48))
    };
    let cfg = McConfig::general(spec)
        .with_vns(vns)
        .with_budget(InjectionBudget::PerCache(budget))
        .with_limits(max_states, depth);
    // The long sweeps use every core (and symmetry reduction, which is
    // legal under the uniform budget); the quick ones stay serial for
    // reproducible traces.
    let v = if full {
        let sym = cfg.with_symmetry().expect("general config is symmetric");
        vnet_mc::explore_parallel(spec, &sym, 0)
    } else {
        explore(spec, &cfg)
    };
    println!(
        "  {:<26} {} ops/cache, general        {}",
        spec.name(),
        budget,
        v.summary()
    );
    assert!(
        matches!(v, Verdict::NoDeadlock(_)),
        "{} failed the general sweep: {}",
        spec.name(),
        v.summary()
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("Table I — model-checking confirmation\n");

    println!("experiment (6): MSI/MESI, blocking cache (expected: deadlock)");
    check_class2(&protocols::msi_blocking_cache());
    check_class2(&protocols::mesi_blocking_cache());

    println!("\nexperiment (2): MOSI/MOESI, blocking cache (expected: deadlock)");
    check_class2(&protocols::mosi_blocking_cache());
    check_class2(&protocols::moesi_blocking_cache());

    println!("\nexperiment (5): MSI/MESI, nonblocking cache + derived 2 VNs (expected: clean)");
    check_class3(&protocols::msi_nonblocking_cache(), full);
    check_class3(&protocols::mesi_nonblocking_cache(), full);

    println!("\nexperiment (4): CHI + derived 2 VNs (expected: clean)");
    check_class3(&protocols::chi(), full);

    println!("\nAll model-checking verdicts match Table I.");
}
