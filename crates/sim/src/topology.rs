//! NoC topologies and shortest-path routing tables.

use std::collections::VecDeque;

/// A network topology over `n` router nodes (one endpoint per router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A bidirectional ring of `n` nodes.
    Ring(usize),
    /// A `w × h` mesh (row-major node numbering).
    Mesh(usize, usize),
    /// A full crossbar: every pair directly connected.
    Crossbar(usize),
}

impl Topology {
    /// Number of router nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Ring(n) | Topology::Crossbar(n) => n,
            Topology::Mesh(w, h) => w * h,
        }
    }

    /// All directed links `(from, to)`.
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        match *self {
            Topology::Ring(n) => {
                for i in 0..n {
                    links.push((i, (i + 1) % n));
                    links.push(((i + 1) % n, i));
                }
            }
            Topology::Mesh(w, h) => {
                for y in 0..h {
                    for x in 0..w {
                        let u = y * w + x;
                        if x + 1 < w {
                            links.push((u, u + 1));
                            links.push((u + 1, u));
                        }
                        if y + 1 < h {
                            links.push((u, u + w));
                            links.push((u + w, u));
                        }
                    }
                }
            }
            Topology::Crossbar(n) => {
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            links.push((i, j));
                        }
                    }
                }
            }
        }
        links.sort();
        links.dedup();
        links
    }

    /// `next_hop[from][to]`: the neighbor to take from `from` toward
    /// `to` (`from` itself when `from == to`). Computed by BFS, so paths
    /// are shortest; ties break toward the smallest neighbor id, which
    /// makes routing deterministic.
    pub fn routing_table(&self) -> Vec<Vec<usize>> {
        let n = self.nodes();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, v) in self.links() {
            adj[u].push(v);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let mut table = vec![vec![usize::MAX; n]; n];
        for dst in 0..n {
            // BFS backwards from dst over the reversed graph == forwards
            // on these symmetric topologies.
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            table[dst][dst] = dst;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for &u in &adj[v] {
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        q.push_back(u);
                    }
                }
            }
            for from in 0..n {
                if from == dst {
                    continue;
                }
                // Pick the smallest neighbor that decreases distance.
                let hop = adj[from]
                    .iter()
                    .copied()
                    .filter(|&nb| dist[nb] != usize::MAX && dist[nb] + 1 == dist[from])
                    .min();
                if let Some(h) = hop {
                    table[from][dst] = h;
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_links_and_routing() {
        let t = Topology::Ring(4);
        assert_eq!(t.nodes(), 4);
        assert_eq!(t.links().len(), 8);
        let rt = t.routing_table();
        // 0 -> 2 can go either way (distance 2); next hop is a neighbor.
        assert!(rt[0][2] == 1 || rt[0][2] == 3);
        assert_eq!(rt[0][1], 1);
        assert_eq!(rt[3][3], 3);
    }

    #[test]
    fn mesh_routing_reaches_everywhere() {
        let t = Topology::Mesh(3, 3);
        let rt = t.routing_table();
        for (a, row) in rt.iter().enumerate() {
            for (b, &hop) in row.iter().enumerate() {
                assert_ne!(hop, usize::MAX, "{a}->{b}");
            }
        }
        // Following next hops terminates at the destination.
        let mut cur = 0;
        let mut hops = 0;
        while cur != 8 {
            cur = rt[cur][8];
            hops += 1;
            assert!(hops <= 4, "path too long");
        }
        assert_eq!(hops, 4); // manhattan distance corner to corner
    }

    #[test]
    fn crossbar_is_single_hop() {
        let t = Topology::Crossbar(5);
        let rt = t.routing_table();
        for (a, row) in rt.iter().enumerate() {
            for (b, &hop) in row.iter().enumerate() {
                if a != b {
                    assert_eq!(hop, b);
                }
            }
        }
        assert_eq!(t.links().len(), 20);
    }

    #[test]
    fn links_are_unique(){
        for t in [Topology::Ring(5), Topology::Mesh(2, 3), Topology::Crossbar(4)] {
            let links = t.links();
            let mut dedup = links.clone();
            dedup.dedup();
            assert_eq!(links, dedup);
            assert!(links.iter().all(|&(a, b)| a != b));
        }
    }
}
