//! Scaling of the conflict-graph coloring kernels (exact chromatic
//! search vs. DSATUR).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vnet_graph::coloring::{dsatur_coloring, exact_coloring};
use vnet_graph::{NodeId, UnGraph};

fn random_ungraph(n: usize, density: f64, seed: u64) -> UnGraph<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UnGraph::new();
    let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(density) {
                g.add_edge(ns[i], ns[j]);
            }
        }
    }
    g
}

fn bench_coloring(c: &mut Criterion) {
    let mut grp = c.benchmark_group("coloring");
    for n in [8usize, 12, 16, 20] {
        let g = random_ungraph(n, 0.3, 5 + n as u64);
        grp.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
            b.iter(|| black_box(exact_coloring(g)))
        });
        grp.bench_with_input(BenchmarkId::new("dsatur", n), &g, |b, g| {
            b.iter(|| black_box(dsatur_coloring(g)))
        });
    }
    for n in [64usize, 128] {
        let g = random_ungraph(n, 0.2, 11 + n as u64);
        grp.bench_with_input(BenchmarkId::new("dsatur", n), &g, |b, g| {
            b.iter(|| black_box(dsatur_coloring(g)))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
