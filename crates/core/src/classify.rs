//! The paper's three-way protocol classification (§I, §VI-C).

use crate::assignment::VnOutcome;
use std::fmt;

/// The class of a protocol with respect to VN requirements.
///
/// Class 1 (protocol deadlock regardless of VNs) is a *dynamic* property:
/// the paper identifies it by model checking with one address and one VN
/// per message (`vnet-mc` provides that configuration). The static
/// analysis here assumes the protocol is not Class 1 — exactly as the
/// paper does (§V-A) — and distinguishes Class 2 from Class 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolClass {
    /// Protocol deadlock: a cycle in dynamic waiting with every message
    /// on its own VN. Detected by model checking, not statically.
    Class1,
    /// Inevitable VN deadlock: a cycle in the static `waits` relation.
    /// No per-message-name assignment helps.
    Class2,
    /// A finite VN assignment exists; the payload is the minimum count.
    Class3 {
        /// The minimum number of VNs.
        min_vns: usize,
    },
}

impl ProtocolClass {
    /// Derives the static class from a minimization outcome.
    pub fn from_outcome(outcome: &VnOutcome) -> ProtocolClass {
        match outcome {
            VnOutcome::Class2(_) => ProtocolClass::Class2,
            VnOutcome::Assigned { assignment, .. } => ProtocolClass::Class3 {
                min_vns: assignment.n_vns(),
            },
        }
    }
}

impl fmt::Display for ProtocolClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolClass::Class1 => write!(f, "Class 1 (protocol deadlock)"),
            ProtocolClass::Class2 => write!(f, "Class 2 (inevitable VN deadlock)"),
            ProtocolClass::Class3 { min_vns } => {
                write!(f, "Class 3 ({min_vns} VN{})", if *min_vns == 1 { "" } else { "s" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::minimize_vns;
    use vnet_protocol::protocols;

    #[test]
    fn classes_for_builtin_protocols() {
        let class = |p: &vnet_protocol::ProtocolSpec| {
            ProtocolClass::from_outcome(&minimize_vns(p))
        };
        assert_eq!(
            class(&protocols::mosi_nonblocking_cache()),
            ProtocolClass::Class3 { min_vns: 1 }
        );
        assert_eq!(class(&protocols::mosi_blocking_cache()), ProtocolClass::Class2);
        assert_eq!(class(&protocols::chi()), ProtocolClass::Class3 { min_vns: 2 });
        assert_eq!(
            class(&protocols::msi_nonblocking_cache()),
            ProtocolClass::Class3 { min_vns: 2 }
        );
        assert_eq!(class(&protocols::msi_blocking_cache()), ProtocolClass::Class2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ProtocolClass::Class3 { min_vns: 1 }.to_string(),
            "Class 3 (1 VN)"
        );
        assert_eq!(
            ProtocolClass::Class3 { min_vns: 2 }.to_string(),
            "Class 3 (2 VNs)"
        );
        assert!(ProtocolClass::Class2.to_string().contains("inevitable"));
        assert!(ProtocolClass::Class1.to_string().contains("protocol deadlock"));
    }
}
