//! Structural validation of protocol specifications.
//!
//! Checked properties:
//!
//! 1. every `next` state index is in range (guaranteed by construction,
//!    re-checked for deserialized specs);
//! 2. actions are on the right side — directory bookkeeping never appears
//!    in cache cells and vice versa;
//! 3. guarded entries for the same `(state, message)` pair are mutually
//!    exclusive (a guard never coexists with `Always` or with itself);
//! 4. stalls only occur in transient states (a stable-state stall would
//!    block forever: there is no in-flight transaction to finish);
//! 5. every transient state has at least one outgoing transition
//!    (otherwise the controller can never leave it);
//! 6. request messages are received by directories, forwarded requests by
//!    caches (type/direction coherence, paper §II-C).

use crate::event::{Event, Guard};
use crate::message::MsgType;
use crate::spec::{ControllerKind, ProtocolSpec};
use crate::state::StateKind;
use crate::table::Cell;
use std::collections::BTreeMap;
use std::fmt;

/// A structural defect in a protocol specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A directory-only action in a cache cell, or vice versa.
    MisplacedAction {
        /// Which controller the cell is in.
        kind: ControllerKind,
        /// The state name.
        state: String,
        /// Debug form of the offending action.
        action: String,
    },
    /// Two guards on the same `(state, message)` pair can hold at once.
    OverlappingGuards {
        /// Which controller.
        kind: ControllerKind,
        /// The state name.
        state: String,
        /// The message name.
        message: String,
    },
    /// A stall in a stable state.
    StallInStableState {
        /// Which controller.
        kind: ControllerKind,
        /// The state name.
        state: String,
    },
    /// A transient state with no way out.
    DeadTransientState {
        /// Which controller.
        kind: ControllerKind,
        /// The state name.
        state: String,
    },
    /// A message whose type contradicts where the tables receive it.
    TypeDirectionMismatch {
        /// The message name.
        message: String,
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MisplacedAction { kind, state, action } => {
                write!(f, "misplaced action {action} in {kind} state {state}")
            }
            ValidationError::OverlappingGuards { kind, state, message } => {
                write!(
                    f,
                    "overlapping guards for message {message} in {kind} state {state}"
                )
            }
            ValidationError::StallInStableState { kind, state } => {
                write!(f, "stall in stable {kind} state {state}")
            }
            ValidationError::DeadTransientState { kind, state } => {
                write!(f, "transient {kind} state {state} has no exit")
            }
            ValidationError::TypeDirectionMismatch { message, detail } => {
                write!(f, "message {message}: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Runs all validation checks; returns the first defect found.
pub fn validate_spec(spec: &ProtocolSpec) -> Result<(), ValidationError> {
    for kind in [ControllerKind::Cache, ControllerKind::Directory] {
        let ctrl = spec.controller(kind);

        // (2) action placement + (4) stall placement + guard collection.
        let mut guards: BTreeMap<(usize, usize), Vec<Guard>> = BTreeMap::new();
        for (state, trigger, cell) in ctrl.iter() {
            let sdef = ctrl.state(state);
            match cell {
                Cell::Stall => {
                    if let Event::Msg(_) = trigger.event {
                        if sdef.kind == StateKind::Stable {
                            return Err(ValidationError::StallInStableState {
                                kind,
                                state: sdef.name.clone(),
                            });
                        }
                    }
                }
                Cell::Entry(entry) => {
                    for action in &entry.actions {
                        let misplaced = match kind {
                            ControllerKind::Cache => action.is_directory_only(),
                            ControllerKind::Directory => action.is_cache_only(),
                        };
                        if misplaced {
                            return Err(ValidationError::MisplacedAction {
                                kind,
                                state: sdef.name.clone(),
                                action: format!("{action:?}"),
                            });
                        }
                    }
                }
            }
            if let Event::Msg(m) = trigger.event {
                guards
                    .entry((state.index(), m.index()))
                    .or_default()
                    .push(trigger.guard);
            }
        }

        // (3) guard exclusivity.
        for ((sidx, midx), gs) in guards {
            if gs.len() > 1 {
                let exclusive = gs.iter().enumerate().all(|(i, g)| {
                    gs.iter()
                        .skip(i + 1)
                        .all(|h| g.complement() == Some(*h) || disjoint(*g, *h))
                });
                if !exclusive {
                    return Err(ValidationError::OverlappingGuards {
                        kind,
                        state: ctrl.states()[sidx].name.clone(),
                        message: spec.messages()[midx].name.clone(),
                    });
                }
            }
        }

        // (5) transient exits.
        for (idx, sdef) in ctrl.states().iter().enumerate() {
            if sdef.kind == StateKind::Transient {
                let has_exit = ctrl
                    .row(crate::state::StateId(idx))
                    .any(|(_, c)| matches!(c, Cell::Entry(e) if e.next.is_some()));
                if !has_exit {
                    return Err(ValidationError::DeadTransientState {
                        kind,
                        state: sdef.name.clone(),
                    });
                }
            }
        }
    }

    // (6) type/direction coherence.
    for m in spec.message_ids() {
        let def = spec.message(m);
        let receivers = spec.receivers_of(m);
        match def.mtype {
            MsgType::Request => {
                if receivers.contains(&ControllerKind::Cache) {
                    return Err(ValidationError::TypeDirectionMismatch {
                        message: def.name.clone(),
                        detail: "request received by a cache".into(),
                    });
                }
            }
            MsgType::FwdRequest => {
                if receivers.contains(&ControllerKind::Directory) {
                    return Err(ValidationError::TypeDirectionMismatch {
                        message: def.name.clone(),
                        detail: "forwarded request received by a directory".into(),
                    });
                }
            }
            // Responses flow both ways (Data goes to requestor and to the
            // directory; acks go to caches and directories).
            MsgType::DataResponse | MsgType::CtrlResponse => {}
        }
    }

    Ok(())
}

/// Guards that are mutually exclusive without being formal complements
/// (e.g. `AckZero` can never hold together with `LastAck` because they
/// apply to different message kinds — treated as disjoint here only when
/// their complement pairs differ).
fn disjoint(a: Guard, b: Guard) -> bool {
    // Conservative: guards from different complement families are assumed
    // to apply to different concrete conditions only when neither is
    // Always.
    a != Guard::Always && b != Guard::Always && a.complement() != Some(b) && a != b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{acts, ProtocolBuilder};
    use crate::event::CoreOp;
    use crate::{protocols, Target};

    #[test]
    fn all_builtin_protocols_validate() {
        for p in protocols::all() {
            p.validate()
                .unwrap_or_else(|e| panic!("{} failed validation: {e}", p.name()));
        }
    }

    #[test]
    fn stall_in_stable_state_rejected() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Get", MsgType::Request);
        b.cache_stable(&["I"]);
        b.dir_stable(&["I"]);
        b.dir_stall_msg("I", "Get");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, ValidationError::StallInStableState { .. }));
    }

    #[test]
    fn dead_transient_state_rejected() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Get", MsgType::Request).msg("Dat", MsgType::DataResponse);
        b.cache_stable(&["I"]).cache_transient(&["IV"]);
        b.dir_stable(&["I"]);
        b.cache_on_core("I", CoreOp::Load, acts().send("Get", Target::Dir).goto("IV"));
        // IV has no exit.
        b.dir_on_msg("I", "Get", acts().send_data("Dat", Target::Req));
        // Dat must be received somewhere to avoid other errors; cache IV
        // stalls it — still no exit.
        b.cache_stall_msg("IV", "Dat");
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, ValidationError::DeadTransientState { .. }));
    }

    #[test]
    fn request_received_by_cache_rejected() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Get", MsgType::Request);
        b.cache_stable(&["I", "V"]).dir_stable(&["I"]);
        b.cache_on_msg("I", "Get", acts().goto("V"));
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, ValidationError::TypeDirectionMismatch { .. }));
    }

    #[test]
    fn misplaced_action_rejected() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Dat", MsgType::DataResponse);
        b.cache_stable(&["I", "V"]).dir_stable(&["I"]);
        // ClearSharers is directory-only.
        b.cache_on_msg("I", "Dat", acts().clear_sharers().goto("V"));
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, ValidationError::MisplacedAction { .. }));
    }

    #[test]
    fn overlapping_guards_rejected() {
        let mut b = ProtocolBuilder::new("bad");
        b.msg("Dat", MsgType::DataResponse);
        b.cache_stable(&["I", "V"]).dir_stable(&["I"]);
        b.cache_on_msg("I", "Dat", acts().goto("V"));
        b.cache_on_msg_if("I", "Dat", Guard::AckZero, acts().goto("V"));
        let err = b.build().validate().unwrap_err();
        assert!(matches!(err, ValidationError::OverlappingGuards { .. }));
    }

    #[test]
    fn errors_display() {
        let e = ValidationError::StallInStableState {
            kind: ControllerKind::Cache,
            state: "I".into(),
        };
        assert!(e.to_string().contains("stable"));
    }
}
