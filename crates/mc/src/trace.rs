//! Counterexample traces.

use crate::config::McConfig;
use crate::state::GlobalState;
use vnet_protocol::ProtocolSpec;

/// A rule-labeled path from the initial state to a witness state.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The rule labels, in execution order.
    pub steps: Vec<String>,
    /// The final (witness) state.
    pub last: GlobalState,
}

impl Trace {
    /// Trace length in rules.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the trace is empty (the initial state itself is the
    /// witness).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the trace from `GlobalState::initial`, matching each
    /// step label against the enabled successors of the current state.
    /// Returns the terminal state, or a description of the first step
    /// whose label is not enabled — which would mean the trace does not
    /// describe a real execution (the check the differential tests
    /// lean on to validate parallel-explorer witnesses).
    pub fn replay(&self, spec: &ProtocolSpec, cfg: &McConfig) -> Result<GlobalState, String> {
        let mut cur = GlobalState::initial(spec, cfg);
        for (i, step) in self.steps.iter().enumerate() {
            match crate::rules::successors(spec, cfg, &cur) {
                crate::rules::Expansion::Bug { rule, detail } => {
                    return Err(format!(
                        "step {}: expansion hit a spec bug in `{rule}`: {detail}",
                        i + 1
                    ));
                }
                crate::rules::Expansion::Ok(succs) => {
                    match succs.into_iter().find(|s| s.label == *step) {
                        Some(s) => cur = s.state,
                        None => {
                            return Err(format!(
                                "step {}: label `{step}` is not enabled in the replayed state",
                                i + 1
                            ));
                        }
                    }
                }
            }
        }
        Ok(cur)
    }

    /// Renders the trace with the final state dump.
    pub fn display(&self, spec: &ProtocolSpec, cfg: &McConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "{:>3}. {step}", i + 1);
        }
        let _ = writeln!(out, "final state:");
        out.push_str(&self.last.dump(spec, cfg));
        out
    }
}


/// Rebuilds a *concrete* execution from a chain of canonical state
/// keys, root first (the per-step parent links a symmetry-mode explorer
/// stores). Under symmetry reduction the stored labels reference
/// permuted cache/address indices and do not describe any real
/// execution; instead of trusting them, this walks forward from the
/// concrete initial state and, at each step, picks the concrete
/// successor whose canonical key matches the recorded child — so the
/// returned steps are real concrete rule labels and
/// [`Trace::replay`] reaches `last` by construction. Every recorded
/// canonical child has at least one matching concrete successor (the
/// transition relation commutes with the symmetry group), so `Err`
/// here means the chain itself is damaged.
pub(crate) fn decanonicalize_chain(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    chain: &[Vec<u8>],
) -> Result<Trace, String> {
    let mut canon = crate::symmetry::Canonicalizer::new(cfg);
    let mut cur = GlobalState::initial(spec, cfg);
    let mut key = Vec::with_capacity(160);
    canon.canonical_key_into(&cur, &mut key);
    let Some(first) = chain.first() else {
        return Err("empty canonical chain".into());
    };
    if *first != key {
        return Err("canonical chain does not start at the initial state".into());
    }
    let mut steps = Vec::with_capacity(chain.len().saturating_sub(1));
    for (depth, want) in chain.iter().enumerate().skip(1) {
        let succs = match crate::rules::successors(spec, cfg, &cur) {
            crate::rules::Expansion::Ok(s) => s,
            crate::rules::Expansion::Bug { rule, detail } => {
                return Err(format!(
                    "expansion hit a spec bug at depth {depth} in `{rule}`: {detail}"
                ));
            }
        };
        let mut found = None;
        for s in succs {
            canon.canonical_key_into(&s.state, &mut key);
            if key == *want {
                found = Some(s);
                break;
            }
        }
        match found {
            Some(s) => {
                steps.push(s.label);
                cur = s.state;
            }
            None => {
                return Err(format!(
                    "no successor at depth {depth} maps onto the recorded canonical state"
                ));
            }
        }
    }
    Ok(Trace { steps, last: cur })
}

/// A loud, replay-failing trace for the (provably unreachable) case
/// where de-canonicalization could not reconstruct a concrete
/// execution: the sentinel step is never an enabled rule label, so a
/// differential replay reports the damage instead of silently passing.
pub(crate) fn decanonicalize_failed(why: &str, last: GlobalState) -> Trace {
    Trace {
        steps: vec![format!("<witness de-canonicalization failed: {why}>")],
        last,
    }
}

/// Re-expands a concrete witness state to recover the concrete
/// `(rule, detail)` of a model error that was recorded against its
/// canonical image (whose rule label names permuted indices).
pub(crate) fn concrete_bug(
    spec: &ProtocolSpec,
    cfg: &McConfig,
    last: &GlobalState,
) -> Option<(String, String)> {
    match crate::rules::successors(spec, cfg, last) {
        crate::rules::Expansion::Bug { rule, detail } => Some((rule, detail)),
        crate::rules::Expansion::Ok(_) => None,
    }
}

/// Parsed form of a trace step (recovered from the rule labels, whose
/// format this crate controls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChartEvent {
    /// A core operation issued at a cache.
    Inject {
        /// Cache lane label ("C1").
        cache: String,
        /// e.g. "Store Y".
        what: String,
    },
    /// A message arriving at its destination's input FIFO (it may then
    /// sit there stalled — exactly the Figure-3 situation).
    Deliver {
        /// Source lane label.
        src: String,
        /// Destination lane label.
        dst: String,
        /// e.g. "Fwd-GetM(X)".
        what: String,
    },
    /// A message processed (consumed) by its destination controller.
    Process {
        /// The processing lane.
        at: String,
        /// e.g. "Fwd-GetM(X)".
        what: String,
    },
}

impl Trace {
    /// Extracts chart events from the rule labels (injections and
    /// deliveries; buffer movements are omitted).
    pub fn chart_events(&self) -> Vec<ChartEvent> {
        let mut out = Vec::new();
        for step in &self.steps {
            if let Some(rest) = step.strip_prefix("inject ") {
                // "inject C1 Store Y [GetM→vn0b1]"
                let mut it = rest.split_whitespace();
                let cache = it.next().unwrap_or("?").to_string();
                let op = it.next().unwrap_or("?");
                let addr = it.next().unwrap_or("?");
                out.push(ChartEvent::Inject {
                    cache,
                    what: format!("{op} {addr}"),
                });
            } else if let Some(rest) = step.strip_prefix("advance ") {
                // "advance vn0.b1 GetM(Y) C1→Dir2 req=C1"
                let mut it = rest.split_whitespace();
                let _buf = it.next();
                let what = it.next().unwrap_or("?").to_string();
                let route = it.next().unwrap_or("?");
                let mut ends = route.split('\u{2192}');
                let src = ends.next().unwrap_or("?").to_string();
                let dst = ends.next().unwrap_or("?").to_string();
                out.push(ChartEvent::Deliver { src, dst, what });
            } else if let Some(rest) = step.strip_prefix("consume ") {
                // "consume Fwd-GetM(X) C1→C2 req=C3 at C2 [...]"
                let what = rest.split_whitespace().next().unwrap_or("?").to_string();
                let at = rest
                    .split(" at ")
                    .nth(1)
                    .and_then(|t| t.split_whitespace().next())
                    .unwrap_or("?")
                    .to_string();
                out.push(ChartEvent::Process { at, what });
            }
        }
        out
    }

    /// Renders the trace as an ASCII message-sequence chart in the style
    /// of the paper's Figure 3: one lane per endpoint, one row per
    /// injection or delivery.
    pub fn sequence_chart(&self, cfg: &McConfig) -> String {
        use std::fmt::Write as _;
        const LANE_W: usize = 14;
        let mut lanes: Vec<String> = (0..cfg.n_caches).map(|i| format!("C{}", i + 1)).collect();
        lanes.extend((0..cfg.n_dirs).map(|i| format!("Dir{}", i + 1)));
        let col = |lane: &str| lanes.iter().position(|l| l == lane);
        let center = |i: usize| i * LANE_W + LANE_W / 2;

        let mut out = String::new();
        for lane in &lanes {
            let _ = write!(out, "{lane:^LANE_W$}");
        }
        out.push('\n');
        for (n, ev) in self.chart_events().into_iter().enumerate() {
            // Slack beyond the last lane so local markers don't truncate.
            let mut row = vec![b' '; lanes.len() * LANE_W + 24];
            for i in 0..lanes.len() {
                row[center(i)] = b'|';
            }
            match ev {
                ChartEvent::Inject { cache, what } => {
                    if let Some(i) = col(&cache) {
                        let label = format!("*{what}");
                        let start = center(i) + 1;
                        for (k, b) in label.bytes().enumerate() {
                            if start + k < row.len() {
                                row[start + k] = b;
                            }
                        }
                    }
                }
                ChartEvent::Process { at, what } => {
                    if let Some(i) = col(&at) {
                        let label = format!("!{what}");
                        let start = center(i) + 1;
                        for (k, b) in label.bytes().enumerate() {
                            if start + k < row.len() {
                                row[start + k] = b;
                            }
                        }
                    }
                }
                ChartEvent::Deliver { src, dst, what } => {
                    if let (Some(si), Some(di)) = (col(&src), col(&dst)) {
                        let (a, b) = (center(si).min(center(di)), center(si).max(center(di)));
                        for cell in row.iter_mut().take(b).skip(a + 1) {
                            *cell = b'-';
                        }
                        row[if si < di { b } else { a }] =
                            if si < di { b'>' } else { b'<' };
                        // Overlay the label mid-arrow.
                        let mid = (a + b) / 2;
                        let start = mid.saturating_sub(what.len() / 2);
                        for (k, byte) in what.bytes().enumerate() {
                            if start + k < row.len() && start + k > a && start + k < b {
                                row[start + k] = byte;
                            }
                        }
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:>3} {}",
                n + 1,
                String::from_utf8_lossy(&row).trim_end()
            );
        }
        out
    }
}

// Test-only panics below (unwrap/expect on known-good fixtures,
// aborts on impossible verdicts) stop just the failing test; the
// production paths above are panic-free.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::McConfig;
    use vnet_protocol::protocols;

    #[test]
    fn chart_events_parse_inject_and_consume() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let t = Trace {
            steps: vec![
                "inject C1 Store Y [GetM\u{2192}vn0b1]".into(),
                "advance vn0.b1 GetM(Y) C1\u{2192}Dir2 req=C1".into(),
                "consume GetM(Y) C1\u{2192}Dir2 req=C1 at Dir2 [Fwd-GetM\u{2192}vn1b1]".into(),
            ],
            last: GlobalState::initial(&spec, &cfg),
        };
        let evs = t.chart_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs[0],
            ChartEvent::Inject { cache: "C1".into(), what: "Store Y".into() }
        );
        assert_eq!(
            evs[1],
            ChartEvent::Deliver {
                src: "C1".into(),
                dst: "Dir2".into(),
                what: "GetM(Y)".into()
            }
        );
        assert_eq!(
            evs[2],
            ChartEvent::Process { at: "Dir2".into(), what: "GetM(Y)".into() }
        );
    }

    #[test]
    fn sequence_chart_draws_lanes_and_arrows() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let t = Trace {
            steps: vec![
                "inject C1 Store Y [GetM\u{2192}vn0b1]".into(),
                "advance vn0.b1 GetM(Y) C1\u{2192}Dir2 req=C1".into(),
                "advance vn2.b0 Data(Y) Dir2\u{2192}C1 req=C1".into(),
                "consume Data(Y) Dir2\u{2192}C1 req=C1 at C1".into(),
            ],
            last: GlobalState::initial(&spec, &cfg),
        };
        let chart = t.sequence_chart(&cfg);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("C1") && lines[0].contains("Dir2"));
        assert!(lines[1].contains("*Store Y"));
        assert!(lines[2].contains('>') && lines[2].contains("GetM(Y)"));
        assert!(lines[3].contains('<') && lines[3].contains("Data(Y)"));
        assert!(lines[4].contains("!Data(Y)"));
    }

    #[test]
    fn fig3_trace_charts_without_panic() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        if let crate::Verdict::Deadlock { trace, .. } = crate::explore(&spec, &cfg) {
            let chart = trace.sequence_chart(&cfg);
            assert!(chart.contains("Fwd-GetM"));
            assert!(chart.lines().count() > 10);
        } else {
            panic!("expected deadlock");
        }
    }

    #[test]
    fn fig3_deadlock_trace_replays_to_its_witness() -> Result<(), String> {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let crate::Verdict::Deadlock { trace, .. } = crate::explore(&spec, &cfg) else {
            return Err("expected deadlock".into());
        };
        let end = trace.replay(&spec, &cfg)?;
        assert_eq!(end, trace.last, "replay must land on the recorded witness");
        Ok(())
    }

    #[test]
    fn replay_rejects_a_corrupted_trace() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::figure3(&spec);
        let t = Trace {
            steps: vec!["inject C9 Flurp Z".into()],
            last: GlobalState::initial(&spec, &cfg),
        };
        let err = t.replay(&spec, &cfg).unwrap_err();
        assert!(err.contains("not enabled"), "{err}");
    }

    #[test]
    fn display_numbers_steps() {
        let spec = protocols::msi_blocking_cache();
        let cfg = McConfig::general(&spec);
        let t = Trace {
            steps: vec!["inject C1 Store X".into(), "advance vn0.b0".into()],
            last: GlobalState::initial(&spec, &cfg),
        };
        let text = t.display(&spec, &cfg);
        assert!(text.contains("  1. inject C1 Store X"));
        assert!(text.contains("  2. advance"));
        assert!(text.contains("final state:"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
