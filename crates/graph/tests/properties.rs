//! Property-based tests for the graph kernels, checked against naive
//! oracles.
//!
//! Runs seeded random cases from the in-repo [`Rng64`] generator (the
//! workspace builds without crates.io access, so no `proptest`); each
//! assertion carries the case index for reproduction.

use std::collections::BTreeSet;
use vnet_graph::coloring::{dsatur_coloring, exact_coloring};
use vnet_graph::cycles::elementary_cycles;
use vnet_graph::fas::{heuristic_feedback_arc_set, is_acyclic_without, minimum_feedback_arc_set};
use vnet_graph::scc::tarjan;
use vnet_graph::{BitSet, DiGraph, NodeId, Rng64, UnGraph};

fn digraph(n: usize, edges: &[(usize, usize)]) -> DiGraph<(), u128> {
    let mut g = DiGraph::new();
    let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for &(a, b) in edges {
        g.add_edge(ns[a % n], ns[b % n], 1);
    }
    g
}

fn random_edges(rng: &mut Rng64, max_node: usize, max_edges: usize) -> Vec<(usize, usize)> {
    let count = rng.gen_range(0, max_edges + 1);
    (0..count)
        .map(|_| (rng.gen_range(0, max_node), rng.gen_range(0, max_node)))
        .collect()
}

/// Naive reachability for the SCC oracle.
fn reaches(g: &DiGraph<(), u128>, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if std::mem::replace(&mut seen[v.index()], true) {
            continue;
        }
        stack.extend(g.successors(v));
    }
    // `from == to` needs a nonempty path; restart from successors.
    false
}

fn strictly_reaches(g: &DiGraph<(), u128>, from: NodeId, to: NodeId) -> bool {
    g.successors(from).any(|s| s == to || reaches(g, s, to))
}

#[test]
fn tarjan_matches_mutual_reachability() {
    let mut rng = Rng64::seed_from_u64(0x7A21);
    for case in 0..32 {
        let n = rng.gen_range(1, 8);
        let edges = random_edges(&mut rng, 8, 24);
        let g = digraph(n, &edges);
        let sccs = tarjan(&g);
        for a in 0..n {
            for b in 0..n {
                let (na, nb) = (NodeId(a), NodeId(b));
                let same = sccs.same_component(na, nb);
                let oracle = a == b
                    || (strictly_reaches(&g, na, nb) && strictly_reaches(&g, nb, na));
                assert_eq!(same, oracle, "case {case} nodes {a} {b}");
            }
        }
    }
}

#[test]
fn exact_fas_is_sound_and_never_worse() {
    let mut rng = Rng64::seed_from_u64(0xFA52);
    for case in 0..32 {
        let n = rng.gen_range(2, 7);
        let edges = random_edges(&mut rng, 7, 16);
        let g = digraph(n, &edges);
        let exact = minimum_feedback_arc_set(&g, |&w| w);
        let heur = heuristic_feedback_arc_set(&g, |&w| w);
        assert!(is_acyclic_without(&g, &exact.edges), "case {case}");
        assert!(is_acyclic_without(&g, &heur.edges), "case {case}");
        assert!(exact.weight <= heur.weight, "case {case}");
        // Minimality against brute force for small edge counts.
        if g.edge_count() <= 10 {
            let m = g.edge_count();
            let mut best = u128::MAX;
            for mask in 0u32..(1 << m) {
                let removed: Vec<vnet_graph::EdgeId> = (0..m)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(vnet_graph::EdgeId)
                    .collect();
                if is_acyclic_without(&g, &removed) {
                    best = best.min(removed.len() as u128);
                }
            }
            assert_eq!(exact.weight, best, "case {case}: brute force disagrees");
        }
    }
}

#[test]
fn exact_coloring_is_proper_and_minimal() {
    let mut rng = Rng64::seed_from_u64(0xC0102);
    for case in 0..32 {
        let n = rng.gen_range(1, 7);
        let edges = random_edges(&mut rng, 7, 14);
        let mut g: UnGraph<()> = UnGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in &edges {
            if a % n != b % n {
                g.add_edge(ns[a % n], ns[b % n]);
            }
        }
        let exact = exact_coloring(&g);
        let ds = dsatur_coloring(&g);
        assert!(exact.is_proper(&g), "case {case}");
        assert!(ds.is_proper(&g), "case {case}");
        assert!(exact.num_colors <= ds.num_colors, "case {case}");
        // Brute-force chromatic number for tiny graphs.
        if n <= 5 {
            let mut best = n;
            'k: for k in 1..=n {
                let mut assign = vec![0usize; n];
                loop {
                    let proper = g.edges().all(|(a, b)| assign[a.index()] != assign[b.index()]);
                    if proper {
                        best = k;
                        break 'k;
                    }
                    // increment base-k counter
                    let mut i = 0;
                    loop {
                        if i == n {
                            break;
                        }
                        assign[i] += 1;
                        if assign[i] < k {
                            break;
                        }
                        assign[i] = 0;
                        i += 1;
                    }
                    if i == n {
                        break;
                    }
                }
            }
            if g.edge_count() == 0 {
                assert_eq!(exact.num_colors, usize::from(n > 0), "case {case}");
            } else {
                assert_eq!(exact.num_colors, best, "case {case}");
            }
        }
    }
}

#[test]
fn johnson_cycles_are_genuine_and_distinct() {
    let mut rng = Rng64::seed_from_u64(0x10cafe);
    for case in 0..32 {
        let n = rng.gen_range(1, 6);
        let edges = random_edges(&mut rng, 6, 14);
        let g = digraph(n, &edges);
        let cycles = elementary_cycles(&g, 10_000);
        let mut seen = BTreeSet::new();
        for c in &cycles {
            // Edge chain closes.
            let nodes = c.nodes(&g);
            for (i, &e) in c.edges.iter().enumerate() {
                let (s, d) = g.endpoints(e);
                assert_eq!(s, nodes[i], "case {case}");
                let next = nodes[(i + 1) % nodes.len()];
                assert_eq!(d, next, "case {case}");
            }
            // Elementary: node-distinct.
            let set: BTreeSet<_> = nodes.iter().collect();
            assert_eq!(set.len(), nodes.len(), "case {case}");
            assert!(seen.insert(c.edges.clone()), "case {case}: duplicate cycle");
        }
        // Consistency with cycle detection.
        assert_eq!(
            cycles.is_empty(),
            !vnet_graph::scc::has_cycle(&g),
            "case {case}"
        );
    }
}

#[test]
fn bitset_behaves_like_btreeset() {
    let mut rng = Rng64::seed_from_u64(0xB17);
    for case in 0..32 {
        let mut bs = BitSet::with_capacity(64);
        let mut model = BTreeSet::new();
        for _ in 0..rng.gen_range(1, 60) {
            let op = rng.gen_range(0, 3);
            let v = rng.gen_range(0, 64);
            match op {
                0 => {
                    assert_eq!(bs.insert(v), model.insert(v), "case {case}");
                }
                1 => {
                    assert_eq!(bs.remove(v), model.remove(&v), "case {case}");
                }
                _ => {
                    assert_eq!(bs.contains(v), model.contains(&v), "case {case}");
                }
            }
        }
        assert_eq!(
            bs.iter().collect::<Vec<_>>(),
            model.into_iter().collect::<Vec<_>>(),
            "case {case}"
        );
    }
}

#[test]
fn closure_is_transitive_and_supports_edges() {
    let mut rng = Rng64::seed_from_u64(0xC105);
    for case in 0..32 {
        let n = rng.gen_range(1, 7);
        let edges = random_edges(&mut rng, 7, 16);
        let g = digraph(n, &edges);
        let tc = vnet_graph::closure::transitive_closure(&g);
        // Contains every edge.
        for (_, s, d) in g.edges() {
            assert!(tc.reachable(s, d), "case {case}");
        }
        // Transitive.
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if tc.reachable(NodeId(a), NodeId(b)) && tc.reachable(NodeId(b), NodeId(c)) {
                        assert!(tc.reachable(NodeId(a), NodeId(c)), "case {case}");
                    }
                }
            }
        }
        // Sound: agrees with naive reachability.
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    tc.reachable(NodeId(a), NodeId(b)),
                    strictly_reaches(&g, NodeId(a), NodeId(b)),
                    "case {case} {a}->{b}"
                );
            }
        }
    }
}
