//! Minimum vertex coloring of undirected graphs.
//!
//! The number of colors of the conflict graph *is* the number of virtual
//! networks (paper §VI-A(c)), so we provide an exact solver for the final
//! answer plus DSATUR/greedy for cross-checks and scaling studies.

use crate::budget::{Budget, BudgetMeter, Provenance};
use crate::digraph::NodeId;
use crate::ungraph::UnGraph;

/// A proper vertex coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// `colors[v]` is the color (0-based) of node `v`.
    pub colors: Vec<usize>,
    /// Number of colors used.
    pub num_colors: usize,
    /// `true` if produced by the exact solver (chromatic number).
    pub exact: bool,
}

impl Coloring {
    /// The color of `node`.
    pub fn color_of(&self, node: NodeId) -> usize {
        self.colors[node.0]
    }

    /// Checks that no edge of `graph` is monochromatic.
    pub fn is_proper<N>(&self, graph: &UnGraph<N>) -> bool {
        graph
            .edges()
            .all(|(a, b)| self.colors[a.0] != self.colors[b.0])
    }
}

/// Greedy coloring in the given vertex order.
pub fn greedy_coloring<N>(graph: &UnGraph<N>, order: &[NodeId]) -> Coloring {
    let n = graph.node_count();
    const UNSET: usize = usize::MAX;
    let mut colors = vec![UNSET; n];
    let mut max_color = 0usize;
    for &v in order {
        let mut used = vec![false; max_color + 1];
        for nb in graph.neighbors(v) {
            let c = colors[nb.0];
            if c != UNSET && c < used.len() {
                used[c] = true;
            }
        }
        let c = used.iter().position(|&u| !u).unwrap_or(used.len());
        colors[v.0] = c;
        max_color = max_color.max(c + 1);
    }
    let num_colors = if n == 0 {
        0
    } else {
        colors.iter().max().map_or(0, |&c| c + 1)
    };
    Coloring {
        colors,
        num_colors,
        exact: false,
    }
}

/// DSATUR coloring: repeatedly color the vertex with the highest
/// *saturation* (number of distinct neighbor colors), breaking ties by
/// degree. Optimal on many structured graphs; always proper.
pub fn dsatur_coloring<N>(graph: &UnGraph<N>) -> Coloring {
    let n = graph.node_count();
    const UNSET: usize = usize::MAX;
    let mut colors = vec![UNSET; n];
    let mut colored = 0usize;
    while colored < n {
        // Saturation of each uncolored vertex.
        let v = (0..n)
            .filter(|&v| colors[v] == UNSET)
            .max_by_key(|&v| {
                let sat: std::collections::BTreeSet<usize> = graph
                    .neighbors(NodeId(v))
                    .filter_map(|nb| (colors[nb.0] != UNSET).then_some(colors[nb.0]))
                    .collect();
                (sat.len(), graph.degree(NodeId(v)))
            })
            .expect("uncolored vertex exists");
        let used: std::collections::BTreeSet<usize> = graph
            .neighbors(NodeId(v))
            .filter_map(|nb| (colors[nb.0] != UNSET).then_some(colors[nb.0]))
            .collect();
        let c = (0..).find(|c| !used.contains(c)).expect("unbounded range");
        colors[v] = c;
        colored += 1;
    }
    let num_colors = colors.iter().max().map_or(0, |&c| c + 1);
    Coloring {
        colors,
        num_colors,
        exact: false,
    }
}

/// Exact minimum coloring (chromatic number) by iterative-deepening
/// backtracking with DSATUR as the upper bound.
///
/// Exponential in the worst case; intended for the tiny conflict graphs of
/// the VN pipeline. For an empty graph returns zero colors.
///
/// # Example
///
/// ```
/// use vnet_graph::{UnGraph, coloring::exact_coloring};
///
/// let mut g: UnGraph<&str> = UnGraph::new();
/// let a = g.add_node("GetM");
/// let b = g.add_node("Data");
/// g.add_edge(a, b);
/// let c = exact_coloring(&g);
/// assert_eq!(c.num_colors, 2);
/// assert!(c.is_proper(&g));
/// ```
pub fn exact_coloring<N>(graph: &UnGraph<N>) -> Coloring {
    exact_coloring_budgeted(graph, &Budget::unlimited()).0
}

/// [`exact_coloring`] under a [`Budget`].
///
/// The iterative-deepening backtrack search is metered (one tick per
/// backtrack node); if the budget exhausts before the chromatic number
/// is pinned down, the result *degrades gracefully* to the DSATUR
/// coloring — always proper, possibly more colors than optimal — and
/// the returned [`Provenance`] says why.
///
/// A `Some` answer found before exhaustion is still exact: every
/// smaller `k` was fully refuted first, and properness is
/// machine-checkable regardless of where the budget stood.
pub fn exact_coloring_budgeted<N>(graph: &UnGraph<N>, budget: &Budget) -> (Coloring, Provenance) {
    let n = graph.node_count();
    if n == 0 {
        return (
            Coloring {
                colors: Vec::new(),
                num_colors: 0,
                exact: true,
            },
            Provenance::Exact,
        );
    }
    if graph.edge_count() == 0 {
        return (
            Coloring {
                colors: vec![0; n],
                num_colors: 1,
                exact: true,
            },
            Provenance::Exact,
        );
    }
    let upper = dsatur_coloring(graph);
    // A clique lower bound: greedy clique from the max-degree vertex.
    let lower = greedy_clique_size(graph).max(2);
    let mut span = vnet_obs::span("coloring.solve");
    let mut meter = budget.start();
    // The search's working set is a handful of O(n) arrays per k; charge
    // them once so a memory budget covers this kernel too. Exhaustion
    // here falls through to the DSATUR fallback below.
    meter.charge_bytes((4 * n * std::mem::size_of::<usize>()) as u64);
    for k in lower..=upper.num_colors {
        if let Some(colors) = try_k_coloring(graph, k, &mut meter) {
            // Exact even if the meter just ran dry: a proper k-coloring
            // in hand plus fully-refuted smaller k's is a proof.
            finish_coloring(&mut span, &meter, false);
            return (
                Coloring {
                    colors,
                    num_colors: k,
                    exact: true,
                },
                Provenance::Exact,
            );
        }
        if meter.exhaustion().is_some() {
            // The refutation of this k was cut short — fall back to the
            // DSATUR upper bound rather than claim optimality.
            finish_coloring(&mut span, &meter, true);
            return (
                Coloring {
                    exact: false,
                    ..upper
                },
                meter.provenance(),
            );
        }
    }
    finish_coloring(&mut span, &meter, false);
    (
        Coloring {
            exact: true,
            ..upper
        },
        Provenance::Exact,
    )
}

/// Records exit telemetry for one budgeted coloring solve: backtrack
/// nodes visited (the meter ticks once per search node), budget
/// exhaustions, and the solve span's byte peak.
fn finish_coloring(span: &mut vnet_obs::SpanGuard, meter: &BudgetMeter, degraded: bool) {
    span.set_bytes(meter.peak_bytes() as i64);
    if !vnet_obs::metrics_enabled() {
        return;
    }
    vnet_obs::counter("coloring.solves_total").inc();
    vnet_obs::counter("coloring.backtracks_total").add(meter.nodes());
    if degraded {
        vnet_obs::counter("coloring.budget_exhausted_total").inc();
    }
}

fn greedy_clique_size<N>(graph: &UnGraph<N>) -> usize {
    let n = graph.node_count();
    if n == 0 {
        return 0;
    }
    let start = (0..n)
        .max_by_key(|&v| graph.degree(NodeId(v)))
        .expect("nonempty");
    let mut clique = vec![start];
    let mut candidates: Vec<usize> = graph.neighbors(NodeId(start)).map(|v| v.0).collect();
    candidates.sort_by_key(|&v| std::cmp::Reverse(graph.degree(NodeId(v))));
    for v in candidates {
        if clique
            .iter()
            .all(|&c| graph.are_adjacent(NodeId(v), NodeId(c)))
        {
            clique.push(v);
        }
    }
    clique.len()
}

/// Backtracking k-colorability test. Vertices are processed in DSATUR-ish
/// static order (descending degree); symmetry is broken by only allowing a
/// new color index one past the current maximum.
fn try_k_coloring<N>(graph: &UnGraph<N>, k: usize, meter: &mut BudgetMeter) -> Option<Vec<usize>> {
    let n = graph.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(NodeId(v))));
    const UNSET: usize = usize::MAX;
    let mut colors = vec![UNSET; n];

    fn backtrack<N>(
        graph: &UnGraph<N>,
        order: &[usize],
        pos: usize,
        k: usize,
        max_used: usize,
        colors: &mut Vec<usize>,
        meter: &mut BudgetMeter,
    ) -> bool {
        // Budget: one tick per search node; on exhaustion the search
        // reports "no k-coloring found", which the caller treats as
        // inconclusive, not as a refutation.
        if !meter.tick() {
            return false;
        }
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        let forbidden: std::collections::BTreeSet<usize> = graph
            .neighbors(NodeId(v))
            .filter_map(|nb| (colors[nb.0] != usize::MAX).then_some(colors[nb.0]))
            .collect();
        let limit = (max_used + 1).min(k);
        for c in 0..limit {
            if forbidden.contains(&c) {
                continue;
            }
            colors[v] = c;
            let new_max = max_used.max(c + 1);
            if backtrack(graph, order, pos + 1, k, new_max, colors, meter) {
                return true;
            }
            colors[v] = usize::MAX;
        }
        false
    }

    backtrack(graph, &order, 0, k, 0, &mut colors, meter).then_some(colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> UnGraph<usize> {
        let mut g = UnGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|i| g.add_node(i)).collect();
        for &(a, b) in edges {
            g.add_edge(ns[a], ns[b]);
        }
        g
    }

    #[test]
    fn empty_graph_zero_colors() {
        let g: UnGraph<usize> = UnGraph::new();
        assert_eq!(exact_coloring(&g).num_colors, 0);
    }

    #[test]
    fn edgeless_graph_one_color() {
        let g = graph(5, &[]);
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn single_edge_two_colors() {
        let g = graph(2, &[(0, 1)]);
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 2);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn triangle_three_colors() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 3);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn even_cycle_two_colors() {
        let g = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 2);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn odd_cycle_three_colors() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 3);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn bipartite_needs_two_even_when_dsatur_might_struggle() {
        // Crown-ish bipartite graph.
        let g = graph(
            6,
            &[(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)],
        );
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn k4_needs_four() {
        let g = graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let c = exact_coloring(&g);
        assert_eq!(c.num_colors, 4);
    }

    #[test]
    fn dsatur_is_proper_and_bounded() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let d = dsatur_coloring(&g);
        assert!(d.is_proper(&g));
        let e = exact_coloring(&g);
        assert!(e.num_colors <= d.num_colors);
    }

    #[test]
    fn greedy_is_proper() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let order: Vec<NodeId> = g.node_ids().collect();
        let c = greedy_coloring(&g, &order);
        assert!(c.is_proper(&g));
        assert!(c.num_colors >= 2);
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (c, prov) = exact_coloring_budgeted(&g, &Budget::unlimited());
        assert!(prov.is_exact());
        assert!(c.exact);
        assert_eq!(c.num_colors, 3);
    }

    #[test]
    fn exhausted_budget_degrades_to_dsatur() {
        // A 1-node budget cannot even finish the first refutation pass
        // on a dense graph: the result must be the (proper) DSATUR
        // coloring with a Degraded tag.
        use crate::rng::Rng64;
        let mut rng = Rng64::seed_from_u64(0xC0103);
        let mut g: UnGraph<()> = UnGraph::new();
        let ns: Vec<NodeId> = (0..16).map(|_| g.add_node(())).collect();
        for i in 0..16 {
            for j in i + 1..16 {
                if rng.gen_bool(0.5) {
                    g.add_edge(ns[i], ns[j]);
                }
            }
        }
        let budget = Budget::unlimited().with_node_limit(1);
        let (c, prov) = exact_coloring_budgeted(&g, &budget);
        assert!(!prov.is_exact());
        assert!(!c.exact);
        assert!(c.is_proper(&g), "degraded result must stay proper");
        assert_eq!(c.num_colors, dsatur_coloring(&g).num_colors);
    }

    #[test]
    fn exact_matches_on_random_graphs_vs_dsatur_bound() {
        use crate::rng::Rng64;
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..15 {
            let n = rng.gen_range(2, 9);
            let mut g: UnGraph<()> = UnGraph::new();
            let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 0..n {
                for j in i + 1..n {
                    if rng.gen_bool(0.5) {
                        g.add_edge(ns[i], ns[j]);
                    }
                }
            }
            let e = exact_coloring(&g);
            let d = dsatur_coloring(&g);
            assert!(e.is_proper(&g));
            assert!(d.is_proper(&g));
            assert!(e.num_colors <= d.num_colors);
            assert!(e.num_colors >= greedy_clique_size(&g).min(e.num_colors));
        }
    }
}
