//! Message names and their classification.
//!
//! Per §II-B/§II-C of the paper, a *message* is a static name (id); every
//! message name has a *type*: request, forwarded request, data response,
//! or control response.

use std::fmt;

/// Index of a message name within a [`crate::ProtocolSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub usize);

impl MsgId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The classification of a message name (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgType {
    /// Cache → directory (GetS, GetM, PutM, ReadShared, …).
    Request,
    /// Directory → cache (Fwd-GetS, Fwd-GetM, Inv, snoops).
    FwdRequest,
    /// Carries a cache line (Data, CompData).
    DataResponse,
    /// Control-only response (Inv-Ack, Put-Ack, Comp, CompAck).
    CtrlResponse,
}

impl MsgType {
    /// Short display label used in reports ("Req", "Fwd", "Data", "Resp").
    pub fn label(self) -> &'static str {
        match self {
            MsgType::Request => "Req",
            MsgType::FwdRequest => "Fwd",
            MsgType::DataResponse => "Data",
            MsgType::CtrlResponse => "Resp",
        }
    }

    /// Returns `true` for either response type.
    pub fn is_response(self) -> bool {
        matches!(self, MsgType::DataResponse | MsgType::CtrlResponse)
    }

    /// All four message types, in declaration order.
    pub fn all() -> [MsgType; 4] {
        [
            MsgType::Request,
            MsgType::FwdRequest,
            MsgType::DataResponse,
            MsgType::CtrlResponse,
        ]
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Definition of one message name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageDef {
    /// Human-readable name ("GetS", "Fwd-GetM", …).
    pub name: String,
    /// The message's type.
    pub mtype: MsgType,
}

impl MessageDef {
    /// Creates a message definition.
    pub fn new(name: impl Into<String>, mtype: MsgType) -> Self {
        MessageDef {
            name: name.into(),
            mtype,
        }
    }
}

impl fmt::Display for MessageDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.mtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MsgType::Request.label(), "Req");
        assert_eq!(MsgType::FwdRequest.label(), "Fwd");
        assert_eq!(MsgType::DataResponse.label(), "Data");
        assert_eq!(MsgType::CtrlResponse.label(), "Resp");
    }

    #[test]
    fn response_classification() {
        assert!(MsgType::DataResponse.is_response());
        assert!(MsgType::CtrlResponse.is_response());
        assert!(!MsgType::Request.is_response());
        assert!(!MsgType::FwdRequest.is_response());
    }

    #[test]
    fn display_forms() {
        let d = MessageDef::new("GetS", MsgType::Request);
        assert_eq!(d.to_string(), "GetS (Req)");
        assert_eq!(MsgId(3).to_string(), "m3");
    }

    #[test]
    fn all_types_enumerated() {
        assert_eq!(MsgType::all().len(), 4);
    }
}
