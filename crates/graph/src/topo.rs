//! Topological sorting (Kahn's algorithm).

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Error returned when the graph contains a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleDetectedError {
    /// Nodes that could not be ordered (they lie on or behind a cycle).
    pub stuck: Vec<NodeId>,
}

impl std::fmt::Display for CycleDetectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle involving {} unordered node(s)",
            self.stuck.len()
        )
    }
}

impl std::error::Error for CycleDetectedError {}

/// Topologically sorts the graph; fails with [`CycleDetectedError`] if a
/// cycle exists.
///
/// # Errors
///
/// Returns [`CycleDetectedError`] listing the nodes on or downstream of
/// cycles if the graph is not a DAG.
///
/// # Example
///
/// ```
/// use vnet_graph::{DiGraph, topo::topological_sort};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
/// let order = topological_sort(&g)?;
/// assert_eq!(order, vec![a, b]);
/// # Ok::<(), vnet_graph::topo::CycleDetectedError>(())
/// ```
pub fn topological_sort<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleDetectedError> {
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|v| graph.in_degree(NodeId(v))).collect();
    let mut q: VecDeque<NodeId> = (0..n)
        .filter(|&v| in_deg[v] == 0)
        .map(NodeId)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for w in graph.successors(v) {
            in_deg[w.0] -= 1;
            if in_deg[w.0] == 0 {
                q.push_back(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let placed: std::collections::BTreeSet<usize> =
            order.iter().map(|v| v.0).collect();
        Err(CycleDetectedError {
            stuck: (0..n).filter(|v| !placed.contains(v)).map(NodeId).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in edges {
            g.add_edge(ns[a], ns[b], ());
        }
        g
    }

    #[test]
    fn dag_sorts() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = topological_sort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, v) in order.iter().enumerate() {
                p[v.0] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_errors_with_stuck_nodes() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 1)]);
        let err = topological_sort(&g).unwrap_err();
        assert_eq!(err.stuck, vec![NodeId(1), NodeId(2)]);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn empty_graph_sorts_trivially() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(topological_sort(&g).unwrap().is_empty());
    }

    #[test]
    fn self_loop_is_cycle() {
        let g = graph(1, &[(0, 0)]);
        assert!(topological_sort(&g).is_err());
    }
}
