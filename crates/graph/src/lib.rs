//! # vnet-graph
//!
//! Self-contained graph algorithms backing the virtual-network minimization
//! pipeline of `vnet-core`:
//!
//! * [`DiGraph`] — a compact adjacency-list directed multigraph with stable
//!   node/edge indices.
//! * [`UnGraph`] — an undirected simple graph used for conflict coloring.
//! * [`scc`] — Tarjan strongly-connected components and condensation.
//! * [`closure`] — reachability / transitive closure over bitsets.
//! * [`cycles`] — Johnson's elementary-cycle enumeration.
//! * [`fas`] — weighted minimum feedback arc set (exact branch-and-bound
//!   over an elementary-cycle cover, plus the Eades–Lin–Smyth heuristic
//!   with local search for larger instances).
//! * [`coloring`] — minimum vertex coloring (exact branch-and-bound,
//!   DSATUR, and greedy).
//! * [`topo`] — topological sorting (Kahn).
//! * [`dot`] — Graphviz export for debugging and documentation.
//! * [`budget`] — wall-clock/node budgets and [`Provenance`] tags that
//!   let the exponential kernels degrade to heuristics instead of
//!   hanging.
//! * [`rng`] — a self-contained SplitMix64 PRNG (no crates.io
//!   dependency) used by workloads, fault plans, and randomized tests.
//!
//! The graphs produced by the coherence-protocol analysis are tiny (the
//! vertex set is the set of protocol message names, ~10¹ per the paper), so
//! the exact solvers are the default; the heuristics exist for the synthetic
//! scaling studies in `vnet-bench`.
//!
//! ## Example
//!
//! ```
//! use vnet_graph::{DiGraph, fas};
//!
//! let mut g: DiGraph<&str, u128> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! g.add_edge(a, b, 1);
//! g.add_edge(b, a, 1);
//! let set = fas::minimum_feedback_arc_set(&g, |&w| w);
//! assert_eq!(set.edges.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod budget;
pub mod closure;
pub mod coloring;
pub mod condensation;
pub mod cycles;
pub mod digraph;
pub mod dot;
pub mod fas;
pub mod hash;
pub mod paths;
pub mod rng;
pub mod scc;
pub mod topo;
pub mod ungraph;

pub use bitset::BitSet;
pub use budget::{Budget, BudgetMeter, CancelReason, CancelToken, DegradeReason, Provenance};
pub use digraph::{DiGraph, EdgeId, NodeId};
pub use hash::{fx_hash_bytes, FxBuildHasher, FxHasher};
pub use rng::Rng64;
pub use ungraph::UnGraph;
