//! The MOSI directory protocol: a **never-blocking directory** thanks to
//! the O(wned) state.
//!
//! When the directory forwards a GetS to the owner, the owner supplies the
//! data directly and *retains ownership* (M→O), so the directory never
//! needs a writeback-wait state like MSI's `S_D` — it has **no transient
//! states at all**, provided it has enough MSHRs (which our model grants,
//! per the paper's footnote 2).
//!
//! * With a **nonblocking cache**, the protocol has no message stalls
//!   anywhere: Table I experiment (1), **1 VN**.
//! * With the textbook **blocking cache** (stalling forwards in
//!   transients), there is a `waits` cycle through Fwd-GetM: Table I
//!   experiment (2), **Class 2** — a deadlock exists even with a VN per
//!   message name.
//!
//! Owner upgrades (O→M) are modeled with a directory data response
//! carrying the invalidation-ack count (rather than a separate AckCount
//! message), which makes the upgrade path identical in shape to the
//! I→M / S→M paths.
//!
//! Modeling note (nonblocking variant only): a cache in `OM_AD`/`OM_A`
//! answers Fwd-GetS immediately from its owned copy. In the race where
//! the read was ordered *after* the upgrade at the directory, this serves
//! pre-upgrade data — a serialization fuzz that cannot affect deadlock
//! behavior (no message is ever stalled or lost), which is all this
//! variant is used for: the paper's experiment (1) is a static-analysis
//! data point and is not model checked.

use super::CacheDiscipline;
use crate::builder::{acts, Acts, ProtocolBuilder};
use crate::event::{CoreOp, Guard};
use crate::message::MsgType;
use crate::spec::ProtocolSpec;
use crate::Target;

/// MOSI with the textbook blocking cache. Table I experiment (2) — Class 2.
pub fn mosi_blocking_cache() -> ProtocolSpec {
    build("MOSI-blocking-cache", CacheDiscipline::Blocking)
}

/// MOSI with a deferring cache: no stalls anywhere. Table I experiment
/// (1) — 1 VN.
pub fn mosi_nonblocking_cache() -> ProtocolSpec {
    build("MOSI-nonblocking-cache", CacheDiscipline::NonBlocking)
}

fn build(name: &str, disc: CacheDiscipline) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new(name);

    b.msg("GetS", MsgType::Request)
        .msg("GetM", MsgType::Request)
        .msg("PutS", MsgType::Request)
        .msg("PutM", MsgType::Request)
        .msg("Fwd-GetS", MsgType::FwdRequest)
        .msg("Fwd-GetM", MsgType::FwdRequest)
        .msg("Inv", MsgType::FwdRequest)
        .msg("Put-Ack", MsgType::CtrlResponse)
        .msg("Inv-Ack", MsgType::CtrlResponse)
        .msg("Data", MsgType::DataResponse);

    cache_table(&mut b, disc);
    directory_table(&mut b);
    b.build()
}

fn stall_core(b: &mut ProtocolBuilder, state: &str) {
    b.cache_stall_core(state, CoreOp::Load);
    b.cache_stall_core(state, CoreOp::Store);
    b.cache_stall_core(state, CoreOp::Evict);
}

fn cache_table(b: &mut ProtocolBuilder, disc: CacheDiscipline) {
    b.cache_stable(&["I", "S", "O", "M"]);
    b.cache_transient(&[
        "IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "OM_AD", "OM_A", "MI_A", "SI_A", "II_A",
    ]);
    if disc == CacheDiscipline::NonBlocking {
        b.cache_transient(&["IS_D_I", "OM_A_FM"]);
        for fam in ["IM", "SM"] {
            for stage in ["AD", "A"] {
                for kind in ["FS", "FM", "FSM"] {
                    let s = format!("{fam}_{stage}_{kind}");
                    b.cache_transient(&[&s]);
                }
            }
        }
    }
    b.cache_initial("I");

    // --- I ---
    b.cache_on_core("I", CoreOp::Load, acts().send("GetS", Target::Dir).goto("IS_D"));
    b.cache_on_core("I", CoreOp::Store, acts().send("GetM", Target::Dir).goto("IM_AD"));
    // A stale Inv can reach a cache in I: the cache was invalidated (or
    // evicted) while the Inv was in flight — e.g. Put-Ack overtaking Inv
    // on another VN ends the eviction before the Inv lands. Acking from
    // I is always safe (nothing is held) and the requestor needs the ack.
    b.cache_on_msg("I", "Inv", acts().send("Inv-Ack", Target::Req));

    // --- IS_D ---
    stall_core(b, "IS_D");
    b.cache_on_msg_if("IS_D", "Data", Guard::AckZero, acts().goto("S"));
    match disc {
        CacheDiscipline::Blocking => {
            b.cache_stall_msg("IS_D", "Inv");
        }
        CacheDiscipline::NonBlocking => {
            b.cache_on_msg("IS_D", "Inv", acts().send("Inv-Ack", Target::Req).goto("IS_D_I"));
            stall_core(b, "IS_D_I");
            b.cache_on_msg_if("IS_D_I", "Data", Guard::AckZero, acts().goto("I"));
        }
    }

    // --- Writes in flight ---
    write_in_flight(b, disc, "IM", true);
    write_in_flight(b, disc, "SM", false);

    // --- S ---
    b.cache_on_core("S", CoreOp::Load, acts());
    b.cache_on_core("S", CoreOp::Store, acts().send("GetM", Target::Dir).goto("SM_AD"));
    b.cache_on_core("S", CoreOp::Evict, acts().send("PutS", Target::Dir).goto("SI_A"));
    b.cache_on_msg("S", "Inv", acts().send("Inv-Ack", Target::Req).goto("I"));

    // --- O --- (owned: dirty, shared, this cache supplies data)
    b.cache_on_core("O", CoreOp::Load, acts());
    b.cache_on_core("O", CoreOp::Store, acts().send("GetM", Target::Dir).goto("OM_AD"));
    b.cache_on_core("O", CoreOp::Evict, acts().send_data("PutM", Target::Dir).goto("MI_A"));
    b.cache_on_msg("O", "Fwd-GetS", acts().send_data("Data", Target::Req));
    b.cache_on_msg(
        "O",
        "Fwd-GetM",
        acts().send_data_acks_from_msg("Data", Target::Req).goto("I"),
    );

    // --- OM_AD / OM_A --- (owner upgrade in flight)
    stall_core(b, "OM_AD");
    stall_core(b, "OM_A");
    b.cache_on_msg_if("OM_AD", "Data", Guard::AckZero, acts().add_acks_from_msg().goto("M"));
    b.cache_on_msg_if("OM_AD", "Data", Guard::AckPositive, acts().add_acks_from_msg().goto("OM_A"));
    b.cache_on_msg("OM_AD", "Inv-Ack", acts().dec_needed_acks());
    b.cache_on_msg_if("OM_A", "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
    b.cache_on_msg_if("OM_A", "Inv-Ack", Guard::LastAck, acts().dec_needed_acks().goto("M"));
    match disc {
        CacheDiscipline::Blocking => {
            b.cache_stall_msg("OM_AD", "Fwd-GetS");
            b.cache_stall_msg("OM_AD", "Fwd-GetM");
            b.cache_stall_msg("OM_A", "Fwd-GetS");
            b.cache_stall_msg("OM_A", "Fwd-GetM");
        }
        CacheDiscipline::NonBlocking => {
            // Serve reads from the owned copy without stalling.
            b.cache_on_msg("OM_AD", "Fwd-GetS", acts().send_data("Data", Target::Req));
            b.cache_on_msg("OM_A", "Fwd-GetS", acts().send_data("Data", Target::Req));
            // A Fwd-GetM before the upgrade's own data response means the
            // other write was ordered first: hand over the line and fall
            // back to a plain I→M write.
            b.cache_on_msg(
                "OM_AD",
                "Fwd-GetM",
                acts().send_data_acks_from_msg("Data", Target::Req).goto("IM_AD"),
            );
            // After the upgrade's data response, a Fwd-GetM is ordered
            // after our write: finish the write, then hand over.
            b.cache_on_msg("OM_A", "Fwd-GetM", acts().record_writer().goto("OM_A_FM"));
            stall_core(b, "OM_A_FM");
            b.cache_on_msg_if("OM_A_FM", "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
            b.cache_on_msg_if(
                "OM_A_FM",
                "Inv-Ack",
                Guard::LastAck,
                acts()
                    .dec_needed_acks()
                    .send_data_acks_stored("Data", Target::Writer)
                    .goto("I"),
            );
        }
    }

    // --- M ---
    b.cache_on_core("M", CoreOp::Load, acts());
    b.cache_on_core("M", CoreOp::Store, acts());
    b.cache_on_core("M", CoreOp::Evict, acts().send_data("PutM", Target::Dir).goto("MI_A"));
    // Serving a read keeps ownership: M → O (no directory writeback).
    b.cache_on_msg("M", "Fwd-GetS", acts().send_data("Data", Target::Req).goto("O"));
    b.cache_on_msg(
        "M",
        "Fwd-GetM",
        acts().send_data_acks_from_msg("Data", Target::Req).goto("I"),
    );

    // --- MI_A --- (owner eviction from M or O)
    stall_core(b, "MI_A");
    b.cache_on_msg("MI_A", "Fwd-GetS", acts().send_data("Data", Target::Req));
    b.cache_on_msg(
        "MI_A",
        "Fwd-GetM",
        acts().send_data_acks_from_msg("Data", Target::Req).goto("II_A"),
    );
    b.cache_on_msg("MI_A", "Put-Ack", acts().goto("I"));

    // --- SI_A ---
    stall_core(b, "SI_A");
    b.cache_on_msg("SI_A", "Inv", acts().send("Inv-Ack", Target::Req).goto("II_A"));
    b.cache_on_msg("SI_A", "Put-Ack", acts().goto("I"));

    // --- II_A ---
    stall_core(b, "II_A");
    b.cache_on_msg("II_A", "Put-Ack", acts().goto("I"));
}

/// The `*_AD` / `*_A` write-in-flight pair for family `fam` ("IM"/"SM"),
/// including the deferred-forward companions in the nonblocking
/// discipline. Unlike MSI, the directory never blocks, so multiple
/// Fwd-GetS may pile up on a cache that is still waiting for data — the
/// deferred-reader *set* absorbs them, and a trailing Fwd-GetM moves to
/// the `_FSM` companion.
fn write_in_flight(b: &mut ProtocolBuilder, disc: CacheDiscipline, fam: &str, from_i: bool) {
    let ad = format!("{fam}_AD");
    let a = format!("{fam}_A");

    if from_i {
        b.cache_stall_core(&ad, CoreOp::Load);
        b.cache_stall_core(&a, CoreOp::Load);
    } else {
        b.cache_on_core(&ad, CoreOp::Load, acts());
        b.cache_on_core(&a, CoreOp::Load, acts());
    }
    for s in [&ad, &a] {
        b.cache_stall_core(s, CoreOp::Store);
        b.cache_stall_core(s, CoreOp::Evict);
    }

    b.cache_on_msg_if(&ad, "Data", Guard::AckZero, acts().add_acks_from_msg().goto("M"));
    b.cache_on_msg_if(&ad, "Data", Guard::AckPositive, acts().add_acks_from_msg().goto(&a));
    b.cache_on_msg(&ad, "Inv-Ack", acts().dec_needed_acks());
    b.cache_on_msg_if(&a, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
    b.cache_on_msg_if(&a, "Inv-Ack", Guard::LastAck, acts().dec_needed_acks().goto("M"));

    if !from_i {
        b.cache_on_msg(&ad, "Inv", acts().send("Inv-Ack", Target::Req).goto("IM_AD"));
    }

    match disc {
        CacheDiscipline::Blocking => {
            for s in [&ad, &a] {
                b.cache_stall_msg(s, "Fwd-GetS");
                b.cache_stall_msg(s, "Fwd-GetM");
            }
        }
        CacheDiscipline::NonBlocking => {
            let fs = |st: &str| format!("{st}_FS");
            let fm = |st: &str| format!("{st}_FM");
            let fsm = |st: &str| format!("{st}_FSM");

            b.cache_on_msg(&ad, "Fwd-GetS", acts().record_reader().goto(&fs(&ad)));
            b.cache_on_msg(&ad, "Fwd-GetM", acts().record_writer().goto(&fm(&ad)));
            b.cache_on_msg(&a, "Fwd-GetS", acts().record_reader().goto(&fs(&a)));
            b.cache_on_msg(&a, "Fwd-GetM", acts().record_writer().goto(&fm(&a)));

            for st in [&ad, &a] {
                for k in [fs(st), fm(st), fsm(st)] {
                    stall_core(b, &k);
                }
                // More readers can pile up while deferring; a writer ends
                // the pile (ownership moves with it at the directory).
                b.cache_on_msg(&fs(st), "Fwd-GetS", acts().record_reader());
                b.cache_on_msg(&fs(st), "Fwd-GetM", acts().record_writer().goto(&fsm(st)));
            }

            // Completion action sets. Serving deferred readers keeps
            // ownership (→ O); serving a deferred writer surrenders the
            // line (→ I).
            let complete_fs = || acts().send_data("Data", Target::Readers).goto("O");
            let complete_fm =
                || acts().send_data_acks_stored("Data", Target::Writer).goto("I");
            let complete_fsm = || {
                acts()
                    .send_data("Data", Target::Readers)
                    .send_data_acks_stored("Data", Target::Writer)
                    .goto("I")
            };

            for (kind, complete) in [
                ("FS", &complete_fs as &dyn Fn() -> Acts),
                ("FM", &complete_fm),
                ("FSM", &complete_fsm),
            ] {
                let ad_k = format!("{ad}_{kind}");
                let a_k = format!("{a}_{kind}");
                let mut done = complete();
                let mut to_a = acts().add_acks_from_msg().goto(&a_k);
                // Data while deferring: zero acks completes now, positive
                // moves to the _A companion.
                let mut done_now = complete();
                done_now = prepend_add_acks(done_now);
                b.cache_on_msg_if(&ad_k, "Data", Guard::AckZero, done_now);
                b.cache_on_msg_if(&ad_k, "Data", Guard::AckPositive, std::mem::take(&mut to_a));
                b.cache_on_msg(&ad_k, "Inv-Ack", acts().dec_needed_acks());
                b.cache_on_msg_if(&a_k, "Inv-Ack", Guard::NotLastAck, acts().dec_needed_acks());
                done = prepend_dec_acks(done);
                b.cache_on_msg_if(&a_k, "Inv-Ack", Guard::LastAck, done);
            }

            if !from_i {
                // Inv demotes a sharer-originated write, keeping the
                // deferred forwards.
                for kind in ["FS", "FM", "FSM"] {
                    let from = format!("{fam}_AD_{kind}");
                    let to = format!("IM_AD_{kind}");
                    b.cache_on_msg(&from, "Inv", acts().send("Inv-Ack", Target::Req).goto(&to));
                }
            }
        }
    }
}

fn prepend_add_acks(a: Acts) -> Acts {
    // Acts are append-only; rebuild with the bookkeeping step in front by
    // exploiting that ack arithmetic commutes with the sends.
    acts().add_acks_from_msg().extend(a)
}

fn prepend_dec_acks(a: Acts) -> Acts {
    acts().dec_needed_acks().extend(a)
}

fn directory_table(b: &mut ProtocolBuilder) {
    b.dir_stable(&["I", "S", "O", "M"]);
    b.dir_initial("I");

    // --- I ---
    b.dir_on_msg(
        "I",
        "GetS",
        acts().send_data("Data", Target::Req).add_req_to_sharers().goto("S"),
    );
    b.dir_on_msg(
        "I",
        "GetM",
        acts().send_data_acks("Data", Target::Req).set_owner_to_req().goto("M"),
    );
    b.dir_on_msg("I", "PutS", acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if("I", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));

    // --- S ---
    b.dir_on_msg(
        "S",
        "GetS",
        acts().send_data("Data", Target::Req).add_req_to_sharers(),
    );
    b.dir_on_msg(
        "S",
        "GetM",
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .set_owner_to_req()
            .goto("M"),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::NotLastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "S",
        "PutS",
        Guard::LastSharer,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if(
        "S",
        "PutM",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );

    // --- O --- (an owner cache plus possible sharers; never blocks)
    b.dir_on_msg(
        "O",
        "GetS",
        acts().send("Fwd-GetS", Target::Owner).add_req_to_sharers(),
    );
    // Owner upgrade: the data response carries the ack count; the owner
    // already has the data.
    b.dir_on_msg_if(
        "O",
        "GetM",
        Guard::ReqIsOwner,
        acts()
            .send_data_acks("Data", Target::Req)
            .to_sharers("Inv")
            .clear_sharers()
            .goto("M"),
    );
    b.dir_on_msg_if(
        "O",
        "GetM",
        Guard::ReqNotOwner,
        acts()
            .send_acks_from_sharers("Fwd-GetM", Target::Owner)
            .to_sharers("Inv")
            .clear_sharers()
            .set_owner_to_req()
            .goto("M"),
    );
    b.dir_on_msg(
        "O",
        "PutS",
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );
    b.dir_on_msg_if(
        "O",
        "PutM",
        Guard::FromOwner,
        acts().copy_to_mem().clear_owner().send("Put-Ack", Target::Req).goto("S"),
    );
    b.dir_on_msg_if(
        "O",
        "PutM",
        Guard::NotFromOwner,
        acts().remove_req_from_sharers().send("Put-Ack", Target::Req),
    );

    // --- M ---
    b.dir_on_msg(
        "M",
        "GetS",
        acts().send("Fwd-GetS", Target::Owner).add_req_to_sharers().goto("O"),
    );
    b.dir_on_msg_if(
        "M",
        "GetM",
        Guard::ReqNotOwner,
        acts().send_acks_from_sharers("Fwd-GetM", Target::Owner).set_owner_to_req(),
    );
    b.dir_on_msg("M", "PutS", acts().send("Put-Ack", Target::Req));
    b.dir_on_msg_if(
        "M",
        "PutM",
        Guard::FromOwner,
        acts().copy_to_mem().clear_owner().send("Put-Ack", Target::Req).goto("I"),
    );
    b.dir_on_msg_if("M", "PutM", Guard::NotFromOwner, acts().send("Put-Ack", Target::Req));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateKind;

    #[test]
    fn both_variants_validate() {
        mosi_blocking_cache().validate().unwrap();
        mosi_nonblocking_cache().validate().unwrap();
    }

    #[test]
    fn directory_has_no_transient_states() {
        let p = mosi_blocking_cache();
        assert!(p
            .directory()
            .states()
            .iter()
            .all(|s| s.kind == StateKind::Stable));
        assert_eq!(p.directory().message_stalls().count(), 0);
    }

    #[test]
    fn nonblocking_variant_has_no_stalls_at_all() {
        let p = mosi_nonblocking_cache();
        assert_eq!(p.cache().message_stalls().count(), 0);
        assert_eq!(p.directory().message_stalls().count(), 0);
    }

    #[test]
    fn blocking_variant_stalls_forwards_in_om() {
        let p = mosi_blocking_cache();
        let om = p.cache().state_by_name("OM_AD").unwrap();
        let fwd = p.message_by_name("Fwd-GetM").unwrap();
        assert!(p
            .cache()
            .cell(om, crate::Trigger::msg(fwd))
            .unwrap()
            .is_stall());
    }

    #[test]
    fn m_to_o_on_forwarded_read() {
        let p = mosi_blocking_cache();
        let m = p.cache().state_by_name("M").unwrap();
        let o = p.cache().state_by_name("O").unwrap();
        let fwd = p.message_by_name("Fwd-GetS").unwrap();
        let cell = p.cache().cell(m, crate::Trigger::msg(fwd)).unwrap();
        assert_eq!(cell.entry().unwrap().next, Some(o));
    }

    #[test]
    fn deferred_reader_pileup_supported() {
        let p = mosi_nonblocking_cache();
        let fs = p.cache().state_by_name("IM_AD_FS").unwrap();
        let fwd_s = p.message_by_name("Fwd-GetS").unwrap();
        // More readers can be absorbed without leaving the state.
        let cell = p.cache().cell(fs, crate::Trigger::msg(fwd_s)).unwrap();
        assert_eq!(cell.entry().unwrap().next, None);
        // A writer moves to the FSM companion.
        let fwd_m = p.message_by_name("Fwd-GetM").unwrap();
        let fsm = p.cache().state_by_name("IM_AD_FSM").unwrap();
        let cell = p.cache().cell(fs, crate::Trigger::msg(fwd_m)).unwrap();
        assert_eq!(cell.entry().unwrap().next, Some(fsm));
    }
}
