//! Out-of-core state storage: a spillable interning arena.
//!
//! [`SpillArena`] wraps the hot [`StateArena`] with a cold tier on
//! disk. When the explorer's accounted footprint crosses the spill
//! threshold, the entire hot arena is streamed to a *segment* file —
//! each blob delta-encoded against its predecessor (see
//! [`crate::codec`]), with a full-blob restart point every
//! [`RESTART_INTERVAL`] entries so random access decodes at most a
//! handful of deltas — and the hot tier is reset. What stays in RAM per
//! cold state is one packed `(fingerprint32, id)` slot in an
//! open-addressing filter (~11 bytes at ¾ load) plus one restart offset
//! per interval, instead of the full key bytes, offsets, and table
//! slots (~60–100 bytes): the memory the budget meter sees drops by
//! 3–5× per spill while lookups stay *exact* — a fingerprint hit is
//! always verified against the decoded blob on disk, so dedup, claim
//! order, and therefore verdicts and witnesses are bit-identical to an
//! in-RAM run.
//!
//! Ids are global and stable across spills: the hot tier interns at
//! `base + local`, and a spill only moves bytes, never renumbers.
//! Segment files are written via temp file + rename (a crash mid-spill
//! leaves no torn segment behind; stale `.tmp` files are swept when the
//! directory is first opened) and deleted when the arena drops.

use crate::codec::{decode_delta, encode_delta};
use crate::intern::{InternError, StateArena, StateId};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use vnet_graph::fx_hash_bytes;

/// Entries per full-blob restart point in a segment file.
pub const RESTART_INTERVAL: u32 = 16;

/// Vacant marker in the fingerprint filter (a real slot packs the id in
/// the low 32 bits, and ids never reach `u32::MAX`).
const VACANT: u64 = u64::MAX;

/// Where and when the arena spills.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory for segment files (created on first use).
    pub dir: PathBuf,
    /// Spill when the owner's accounted bytes exceed this.
    pub threshold_bytes: u64,
    /// Never spill a hot tier smaller than this — tiny segments would
    /// fragment the cold tier without relieving real pressure.
    pub min_hot_bytes: u64,
}

impl SpillConfig {
    /// A config spilling into `dir` when accounted bytes exceed
    /// `threshold_bytes`, with the default 32 KiB minimum hot tier.
    pub fn new(dir: impl Into<PathBuf>, threshold_bytes: u64) -> Self {
        SpillConfig {
            dir: dir.into(),
            threshold_bytes,
            min_hot_bytes: 32 << 10,
        }
    }
}

/// One on-disk segment of cold blobs `[first, first + count)`.
#[derive(Debug)]
struct Segment {
    path: PathBuf,
    file: File,
    first: u32,
    count: u32,
    /// Byte offset of each restart block, plus the end offset.
    restarts: Vec<u64>,
}

/// Running totals for the `explore.spill_*` metrics, drained by the
/// owning explorer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Bytes written to segment files (compressed).
    pub spilled_bytes: u64,
    /// Raw blob bytes those segments represent.
    pub raw_bytes: u64,
    /// Cold-tier disk reads (lookup verifications + blob fetches).
    pub reads: u64,
    /// Spill events.
    pub spills: u64,
}

impl SpillStats {
    /// Compressed size as a percentage of raw size (100 = no gain).
    pub fn compress_ratio_pct(&self) -> u64 {
        self.spilled_bytes
            .saturating_mul(100)
            .checked_div(self.raw_bytes)
            .unwrap_or(100)
    }
}

/// A [`StateArena`] with an optional disk tier. With no
/// [`SpillConfig`] it is a zero-overhead wrapper; with one, cold
/// states live in delta-compressed segment files behind the
/// fingerprint filter.
#[derive(Debug)]
pub struct SpillArena {
    hot: StateArena,
    /// Global id of hot-local id 0; equals the cold-state count.
    base: u32,
    /// Open-addressing filter over cold states: `fp32 << 32 | id`.
    /// Indexed by `fp32 & mask`; power-of-two length, ¾ load.
    filter: Vec<u64>,
    segments: Vec<Segment>,
    cfg: Option<SpillConfig>,
    dir_ready: bool,
    seq: u32,
    stats: SpillStats,
    /// Scratch for cold decodes (kept across calls to avoid realloc).
    block: Vec<u8>,
    prev: Vec<u8>,
    cur: Vec<u8>,
}

impl SpillArena {
    /// An arena that spills per `cfg`, or a plain in-RAM arena when
    /// `cfg` is `None`.
    pub fn new(cfg: Option<SpillConfig>) -> Self {
        SpillArena {
            hot: StateArena::new(),
            base: 0,
            filter: Vec::new(),
            segments: Vec::new(),
            cfg,
            dir_ready: false,
            seq: 0,
            stats: SpillStats::default(),
            block: Vec::new(),
            prev: Vec::new(),
            cur: Vec::new(),
        }
    }

    /// Total distinct blobs (cold + hot).
    pub fn len(&self) -> usize {
        self.base as usize + self.hot.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative spill statistics.
    pub fn spill_stats(&self) -> SpillStats {
        self.stats
    }

    /// `true` once at least one segment has been written.
    pub fn has_spilled(&self) -> bool {
        !self.segments.is_empty()
    }

    /// Hot-tier table load, for the `explore.intern_load_pct` gauge.
    pub fn load_factor_pct(&self) -> u64 {
        self.hot.load_factor_pct()
    }

    /// Exact heap bytes: the hot arena plus the cold tier's in-RAM
    /// index (filter slots and restart offsets). Segment bytes live on
    /// disk and are deliberately not charged against the memory budget.
    pub fn heap_bytes(&self) -> u64 {
        let restarts: usize = self.segments.iter().map(|s| s.restarts.capacity()).sum();
        self.hot.heap_bytes()
            + (self.filter.capacity() * 8) as u64
            + (restarts * 8) as u64
            + (self.block.capacity() + self.prev.capacity() + self.cur.capacity()) as u64
    }

    /// Interns `bytes` under a stable global id. Exact dedup across
    /// both tiers: a cold hit is verified against the decoded blob, so
    /// a fingerprint collision can never alias two distinct states.
    pub fn intern(&mut self, bytes: &[u8]) -> Result<(StateId, bool), InternError> {
        if self.base > 0 {
            if let Some(id) = self.lookup_cold(bytes) {
                return Ok((id, false));
            }
        }
        match self.hot.intern(bytes) {
            Ok((local, fresh)) => match local.checked_add(self.base) {
                Some(gid) => Ok((gid, fresh)),
                None => Err(InternError::AddressSpace),
            },
            Err(e) => Err(e),
        }
    }

    /// The id of `bytes` if present in either tier.
    pub fn lookup(&mut self, bytes: &[u8]) -> Option<StateId> {
        if let Some(local) = self.hot.lookup(bytes) {
            return local.checked_add(self.base);
        }
        if self.base > 0 {
            return self.lookup_cold(bytes);
        }
        None
    }

    /// Copies the blob of `id` into `out`. Returns `false` for ids
    /// never interned or cold reads that fail (callers treat both as
    /// corruption, mirroring `StateArena::get`'s empty-slice contract).
    pub fn get_into(&mut self, id: StateId, out: &mut Vec<u8>) -> bool {
        out.clear();
        if id >= self.base {
            let local = id - self.base;
            if (local as usize) >= self.hot.len() {
                return false;
            }
            out.extend_from_slice(self.hot.get(local));
            return true;
        }
        match self.read_cold(id) {
            Some(()) => {
                out.extend_from_slice(&self.cur);
                true
            }
            None => false,
        }
    }

    /// Spills the hot tier if `accounted_now` exceeds the configured
    /// threshold and the hot tier is big enough to be worth writing.
    /// Returns `Ok(true)` when a segment was written. IO failure leaves
    /// the arena fully intact in RAM — the caller may keep going and
    /// let the memory budget degrade the run honestly.
    pub fn maybe_spill(&mut self, accounted_now: u64) -> std::io::Result<bool> {
        let Some(cfg) = &self.cfg else {
            return Ok(false);
        };
        if accounted_now <= cfg.threshold_bytes
            || (self.hot.data_len() as u64) < cfg.min_hot_bytes
            || self.hot.is_empty()
        {
            return Ok(false);
        }
        self.spill()?;
        Ok(true)
    }

    /// Streams every blob in id order (cold segments, then hot) through
    /// `f(id, bytes)`, stopping at the first error.
    pub fn for_each<E>(
        &mut self,
        mut f: impl FnMut(StateId, &[u8]) -> Result<(), E>,
    ) -> Result<Result<(), E>, std::io::Error> {
        // Cold tier: sequential decode, no restart seeks needed.
        for si in 0..self.segments.len() {
            let seg = &self.segments[si];
            let (first, count) = (seg.first, seg.count);
            self.block.clear();
            let mut fh = &self.segments[si].file;
            fh.seek(SeekFrom::Start(0))?;
            fh.read_to_end(&mut self.block)?;
            self.stats.reads += 1;
            let mut pos = 0usize;
            self.prev.clear();
            for i in 0..count {
                if i % RESTART_INTERVAL == 0 {
                    self.prev.clear();
                }
                let ok = decode_delta(&self.prev, &self.block, &mut pos, &mut self.cur);
                if ok.is_none() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("segment {} undecodable at entry {i}", si),
                    ));
                }
                if let Err(e) = f(first + i, &self.cur) {
                    return Ok(Err(e));
                }
                std::mem::swap(&mut self.prev, &mut self.cur);
            }
        }
        for local in 0..self.hot.len() as u32 {
            if let Err(e) = f(self.base + local, self.hot.get(local)) {
                return Ok(Err(e));
            }
        }
        Ok(Ok(()))
    }

    /// Cold-tier lookup: probe the fingerprint filter, verify each
    /// candidate against the decoded blob.
    fn lookup_cold(&mut self, bytes: &[u8]) -> Option<StateId> {
        if self.filter.is_empty() {
            return None;
        }
        let fp = (fx_hash_bytes(bytes) >> 32) as u32;
        let mask = self.filter.len() - 1;
        let mut slot = fp as usize & mask;
        loop {
            let packed = self.filter[slot];
            if packed == VACANT {
                return None;
            }
            if (packed >> 32) as u32 == fp {
                let id = packed as u32;
                if self.read_cold(id).is_some() && self.cur == bytes {
                    return Some(id);
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Decodes cold blob `id` into `self.cur`. `None` on any IO or
    /// format defect (fail soft; callers surface it as corruption).
    fn read_cold(&mut self, id: StateId) -> Option<()> {
        let si = self
            .segments
            .partition_point(|s| s.first + s.count <= id)
            .min(self.segments.len().checked_sub(1)?);
        let seg = &self.segments[si];
        if id < seg.first || id >= seg.first + seg.count {
            return None;
        }
        let rel = id - seg.first;
        let block_idx = (rel / RESTART_INTERVAL) as usize;
        let start = *seg.restarts.get(block_idx)?;
        let end = *seg.restarts.get(block_idx + 1)?;
        self.block.clear();
        let need = (end - start) as usize;
        if self.block.try_reserve(need).is_err() {
            return None;
        }
        self.block.resize(need, 0);
        let mut fh = &seg.file;
        fh.seek(SeekFrom::Start(start)).ok()?;
        fh.read_exact(&mut self.block).ok()?;
        self.stats.reads += 1;
        let mut pos = 0usize;
        self.prev.clear();
        for _ in 0..rel % RESTART_INTERVAL {
            decode_delta(&self.prev, &self.block, &mut pos, &mut self.cur)?;
            std::mem::swap(&mut self.prev, &mut self.cur);
        }
        decode_delta(&self.prev, &self.block, &mut pos, &mut self.cur)
    }

    /// Writes the hot tier to a new segment and resets it.
    fn spill(&mut self) -> std::io::Result<()> {
        let dir = match &self.cfg {
            Some(c) => c.dir.clone(),
            None => return Ok(()),
        };
        if !self.dir_ready {
            std::fs::create_dir_all(&dir)?;
            sweep_stale_tmp(&dir);
            self.dir_ready = true;
        }
        let n = self.hot.len() as u32;
        // Grow the filter first (everything before the file write is
        // undoable), keeping ≤ ¾ load after inserting `n` more ids.
        self.reserve_filter(n as usize)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::OutOfMemory, "filter growth"))?;

        let path = dir.join(format!("seg-{}-{}.spill", std::process::id(), self.seq));
        let tmp = path.with_extension("spill.tmp");
        let mut restarts: Vec<u64> = Vec::with_capacity((n / RESTART_INTERVAL + 2) as usize);
        let mut raw = 0u64;
        {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            let mut off = 0u64;
            let mut enc: Vec<u8> = Vec::with_capacity(256);
            let mut prev: &[u8] = &[];
            for local in 0..n {
                if local % RESTART_INTERVAL == 0 {
                    restarts.push(off);
                    prev = &[];
                }
                let blob = self.hot.get(local);
                raw += blob.len() as u64;
                enc.clear();
                encode_delta(prev, blob, &mut enc);
                w.write_all(&enc)?;
                off += enc.len() as u64;
                prev = blob;
            }
            restarts.push(off);
            w.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        let file = File::open(&path)?;
        let written = *restarts.last().unwrap_or(&0);

        // Point of no return: index the new cold ids.
        let mask = self.filter.len() - 1;
        for local in 0..n {
            let fp = (fx_hash_bytes(self.hot.get(local)) >> 32) as u32;
            let mut slot = fp as usize & mask;
            while self.filter[slot] != VACANT {
                slot = (slot + 1) & mask;
            }
            self.filter[slot] = ((fp as u64) << 32) | (self.base + local) as u64;
        }
        self.segments.push(Segment {
            path,
            file,
            first: self.base,
            count: n,
            restarts,
        });
        self.base += n;
        self.seq += 1;
        self.hot = StateArena::new();
        self.stats.spilled_bytes += written;
        self.stats.raw_bytes += raw;
        self.stats.spills += 1;
        Ok(())
    }

    /// Ensures the filter can absorb `extra` more entries at ≤ ¾ load.
    fn reserve_filter(&mut self, extra: usize) -> Result<(), InternError> {
        let need = self.base as usize + extra;
        let mut len = self.filter.len().max(64);
        while need * 4 > len * 3 {
            len *= 2;
        }
        if len == self.filter.len() {
            return Ok(());
        }
        let mut fresh: Vec<u64> = Vec::new();
        if fresh.try_reserve_exact(len).is_err() {
            return Err(InternError::AllocFailed);
        }
        fresh.resize(len, VACANT);
        let mask = len - 1;
        for &packed in &self.filter {
            if packed == VACANT {
                continue;
            }
            let mut slot = ((packed >> 32) as u32) as usize & mask;
            while fresh[slot] != VACANT {
                slot = (slot + 1) & mask;
            }
            fresh[slot] = packed;
        }
        self.filter = fresh;
        Ok(())
    }
}

impl Drop for SpillArena {
    fn drop(&mut self) {
        for seg in &self.segments {
            let _ = std::fs::remove_file(&seg.path);
        }
        if let Some(cfg) = &self.cfg {
            // Best-effort: removes the directory only if it is empty
            // (other runs may share it).
            let _ = std::fs::remove_dir(&cfg.dir);
        }
    }
}

/// Removes stale `.tmp` files a killed spill or checkpoint flush left
/// behind in `dir`. Renames are atomic, so any surviving `.tmp` is by
/// construction torn garbage — quarantining would just accumulate it.
pub fn sweep_stale_tmp(dir: &std::path::Path) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let p = entry.path();
        if p.extension().and_then(|e| e.to_str()) == Some("tmp") {
            let _ = std::fs::remove_file(&p);
        }
    }
}
